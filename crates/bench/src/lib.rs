//! Shared helpers for the Criterion benchmark harness.
//!
//! One bench target per paper artifact (see `DESIGN.md` §5):
//!
//! | Target | Regenerates |
//! |---|---|
//! | `fig2_variance` | Figure 2 — greedy construction per workload class |
//! | `fig3_oracles` | Figure 3 — construction per oracle |
//! | `fig4_churn` | Figure 4 — greedy vs hybrid, with/without churn |
//! | `counterexample` | §3.3.1 — adversarial family |
//! | `async_construction` | §5.3 — lockstep vs asynchronous runs |
//! | `server_load` | §1 — dissemination and server-load kernel |
//! | `micro` | substrate micro-benchmarks |
//!
//! Criterion reports wall-clock cost of the simulation kernels; the
//! *scientific* outputs (medians, convergence rates) come from
//! `lagover-experiments`.

#![forbid(unsafe_code)]

use lagover_core::node::Population;
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

/// Standard benchmark population: 120 peers (the paper's §5.2 scale).
pub const BENCH_PEERS: usize = 120;

/// Deterministic population for a workload class at the benchmark
/// scale.
///
/// # Panics
///
/// Panics if generation fails (paper classes at 120 peers are always
/// repairable).
pub fn bench_population(class: TopologicalConstraint) -> Population {
    WorkloadSpec::new(class, BENCH_PEERS)
        .generate(0xBE7C)
        .expect("bench populations are repairable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_populations_exist_for_all_classes() {
        for class in TopologicalConstraint::PAPER_CLASSES {
            assert_eq!(bench_population(class).len(), BENCH_PEERS);
        }
    }
}
