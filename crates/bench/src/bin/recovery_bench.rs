//! Recovery-quality harness: runs the standard N=1k compound-fault
//! scenario (interior crashes + oracle blackout + message loss) and
//! emits `BENCH_recovery.json` with re-convergence rounds, orphan
//! counts, and fault counters, so successive PRs have a robustness
//! trajectory to track.
//!
//! Unlike `construction_bench` this harness records no wall-clock at
//! all: every reported number is a deterministic function of the seed,
//! so the JSON is byte-stable across machines and thread counts.
//!
//! Usage: `recovery_bench [OUTPUT_PATH]` (default
//! `BENCH_recovery.json` in the current directory).

use lagover_core::{run_recovery, Algorithm, ConstructionConfig, FaultScenario, OracleKind};
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

/// The standard scenario every run of this harness measures.
const PEERS: usize = 1_000;
const HORIZON: u64 = 2_000;
const SEED: u64 = 0xB_E7C1_0001;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recovery.json".into());

    let population = WorkloadSpec::new(TopologicalConstraint::Rand, PEERS)
        .generate(SEED)
        .expect("Rand at 1k peers is repairable");
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(HORIZON);
    let scenario = FaultScenario {
        crash_fraction: 0.10,
        message_loss: 0.05,
        blackout_rounds: 30,
    };
    let outcome = run_recovery(&population, &config, &scenario, HORIZON, SEED);
    let c = &outcome.counters;

    // Hand-formatted JSON: the harness must not depend on any JSON
    // crate so it stays runnable in minimal environments.
    let json = format!(
        "{{\n  \"scenario\": \"rand_n{PEERS}_hybrid_compound_fault\",\n  \"peers\": {PEERS},\n  \"seed\": {SEED},\n  \"crash_fraction\": 0.10,\n  \"message_loss\": 0.05,\n  \"blackout_rounds\": 30,\n  \"construction_converged_at\": {},\n  \"crash_round\": {},\n  \"crashed_peers\": {},\n  \"recovery_rounds\": {},\n  \"rounds_run\": {},\n  \"orphan_peak\": {},\n  \"stale_rounds\": {},\n  \"failure_detections\": {},\n  \"messages_lost\": {},\n  \"oracle_outages\": {},\n  \"backoff_rounds\": {}\n}}\n",
        outcome
            .construction_converged_at
            .map_or("null".into(), |r| r.to_string()),
        outcome.crash_round,
        outcome.crashed_peers,
        outcome
            .recovery_rounds
            .map_or("null".into(), |r| r.to_string()),
        outcome.rounds_run,
        outcome.orphan_peak,
        outcome.stale_rounds,
        c.failure_detections,
        c.messages_lost,
        c.oracle_outages,
        c.backoff_rounds,
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
