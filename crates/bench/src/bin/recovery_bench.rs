//! Recovery-quality harness: thin wrapper over the `recovery` scenario
//! of [`lagover_perf`]. Runs the standard N=1k compound-fault scenario
//! (interior crashes + oracle blackout + message loss) and emits
//! `BENCH_recovery.json` in the unified baseline-document shape.
//!
//! The harness records no wall-clock at all: every reported number is
//! a deterministic function of the seed, so the JSON is byte-stable
//! across machines and thread counts and the file is **committed** —
//! CI regenerates it and fails on any drift. See DESIGN.md §12 for the
//! artifact policy.
//!
//! Usage: `recovery_bench [OUTPUT_PATH]` (default
//! `BENCH_recovery.json` in the current directory).

#![forbid(unsafe_code)]

use lagover_perf::{single_scenario_document, PerfParams};

/// The standard scenario every run of this harness measures.
const PEERS: usize = 1_000;
const MAX_ROUNDS: u64 = 2_000;
const SEED: u64 = 0xB_E7C1_0001;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recovery.json".into());

    let params = PerfParams {
        peers: PEERS,
        runs: 1,
        max_rounds: MAX_ROUNDS,
        seed: SEED,
    };
    let doc =
        single_scenario_document("recovery", &params, 0).expect("recovery is a registry scenario");
    let json = lagover_jsonio::to_string_pretty(&doc);
    std::fs::write(&out_path, format!("{json}\n")).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
