//! Observability-cost harness: runs the standard N=1k Rand/Hybrid
//! construction with the full `lagover-obs` pipeline enabled (journal +
//! registry + profiler) and emits `BENCH_obs.json` with the event
//! volume, per-phase work totals, and health endpoints, so successive
//! PRs have an instrumentation-footprint trajectory to track.
//!
//! Like `recovery_bench` this harness records no wall-clock at all:
//! every reported number is a deterministic function of the seed, so
//! the JSON is byte-stable across machines and thread counts.
//!
//! Usage: `obs_bench [OUTPUT_PATH]` (default `BENCH_obs.json` in the
//! current directory).

use lagover_core::{construct_observed, Algorithm, ConstructionConfig, OracleKind};
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

/// The standard scenario every run of this harness measures.
const PEERS: usize = 1_000;
const MAX_ROUNDS: u64 = 2_000;
const SEED: u64 = 0xB_E7C1_0002;
const JOURNAL_CAPACITY: usize = 1 << 16;
const SAMPLE_INTERVAL: u64 = 50;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".into());

    let population = WorkloadSpec::new(TopologicalConstraint::Rand, PEERS)
        .generate(SEED)
        .expect("Rand at 1k peers is repairable");
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(MAX_ROUNDS);
    let observed = construct_observed(
        &population,
        &config,
        SEED,
        JOURNAL_CAPACITY,
        SAMPLE_INTERVAL,
    );

    let work = observed.profile.total();
    let kinds: String = observed
        .journal
        .counts_by_kind()
        .into_iter()
        .map(|(kind, count)| format!("    \"{kind}\": {count}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let last_health = observed.health.last().expect("at least the round-0 probe");

    // Hand-formatted JSON: the harness must not depend on any JSON
    // crate so it stays runnable in minimal environments.
    let json = format!(
        "{{\n  \"scenario\": \"rand_n{PEERS}_hybrid_observed\",\n  \"peers\": {PEERS},\n  \"seed\": {SEED},\n  \"converged_at\": {},\n  \"rounds_run\": {},\n  \"journal_events\": {},\n  \"journal_dropped\": {},\n  \"events_by_kind\": {{\n{kinds}\n  }},\n  \"scrapes\": {},\n  \"health_probes\": {},\n  \"work_actions\": {},\n  \"work_rng_draws\": {},\n  \"work_oracle_queries\": {},\n  \"work_interactions\": {},\n  \"work_attaches\": {},\n  \"work_detaches\": {},\n  \"final_satisfied_fraction\": {:.6},\n  \"final_max_depth\": {},\n  \"final_mean_depth\": {:.6}\n}}\n",
        observed
            .outcome
            .converged_at
            .map_or("null".into(), |r| r.to_string()),
        observed.outcome.rounds_run,
        observed.journal.len(),
        observed.journal.dropped(),
        observed.scrapes.len(),
        observed.health.len(),
        work.actions,
        work.rng_draws,
        work.oracle_queries,
        work.interactions,
        work.attaches,
        work.detaches,
        last_health.satisfied_fraction,
        last_health.max_depth,
        last_health.mean_depth,
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
