//! Construction-throughput harness: runs the standard N=10k
//! Random-Delay scenario and emits `BENCH_construction.json` with
//! rounds/sec and wall-clock, so successive PRs have a perf trajectory
//! to track.
//!
//! Usage: `construction_bench [OUTPUT_PATH]` (default
//! `BENCH_construction.json` in the current directory).

use std::time::Instant;

use lagover_core::{Algorithm, ConstructionConfig, Engine, OracleKind};
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

/// The standard scenario every run of this harness measures.
const PEERS: usize = 10_000;
const ROUNDS: u64 = 100;
const SEED: u64 = 0xB_E7C1_0000;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_construction.json".into());

    let gen_start = Instant::now();
    let population = WorkloadSpec::new(TopologicalConstraint::Rand, PEERS)
        .generate(SEED)
        .expect("Rand at 10k peers is repairable");
    let generation_secs = gen_start.elapsed().as_secs_f64();

    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(ROUNDS);
    let mut engine = Engine::new(&population, &config, SEED);
    let run_start = Instant::now();
    let mut converged_at: Option<u64> = None;
    for _ in 0..ROUNDS {
        engine.step();
        if converged_at.is_none() && engine.is_converged() {
            converged_at = Some(engine.round().get());
            break;
        }
    }
    let wall_clock_secs = run_start.elapsed().as_secs_f64();
    let rounds_run = engine.round().get();
    let rounds_per_sec = rounds_run as f64 / wall_clock_secs;

    // Hand-formatted JSON: the harness must not depend on any JSON
    // crate so it stays runnable in minimal environments.
    let json = format!(
        "{{\n  \"scenario\": \"rand_n{PEERS}_hybrid_random_delay\",\n  \"peers\": {PEERS},\n  \"seed\": {SEED},\n  \"rounds_run\": {rounds_run},\n  \"converged_at\": {},\n  \"wall_clock_secs\": {wall_clock_secs:.6},\n  \"rounds_per_sec\": {rounds_per_sec:.2},\n  \"workload_generation_secs\": {generation_secs:.6},\n  \"final_satisfied_fraction\": {:.6}\n}}\n",
        converged_at.map_or("null".into(), |r| r.to_string()),
        engine.satisfied_fraction(),
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
