//! Construction-throughput harness: thin wrapper over
//! [`lagover_perf::construction_throughput`]. Runs the standard N=10k
//! Random-Delay scenario and emits `BENCH_construction.json` in the
//! unified baseline-document shape, with a work-unit layer plus
//! wall-clock samples.
//!
//! Because the wall layer is environment-dependent, this file is a
//! **CI artifact only** — never commit it (`.gitignore` enforces
//! this). See DESIGN.md §12 for the artifact policy.
//!
//! Usage: `construction_bench [OUTPUT_PATH]` (default
//! `BENCH_construction.json` in the current directory).

#![forbid(unsafe_code)]

use lagover_perf::construction_throughput;

/// The standard scenario every run of this harness measures.
const PEERS: usize = 10_000;
const ROUNDS: u64 = 100;
const SEED: u64 = 0xB_E7C1_0000;
const WALL_SAMPLES: usize = 3;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_construction.json".into());

    let doc = construction_throughput(PEERS, ROUNDS, SEED, WALL_SAMPLES);
    let json = lagover_jsonio::to_string_pretty(&doc);
    std::fs::write(&out_path, format!("{json}\n")).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
