//! §3.3.1 kernel: both algorithms on the adversarial family. Greedy
//! iterations bifurcate — fast when lucky, full-cap when wedged — which
//! shows up directly in Criterion's distribution plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_core::{construct, Algorithm, ConstructionConfig, OracleKind};
use lagover_workload::adversarial_population;

fn counterexample(c: &mut Criterion) {
    let mut group = c.benchmark_group("counterexample");
    group.sample_size(30);
    for (chain, hub) in [(2u32, 2u32), (3, 3)] {
        let population = adversarial_population(chain, hub).expect("non-degenerate");
        for algorithm in [Algorithm::Greedy, Algorithm::Hybrid] {
            let config =
                ConstructionConfig::new(algorithm, OracleKind::RandomDelay).with_max_rounds(500);
            let mut seed = 0u64;
            group.bench_with_input(
                BenchmarkId::new(format!("chain{chain}_hub{hub}"), algorithm.to_string()),
                &population,
                |b, population| {
                    b.iter(|| {
                        seed += 1;
                        std::hint::black_box(construct(population, &config, seed).rounds_run)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, counterexample);
criterion_main!(benches);
