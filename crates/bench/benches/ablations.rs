//! Ablation benches for the design choices DESIGN.md calls out: the
//! source-contact timeout, the hybrid maintenance damping, and the
//! source mode. Wall-clock per construction tracks the round count, so
//! the cliffs found by `lagover-experiments run ablations` (e.g. the
//! timeout=1 oracle starvation) are visible here as timing walls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::{construct, Algorithm, ConstructionConfig, OracleKind, SourceMode};
use lagover_workload::TopologicalConstraint;

fn ablations(c: &mut Criterion) {
    let population = bench_population(TopologicalConstraint::BiCorr);

    let mut group = c.benchmark_group("ablation_timeout_rounds");
    group.sample_size(10);
    for timeout in [2u32, 4, 8, 16] {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_timeout_rounds(timeout)
            .with_max_rounds(2_000);
        let mut seed = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(timeout),
            &population,
            |b, population| {
                b.iter(|| {
                    seed += 1;
                    std::hint::black_box(construct(population, &config, seed).rounds_run)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_maintenance_timeout");
    group.sample_size(10);
    for damping in [1u32, 3, 8] {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_maintenance_timeout(damping)
            .with_max_rounds(2_000);
        let mut seed = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(damping),
            &population,
            |b, population| {
                b.iter(|| {
                    seed += 1;
                    std::hint::black_box(construct(population, &config, seed).rounds_run)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_source_mode");
    group.sample_size(10);
    for mode in [SourceMode::Pull, SourceMode::Push] {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_source_mode(mode)
            .with_max_rounds(2_000);
        let mut seed = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(mode),
            &population,
            |b, population| {
                b.iter(|| {
                    seed += 1;
                    std::hint::black_box(construct(population, &config, seed).rounds_run)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
