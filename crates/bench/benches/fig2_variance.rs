//! Figure 2 kernel: greedy construction (Oracle Random-Delay) per
//! workload class, 120 peers, no churn. Criterion's per-iteration
//! timing variance mirrors the paper's convergence-latency variance:
//! each iteration uses a fresh seed, so run-to-run spread is visible in
//! the reported distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::{construct, Algorithm, ConstructionConfig, OracleKind};
use lagover_workload::TopologicalConstraint;

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_greedy_random_delay");
    group.sample_size(20);
    for class in TopologicalConstraint::PAPER_CLASSES {
        let population = bench_population(class);
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(3_000);
        let mut seed = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(class),
            &population,
            |b, population| {
                b.iter(|| {
                    seed += 1;
                    let outcome = construct(population, &config, seed);
                    std::hint::black_box(outcome.converged_at)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
