//! Substrate micro-benchmarks: overlay mutations and queries, oracle
//! sampling, DHT lookups, gossip walks, and workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::node::{Member, PeerId};
use lagover_core::oracle::OracleView;
use lagover_core::{Algorithm, ConstructionConfig, Engine, OracleKind, Overlay};
use lagover_dht::{Key, Ring};
use lagover_gossip::{MembershipGraph, MhWalkSampler, PeerSampler};
use lagover_sim::SimRng;
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

/// A converged 120-peer engine to query against.
fn converged_engine() -> Engine {
    let population = bench_population(TopologicalConstraint::Rand);
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(10_000);
    let mut engine = Engine::new(&population, &config, 1);
    engine.run_to_convergence().expect("converges");
    engine
}

fn overlay_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    let population = bench_population(TopologicalConstraint::Rand);

    group.bench_function("attach_detach_chain_120", |b| {
        b.iter(|| {
            let mut overlay = Overlay::new(&population);
            overlay.attach(PeerId::new(0), Member::Source).unwrap();
            for i in 1..population.len() as u32 {
                // Build a long chain; fanouts in Rand are >= 1 after
                // repair only probabilistically, so attach under the
                // deepest node that accepts.
                let mut parent = i - 1;
                loop {
                    match overlay.attach(PeerId::new(i), Member::Peer(PeerId::new(parent))) {
                        Ok(()) => break,
                        Err(_) if parent > 0 => parent -= 1,
                        Err(_) => {
                            let _ = overlay.attach(PeerId::new(i), Member::Source);
                            break;
                        }
                    }
                }
            }
            std::hint::black_box(overlay.attached_count())
        })
    });

    let engine = converged_engine();
    group.bench_function("delay_query_all_120", |b| {
        b.iter(|| {
            let total: u32 = engine
                .population()
                .peer_ids()
                .filter_map(|p| engine.overlay().delay(p))
                .sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("validate_120", |b| {
        b.iter(|| std::hint::black_box(engine.overlay().validate().is_ok()))
    });
    group.finish();
}

fn oracle_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_sample");
    let engine = converged_engine();
    let online = vec![true; engine.population().len()];
    let mut rng = SimRng::seed_from(3);
    for kind in OracleKind::ALL {
        let mut oracle = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let view = OracleView::new(engine.overlay(), engine.population(), &online);
                std::hint::black_box(oracle.sample(PeerId::new(5), &view, &mut rng))
            })
        });
    }
    group.finish();
}

fn dht_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht");
    let mut rng = SimRng::seed_from(9);
    for n in [64usize, 256, 1024] {
        let ring = Ring::bootstrap(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("lookup", n), &ring, |b, ring| {
            b.iter(|| {
                let key = Key::random(&mut rng);
                std::hint::black_box(ring.lookup(key))
            })
        });
    }
    group.finish();
}

fn gossip_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip");
    let mut rng = SimRng::seed_from(11);
    let graph = MembershipGraph::random_connected(1_000, 6, &mut rng);
    let mut sampler = MhWalkSampler::new(graph, 12);
    group.bench_function("mh_walk_1000_peers_len12", |b| {
        b.iter(|| std::hint::black_box(sampler.sample_peer(0, &mut rng)))
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generate");
    let mut seed = 0u64;
    for class in TopologicalConstraint::PAPER_CLASSES {
        group.bench_function(BenchmarkId::from_parameter(class), |b| {
            b.iter(|| loop {
                seed += 1;
                // Rare random draws are genuinely unsatisfiable; skip
                // them rather than panicking mid-benchmark.
                if let Ok(population) = WorkloadSpec::new(class, 120).generate(seed) {
                    break std::hint::black_box(population);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    overlay_ops,
    oracle_sampling,
    dht_lookup,
    gossip_walk,
    workload_generation
);
criterion_main!(benches);
