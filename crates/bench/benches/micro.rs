//! Substrate micro-benchmarks: overlay mutations and queries, oracle
//! sampling, DHT lookups, gossip walks, and workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::node::{Constraints, Member, PeerId, Population};
use lagover_core::oracle::OracleView;
use lagover_core::{Algorithm, ConstructionConfig, Engine, OracleKind, Overlay};
use lagover_dht::{Key, Ring};
use lagover_gossip::{MembershipGraph, MhWalkSampler, PeerSampler};
use lagover_sim::SimRng;
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

/// A converged 120-peer engine to query against.
fn converged_engine() -> Engine {
    let population = bench_population(TopologicalConstraint::Rand);
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(10_000);
    let mut engine = Engine::new(&population, &config, 1);
    engine.run_to_convergence().expect("converges");
    engine
}

fn overlay_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    let population = bench_population(TopologicalConstraint::Rand);

    group.bench_function("attach_detach_chain_120", |b| {
        b.iter(|| {
            let mut overlay = Overlay::new(&population);
            overlay.attach(PeerId::new(0), Member::Source).unwrap();
            for i in 1..population.len() as u32 {
                // Build a long chain; fanouts in Rand are >= 1 after
                // repair only probabilistically, so attach under the
                // deepest node that accepts.
                let mut parent = i - 1;
                loop {
                    match overlay.attach(PeerId::new(i), Member::Peer(PeerId::new(parent))) {
                        Ok(()) => break,
                        Err(_) if parent > 0 => parent -= 1,
                        Err(_) => {
                            let _ = overlay.attach(PeerId::new(i), Member::Source);
                            break;
                        }
                    }
                }
            }
            std::hint::black_box(overlay.attached_count())
        })
    });

    let engine = converged_engine();
    group.bench_function("delay_query_all_120", |b| {
        b.iter(|| {
            let total: u32 = engine
                .population()
                .peer_ids()
                .filter_map(|p| engine.overlay().delay(p))
                .sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("validate_120", |b| {
        b.iter(|| std::hint::black_box(engine.overlay().validate().is_ok()))
    });
    group.finish();
}

fn oracle_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_sample");
    let engine = converged_engine();
    let online = vec![true; engine.population().len()];
    let mut rng = SimRng::seed_from(3);
    for kind in OracleKind::ALL {
        let mut oracle = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let view = OracleView::new(engine.overlay(), engine.population(), &online);
                std::hint::black_box(oracle.sample(PeerId::new(5), &view, &mut rng))
            })
        });
    }
    group.finish();
}

fn dht_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht");
    let mut rng = SimRng::seed_from(9);
    for n in [64usize, 256, 1024] {
        let ring = Ring::bootstrap(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("lookup", n), &ring, |b, ring| {
            b.iter(|| {
                let key = Key::random(&mut rng);
                std::hint::black_box(ring.lookup(key))
            })
        });
    }
    group.finish();
}

fn gossip_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip");
    let mut rng = SimRng::seed_from(11);
    let graph = MembershipGraph::random_connected(1_000, 6, &mut rng);
    let mut sampler = MhWalkSampler::new(graph, 12);
    group.bench_function("mh_walk_1000_peers_len12", |b| {
        b.iter(|| std::hint::black_box(sampler.sample_peer(0, &mut rng)))
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generate");
    let mut seed = 0u64;
    for class in TopologicalConstraint::PAPER_CLASSES {
        group.bench_function(BenchmarkId::from_parameter(class), |b| {
            b.iter(|| loop {
                seed += 1;
                // Rare random draws are genuinely unsatisfiable; skip
                // them rather than panicking mid-benchmark.
                if let Ok(population) = WorkloadSpec::new(class, 120).generate(seed) {
                    break std::hint::black_box(population);
                }
            })
        });
    }
    group.finish();
}

/// A worst-case 10k-peer overlay: one chain hanging off the source, so
/// chain walks are O(N) deep while cached queries stay O(1).
fn chain_overlay_10k() -> (Overlay, Population) {
    let n = 10_000usize;
    let population = Population::new(1, vec![Constraints::new(1, 2 * n as u32); n]);
    let mut overlay = Overlay::new(&population);
    overlay.attach(PeerId::new(0), Member::Source).unwrap();
    for i in 1..n as u32 {
        overlay
            .attach(PeerId::new(i), Member::Peer(PeerId::new(i - 1)))
            .unwrap();
    }
    (overlay, population)
}

/// The tentpole before/after pair at N=10k: cached O(1) delay queries
/// vs the O(depth) chain walk they replaced.
fn delay_cache_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_10k");
    group.sample_size(20);
    let (overlay, _population) = chain_overlay_10k();
    // Sample every 97th peer so one iteration stays bounded while still
    // touching all depths of the chain.
    let probes: Vec<PeerId> = (0..10_000u32).step_by(97).map(PeerId::new).collect();
    group.bench_function("cached", |b| {
        b.iter(|| {
            let total: u64 = probes
                .iter()
                .filter_map(|&p| overlay.delay(p))
                .map(u64::from)
                .sum();
            std::hint::black_box(total)
        })
    });
    group.bench_function("chain_walk", |b| {
        b.iter(|| {
            let total: u64 = probes
                .iter()
                .filter_map(|&p| overlay.walk_delay(p))
                .map(u64::from)
                .sum();
            std::hint::black_box(total)
        })
    });
    group.finish();
}

/// The pre-PR `sample_filtered`: collect an O(N) candidate vector, with
/// the delay predicate walking the chain per candidate (delay queries
/// were O(depth) then). Kept here as the benchmark baseline.
fn legacy_delay_sample(
    enquirer: PeerId,
    view: &OracleView<'_>,
    rng: &mut SimRng,
    l: u32,
) -> Option<PeerId> {
    let candidates: Vec<PeerId> = (0..view.len() as u32)
        .map(PeerId::new)
        .filter(|&p| {
            p != enquirer
                && view.is_online(p)
                && matches!(view.overlay().walk_delay(p), Some(d) if d < l)
        })
        .collect();
    rng.choose(&candidates).copied()
}

/// The before/after oracle-sampling pair at N=10k (Random-Delay, the
/// paper's recommended O3).
fn oracle_sampling_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_sample_10k");
    group.sample_size(10);
    let (overlay, population) = chain_overlay_10k();
    let online = vec![true; population.len()];
    let enquirer = PeerId::new(5);
    let l = population.latency(enquirer);
    let mut rng = SimRng::seed_from(17);
    group.bench_function("allocation_free", |b| {
        let mut oracle = OracleKind::RandomDelay.build();
        b.iter(|| {
            let view = OracleView::new(&overlay, &population, &online);
            std::hint::black_box(oracle.sample(enquirer, &view, &mut rng))
        })
    });
    group.bench_function("legacy_collect", |b| {
        b.iter(|| {
            let view = OracleView::new(&overlay, &population, &online);
            std::hint::black_box(legacy_delay_sample(enquirer, &view, &mut rng, l))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    overlay_ops,
    oracle_sampling,
    dht_lookup,
    gossip_walk,
    workload_generation,
    delay_cache_10k,
    oracle_sampling_10k
);
criterion_main!(benches);
