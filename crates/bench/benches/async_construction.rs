//! §5.3 kernel: event-driven construction — lockstep baseline vs
//! heterogeneous RTT-derived interaction durations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::{
    run_async, run_async_lockstep, Algorithm, ConstructionConfig, OracleKind, PeerId,
};
use lagover_net::{DurationModel, LatencyConfig, LatencySpace, RttInteractionModel};
use lagover_sim::SimRng;
use lagover_workload::TopologicalConstraint;

fn async_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_construction");
    group.sample_size(10);
    let population = bench_population(TopologicalConstraint::Rand);
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(3_000);

    let mut seed = 0u64;
    group.bench_function(BenchmarkId::new("mode", "lockstep"), |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(
                run_async_lockstep(&population, &config, 3_000.0, seed).converged_at,
            )
        })
    });

    let mut rng = SimRng::seed_from(0xA54C);
    let space = LatencySpace::generate(population.len(), &LatencyConfig::default(), &mut rng);
    let model = RttInteractionModel::new(space, 2.0);
    let mut seed2 = 0u64;
    group.bench_function(BenchmarkId::new("mode", "rtt_async"), |b| {
        b.iter(|| {
            seed2 += 1;
            let model = model.clone();
            let outcome = run_async(
                &population,
                &config,
                move |p: PeerId, rng: &mut SimRng| {
                    // Raw RTT durations (base 0.1): strictly positive,
                    // heterogeneous across peers.
                    model.interaction_duration(p.index(), rng) * 2.0 + 0.5
                },
                30_000.0,
                seed2,
            );
            std::hint::black_box(outcome.converged_at)
        })
    });
    group.finish();
}

criterion_group!(benches, async_construction);
criterion_main!(benches);
