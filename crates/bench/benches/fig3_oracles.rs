//! Figure 3 kernel: greedy construction under each Oracle, per
//! workload class. Non-converging oracle/workload pairs (O2b) cost the
//! full round cap — exactly the wall the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::{construct, Algorithm, ConstructionConfig, OracleKind};
use lagover_workload::TopologicalConstraint;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_oracles");
    group.sample_size(10);
    for class in [TopologicalConstraint::Rand, TopologicalConstraint::BiCorr] {
        let population = bench_population(class);
        for kind in OracleKind::ALL {
            // O2b runs hit the cap; keep it modest so the bench ends.
            let cap = if kind == OracleKind::RandomDelayCapacity {
                500
            } else {
                3_000
            };
            let config = ConstructionConfig::new(Algorithm::Greedy, kind).with_max_rounds(cap);
            let mut seed = 0u64;
            group.bench_with_input(
                BenchmarkId::new(class.to_string(), kind.label()),
                &population,
                |b, population| {
                    b.iter(|| {
                        seed += 1;
                        let outcome = construct(population, &config, seed);
                        std::hint::black_box(outcome.rounds_run)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
