//! §1 motivation kernel: feed dissemination over a converged overlay
//! plus the server-load comparison, at increasing population sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lagover_core::{Algorithm, ConstructionConfig, Engine, OracleKind};
use lagover_feed::{compare_server_load, disseminate, DisseminationConfig, PublishSchedule};
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

fn server_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_load");
    group.sample_size(10);
    for peers in [60usize, 120, 240] {
        let population = WorkloadSpec::new(TopologicalConstraint::Rand, peers)
            .generate(0xFEED)
            .expect("repairable");
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let mut engine = Engine::new(&population, &config, 0xFEED);
        engine.run_to_convergence().expect("converges");
        let dconfig = DisseminationConfig {
            pull_interval: 1,
            rounds: 300,
            schedule: PublishSchedule::Periodic { interval: 3 },
        };
        group.throughput(Throughput::Elements(peers as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(peers),
            &(engine, population),
            |b, (engine, population)| {
                b.iter(|| {
                    let report = disseminate(engine.overlay(), population, &dconfig, 1);
                    let load = compare_server_load(engine.overlay(), population, 1);
                    std::hint::black_box((report.items_published, load.reduction_factor))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, server_load);
criterion_main!(benches);
