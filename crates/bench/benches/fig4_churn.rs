//! Figure 4 kernel: greedy vs hybrid on the BiCorr workload, without
//! churn (run to convergence) and with the paper's churn model (fixed
//! 400-round horizon).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lagover_bench::bench_population;
use lagover_core::{construct, run_with_churn, Algorithm, ConstructionConfig, OracleKind};
use lagover_workload::{ChurnSpec, TopologicalConstraint};

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_greedy_vs_hybrid");
    group.sample_size(10);
    let population = bench_population(TopologicalConstraint::BiCorr);
    for algorithm in [Algorithm::Greedy, Algorithm::Hybrid] {
        let config =
            ConstructionConfig::new(algorithm, OracleKind::RandomDelay).with_max_rounds(3_000);
        let mut seed = 0u64;
        group.bench_with_input(
            BenchmarkId::new("no_churn", algorithm.to_string()),
            &population,
            |b, population| {
                b.iter(|| {
                    seed += 1;
                    std::hint::black_box(construct(population, &config, seed).converged_at)
                })
            },
        );
        let mut seed2 = 0u64;
        group.bench_with_input(
            BenchmarkId::new("paper_churn_400_rounds", algorithm.to_string()),
            &population,
            |b, population| {
                b.iter(|| {
                    seed2 += 1;
                    let mut churn = ChurnSpec::Paper.build();
                    let outcome = run_with_churn(population, &config, churn.as_mut(), 400, seed2);
                    std::hint::black_box(outcome.steady_state_fraction)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
