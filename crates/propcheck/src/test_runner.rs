//! Deterministic case runner: fixed seeds, no shrinking, no persistence.

use std::fmt;

/// Per-`proptest!` block configuration. Only the knob the workspace
/// actually uses (`cases`) is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Mirror of `ProptestConfig::with_cases`.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps the deterministic suite
        // fast while still exercising each property broadly. Tests that
        // need more set `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 48 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a replacement case.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// splitmix64 — the same deterministic seeding primitive the simulator's
/// RNG uses, self-contained here so the shim stays dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream. Equal seeds give equal draw sequences.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is ill-defined");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the fully qualified test name: every test gets its own
/// stable stream, independent of declaration order.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one property: draws cases until `config.cases` are accepted,
/// panicking (with the case index and stream seed) on the first failure.
///
/// # Panics
///
/// On the first failing case, or when rejections exceed the iteration
/// budget (`cases * 20`, at least 1000).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = seed_for(name);
    let mut rng = TestRng::from_seed(seed);
    let budget = config.cases.saturating_mul(20).max(1000);
    let mut accepted = 0u32;
    for attempt in 0..budget {
        if accepted == config.cases {
            return;
        }
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => panic!(
                "property {name} failed at case {accepted} \
                 (attempt {attempt}, stream seed {seed:#018x}):\n{message}"
            ),
        }
    }
    assert!(
        accepted == config.cases,
        "property {name}: only {accepted}/{} cases accepted within the \
         rejection budget ({budget} attempts); weaken prop_assume! filters",
        config.cases
    );
}
