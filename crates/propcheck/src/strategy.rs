//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A deterministic value generator. Unlike real proptest there is no
/// value tree and no shrinking: `generate` draws a concrete value
/// directly from the test's seeded stream.
pub trait Strategy {
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A B);
tuple_strategy!(A B C);
tuple_strategy!(A B C D);
