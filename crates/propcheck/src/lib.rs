//! A deterministic, dependency-free property-testing shim.
//!
//! This crate implements exactly the subset of the `proptest` API that the
//! workspace's property tests use (`proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `any`, `Just`, ranges, tuples, `prop::collection::vec`,
//! `prop::option::weighted`), backed by a fixed-seed splitmix64 generator
//! instead of an entropy source. The workspace wires it in through a
//! dependency rename (`proptest = { path = "crates/propcheck", package =
//! "propcheck" }`), so test files keep their `use proptest::prelude::*;`
//! imports verbatim.
//!
//! Two deliberate departures from real proptest, both in service of the
//! determinism audit (`cargo xtask lint` / `replay-diff`):
//!
//! * **No shrinking.** A failing case panics with the case index and the
//!   derived stream seed; re-running is bit-reproducible, which replaces
//!   shrinking for debugging purposes.
//! * **No persistence.** `*.proptest-regressions` files are ignored; every
//!   run draws the same deterministic case sequence, so there are no
//!   "regression" cases to replay.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Produces the canonical strategy for a type, mirroring
/// `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

/// `prop::collection` equivalent: sized containers of a base strategy.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: any half-open or inclusive
    /// `usize` range.
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` equivalent.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` that is `Some` with probability
    /// `probability`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { probability, inner }
    }

    pub struct WeightedOption<S> {
        probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the `prop` module re-export in proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs each contained `fn name(arg in strategy, ..) { body }` as a
/// deterministic multi-case test. Accepts an optional leading
/// `#![proptest_config(..)]` just like real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__propcheck_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__propcheck_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __propcheck_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code, unused_mut, unused_variables, clippy::all)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |__propcheck_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __propcheck_rng);)*
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__propcheck_fns!{ ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {x}")` — fails the
/// current case (not the whole process) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}\n{}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assume!(cond)` — discards the current case (drawing a fresh one)
/// when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// `prop_oneof![a, b, c]` — uniform choice between heterogeneous
/// strategies sharing a `Value` type (each arm is boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
