//! Measured pairwise RTT matrices (king / planetlab style).
//!
//! The synthetic substrates embed peers in a metric space, so every
//! RTT obeys the triangle inequality by construction. Real internet
//! paths do not: king-method measurements routinely show triangle
//! inequality violations (TIVs) from policy routing and access-link
//! asymmetry, and underlay-aware overlay work argues those violations
//! are exactly where overlay construction choices matter. This module
//! loads a measured matrix behind the same [`DurationModel`] seam as
//! the synthetic spaces so fig3/fig4 re-run on real-shaped latencies.
//!
//! A small committed sample ships with the crate
//! ([`MeasuredSpace::king_sample`]); larger matrices load from the same
//! text format: optional `#` comment lines, a host-count line, then one
//! whitespace-separated millisecond row per host (symmetric, zero
//! diagonal).

use serde::{Deserialize, Serialize};

use lagover_sim::SimRng;

use crate::duration::DurationModel;

/// The committed king-style sample matrix (48 hosts, 4 regions,
/// access-link penalties and routing detours producing ~4% TIV
/// triples).
const KING_SAMPLE: &str = include_str!("../data/king_sample.rtt");

/// Parameters applied on top of a measured matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredConfig {
    /// Multiplies every millisecond entry into virtual time units.
    /// The default maps 200 ms to one time unit, which puts the
    /// committed sample in the same range as the synthetic substrates.
    pub scale: f64,
    /// Maximum multiplicative jitter, as in
    /// [`crate::LatencyConfig::jitter`]: each sampled RTT is scaled by
    /// a uniform factor in `[1, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for MeasuredConfig {
    fn default() -> Self {
        MeasuredConfig {
            scale: 0.005,
            jitter: 0.2,
        }
    }
}

/// A malformed matrix file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredSpaceError(pub String);

impl std::fmt::Display for MeasuredSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "measured rtt matrix: {}", self.0)
    }
}

impl std::error::Error for MeasuredSpaceError {}

/// A dense symmetric RTT matrix loaded from measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredSpace {
    /// Row-major scaled RTTs (virtual time units), `hosts * hosts`.
    rtts: Vec<f64>,
    hosts: usize,
    config: MeasuredConfig,
}

impl MeasuredSpace {
    /// Parses the text format described in the module docs and applies
    /// `config.scale` to every entry.
    pub fn parse(text: &str, config: MeasuredConfig) -> Result<Self, MeasuredSpaceError> {
        assert!(config.scale > 0.0, "scale must be positive");
        assert!(config.jitter >= 0.0, "jitter must be non-negative");
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let hosts: usize = lines
            .next()
            .ok_or_else(|| MeasuredSpaceError("empty file".into()))?
            .parse()
            .map_err(|e| MeasuredSpaceError(format!("bad host count: {e}")))?;
        if hosts == 0 {
            return Err(MeasuredSpaceError("zero hosts".into()));
        }
        let mut rtts = Vec::with_capacity(hosts * hosts);
        for (i, line) in lines.enumerate() {
            if i >= hosts {
                return Err(MeasuredSpaceError(format!("more than {hosts} rows")));
            }
            let row: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
            let row = row.map_err(|e| MeasuredSpaceError(format!("row {i}: {e}")))?;
            if row.len() != hosts {
                return Err(MeasuredSpaceError(format!(
                    "row {i} has {} entries, expected {hosts}",
                    row.len()
                )));
            }
            for (j, &ms) in row.iter().enumerate() {
                if !ms.is_finite() || ms < 0.0 {
                    return Err(MeasuredSpaceError(format!("rtt[{i}][{j}] = {ms}")));
                }
                if i == j && ms != 0.0 {
                    return Err(MeasuredSpaceError(format!("nonzero diagonal at {i}")));
                }
                rtts.push(ms * config.scale);
            }
        }
        if rtts.len() != hosts * hosts {
            return Err(MeasuredSpaceError(format!(
                "{} rows, expected {hosts}",
                rtts.len() / hosts
            )));
        }
        for a in 0..hosts {
            for b in (a + 1)..hosts {
                if rtts[a * hosts + b] != rtts[b * hosts + a] {
                    return Err(MeasuredSpaceError(format!("asymmetric at ({a}, {b})")));
                }
            }
        }
        Ok(MeasuredSpace {
            rtts,
            hosts,
            config,
        })
    }

    /// The committed 48-host king-style sample.
    ///
    /// # Panics
    ///
    /// Never for valid configs: the embedded matrix parses (pinned by a
    /// test).
    pub fn king_sample(config: MeasuredConfig) -> Self {
        Self::parse(KING_SAMPLE, config).expect("embedded sample parses")
    }

    /// Number of measured hosts.
    pub fn len(&self) -> usize {
        self.hosts
    }

    /// Whether the matrix is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.hosts == 0
    }

    /// The applied parameters.
    pub fn config(&self) -> &MeasuredConfig {
        &self.config
    }

    /// Scaled RTT between two hosts. Indices beyond the matrix wrap, so
    /// populations larger than the measurement set reuse hosts (the
    /// standard trick for scaling a fixed matrix).
    pub fn rtt(&self, a: usize, b: usize) -> f64 {
        let (a, b) = (a % self.hosts, b % self.hosts);
        self.rtts[a * self.hosts + b]
    }

    /// RTT with multiplicative jitter applied — the same single-draw
    /// pattern as [`crate::LatencySpace::rtt_jittered`].
    pub fn rtt_jittered(&self, a: usize, b: usize, rng: &mut SimRng) -> f64 {
        let factor = 1.0 + rng.f64() * self.config.jitter;
        self.rtt(a, b) * factor
    }

    /// Fraction of ordered triples `(a, b, c)` where the detour through
    /// `c` beats the direct path — the triangle inequality violations a
    /// metric embedding cannot express. O(n³); analysis only.
    pub fn tiv_fraction(&self) -> f64 {
        let n = self.hosts;
        let mut violations = 0u64;
        let mut total = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                let direct = self.rtt(a, b);
                for c in 0..n {
                    if c == a || c == b {
                        continue;
                    }
                    total += 1;
                    if self.rtt(a, c) + self.rtt(c, b) < direct {
                        violations += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            violations as f64 / total as f64
        }
    }
}

/// Interaction duration proportional to the initiating peer's measured
/// RTT to a random partner — [`crate::RttInteractionModel`] with the
/// synthetic space swapped for a measured matrix. The per-call draw
/// pattern (one partner index, one jitter uniform) is identical, so
/// substituting substrates never shifts downstream draw sites.
#[derive(Debug, Clone)]
pub struct MeasuredInteractionModel {
    space: MeasuredSpace,
    /// Number of round trips per interaction.
    pub round_trips: f64,
}

impl MeasuredInteractionModel {
    /// Creates the model over a measured matrix.
    ///
    /// # Panics
    ///
    /// Panics if `round_trips` is not strictly positive or the matrix
    /// has fewer than two hosts (a lone host has only the zero-RTT
    /// diagonal to interact over).
    pub fn new(space: MeasuredSpace, round_trips: f64) -> Self {
        assert!(round_trips > 0.0, "round_trips must be positive");
        assert!(space.len() > 1, "need at least two measured hosts");
        MeasuredInteractionModel { space, round_trips }
    }

    /// The underlying matrix.
    pub fn space(&self) -> &MeasuredSpace {
        &self.space
    }
}

impl DurationModel for MeasuredInteractionModel {
    fn interaction_duration(&self, peer: usize, rng: &mut SimRng) -> f64 {
        let len = self.space.len();
        let me = peer % len;
        // One partner draw like the synthetic model. The matrix's zero
        // diagonal would produce a zero duration (the trait demands
        // strictly positive), so a self-draw steps to the next host —
        // same draw count, no zero.
        let mut partner = rng.index(len);
        if partner == me {
            partner = (partner + 1) % len;
        }
        let rtt = self.space.rtt_jittered(me, partner, rng);
        rtt * self.round_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_sample_parses_and_has_tivs() {
        let space = MeasuredSpace::king_sample(MeasuredConfig::default());
        assert_eq!(space.len(), 48);
        assert_eq!(space.rtt(3, 3), 0.0);
        assert_eq!(space.rtt(1, 7), space.rtt(7, 1));
        let tiv = space.tiv_fraction();
        assert!(
            tiv > 0.01 && tiv < 0.2,
            "sample should violate triangles in a king-like band, got {tiv}"
        );
    }

    #[test]
    fn scale_is_applied() {
        let unit = MeasuredSpace::king_sample(MeasuredConfig {
            scale: 1.0,
            jitter: 0.0,
        });
        let halved = MeasuredSpace::king_sample(MeasuredConfig {
            scale: 0.5,
            jitter: 0.0,
        });
        assert_eq!(halved.rtt(0, 1), unit.rtt(0, 1) * 0.5);
    }

    #[test]
    fn indices_wrap_for_oversized_populations() {
        let space = MeasuredSpace::king_sample(MeasuredConfig::default());
        assert_eq!(space.rtt(0, 1), space.rtt(48, 49));
    }

    #[test]
    fn jitter_bounded_like_synthetic_spaces() {
        let space = MeasuredSpace::king_sample(MeasuredConfig {
            scale: 0.005,
            jitter: 0.5,
        });
        let base = space.rtt(0, 1);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..500 {
            let j = space.rtt_jittered(0, 1, &mut rng);
            assert!(j >= base && j <= base * 1.5 + 1e-12);
        }
    }

    #[test]
    fn duration_model_mirrors_rtt_model_draws() {
        let space = MeasuredSpace::king_sample(MeasuredConfig::default());
        let model = MeasuredInteractionModel::new(space, 2.0);
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        let _ = model.interaction_duration(0, &mut a);
        // Two draws per call: partner index, jitter factor.
        b.index(model.space().len());
        b.f64();
        assert_eq!(a.f64(), b.f64(), "draw counts diverged");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let cfg = MeasuredConfig::default();
        assert!(MeasuredSpace::parse("", cfg).is_err());
        assert!(MeasuredSpace::parse("2\n0 1\n", cfg).is_err());
        assert!(MeasuredSpace::parse("2\n0 1\n2 0\n", cfg).is_err());
        assert!(MeasuredSpace::parse("1\n5\n", cfg).is_err());
        assert!(MeasuredSpace::parse("2\n0 1\n1 0\n0 0\n", cfg).is_err());
        assert!(MeasuredSpace::parse("2\n0 nan\nnan 0\n", cfg).is_err());
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "# header\n\n2\n# row comment\n0 3.5\n3.5 0\n";
        let space = MeasuredSpace::parse(
            text,
            MeasuredConfig {
                scale: 1.0,
                jitter: 0.0,
            },
        )
        .expect("parses");
        assert_eq!(space.rtt(0, 1), 3.5);
    }
}
