//! Interaction-duration models for asynchronous construction.
//!
//! The synchronous (round-based) simulator charges every interaction one
//! round. The asynchronous experiments replace that with a per-peer
//! duration drawn from a [`DurationModel`]; `lagover-core` stays
//! decoupled from this crate by accepting any implementation of the
//! trait.

use lagover_sim::SimRng;

use crate::latency::LatencySpace;

/// Supplies the wall-clock cost of one interaction initiated by `peer`.
pub trait DurationModel {
    /// Duration (in virtual time units) of the next interaction initiated
    /// by `peer`. Must be strictly positive.
    fn interaction_duration(&self, peer: usize, rng: &mut SimRng) -> f64;
}

/// Every interaction takes exactly `duration` time units — the lockstep
/// baseline expressed in the asynchronous machinery (useful for
/// validating that the event-driven engine reproduces the round-based
/// one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedDuration {
    /// The constant interaction duration.
    pub duration: f64,
}

impl FixedDuration {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive.
    pub fn new(duration: f64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        FixedDuration { duration }
    }
}

impl DurationModel for FixedDuration {
    fn interaction_duration(&self, _peer: usize, _rng: &mut SimRng) -> f64 {
        self.duration
    }
}

/// Interaction duration proportional to the initiating peer's RTT to a
/// random partner in the latency space: an interaction is a handful of
/// message exchanges, so its cost scales with the peer's typical RTT.
#[derive(Debug, Clone)]
pub struct RttInteractionModel {
    space: LatencySpace,
    /// Number of round trips per interaction (enquiry, negotiation,
    /// reconfiguration acknowledgements).
    pub round_trips: f64,
}

impl RttInteractionModel {
    /// Creates the model over a latency space.
    ///
    /// # Panics
    ///
    /// Panics if `round_trips` is not strictly positive or the space is
    /// empty.
    pub fn new(space: LatencySpace, round_trips: f64) -> Self {
        assert!(round_trips > 0.0, "round_trips must be positive");
        assert!(!space.is_empty(), "latency space must be non-empty");
        RttInteractionModel { space, round_trips }
    }

    /// The underlying latency space.
    pub fn space(&self) -> &LatencySpace {
        &self.space
    }
}

impl DurationModel for RttInteractionModel {
    fn interaction_duration(&self, peer: usize, rng: &mut SimRng) -> f64 {
        let partner = rng.index(self.space.len());
        let rtt = self
            .space
            .rtt_jittered(peer % self.space.len(), partner, rng);
        rtt * self.round_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyConfig;

    #[test]
    fn fixed_duration_is_constant() {
        let m = FixedDuration::new(1.0);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(m.interaction_duration(0, &mut rng), 1.0);
        assert_eq!(m.interaction_duration(5, &mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fixed_duration_rejects_zero() {
        FixedDuration::new(0.0);
    }

    #[test]
    fn rtt_model_durations_are_positive_and_heterogeneous() {
        let mut rng = SimRng::seed_from(8);
        let space = LatencySpace::generate(40, &LatencyConfig::default(), &mut rng);
        let model = RttInteractionModel::new(space, 3.0);
        let d: Vec<f64> = (0..40)
            .map(|p| model.interaction_duration(p, &mut rng))
            .collect();
        assert!(d.iter().all(|&x| x > 0.0));
        let min = d.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = d.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "expected heterogeneous durations");
    }

    #[test]
    fn rtt_model_out_of_range_peer_wraps() {
        let mut rng = SimRng::seed_from(9);
        let space = LatencySpace::generate(4, &LatencyConfig::default(), &mut rng);
        let model = RttInteractionModel::new(space, 1.0);
        // Peer index beyond the space is wrapped rather than panicking,
        // since the source (node 0) shares the space with consumers.
        let d = model.interaction_duration(10, &mut rng);
        assert!(d > 0.0);
    }
}
