#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # lagover-net
//!
//! Synthetic network-latency substrate for the LagOver reproduction.
//!
//! The paper's asynchronous experiments (§5.3) let *"different peers need
//! different amounts of time to complete the interactions"*. The authors
//! ran on an unspecified latency model; we substitute a standard
//! synthetic one (documented in `DESIGN.md` §3): peers are embedded in a
//! 2-D Euclidean coordinate space (the same abstraction network
//! coordinate systems such as Vivaldi recover from real round-trip
//! times), and the RTT between two peers is an affine function of their
//! distance plus optional jitter. Only the *relative heterogeneity* of
//! interaction durations matters for the asynchrony result, which this
//! model preserves.
//!
//! # Example
//!
//! ```
//! use lagover_net::{LatencySpace, LatencyConfig};
//! use lagover_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let space = LatencySpace::generate(50, &LatencyConfig::default(), &mut rng);
//! let rtt = space.rtt(0, 1);
//! assert!(rtt >= LatencyConfig::default().base_rtt);
//! ```

pub mod clusters;
pub mod coords;
pub mod duration;
pub mod latency;
pub mod measured;
pub mod spacespec;

pub use clusters::{ClusterConfig, ClusteredSpace};
pub use coords::Coord;
pub use duration::{DurationModel, FixedDuration, RttInteractionModel};
pub use latency::{LatencyConfig, LatencySpace};
pub use measured::{MeasuredConfig, MeasuredInteractionModel, MeasuredSpace, MeasuredSpaceError};
pub use spacespec::{SpaceSpec, Substrate, SubstrateModel};
