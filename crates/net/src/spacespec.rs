//! Serializable substrate selection.
//!
//! Experiment drivers used to construct their latency substrate inline
//! (`LatencySpace::generate(...)` in the middle of a driver loop),
//! which made "which network did this figure run on?" invisible to the
//! serialized report and impossible to vary without editing the
//! driver. [`SpaceSpec`] names the substrate as data — synthetic
//! unit-square, clustered, or a measured matrix — and builds it behind
//! one seam. Specs round-trip through both serializers (`serde` for
//! in-memory tooling, `jsonio` for the deterministic report writer).
//!
//! Building a spec consumes exactly the same rng draws as the inline
//! construction it replaced (the constructors are shared), so routing
//! an existing experiment through the seam never shifts a draw site.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

use lagover_sim::SimRng;

use crate::clusters::{ClusterConfig, ClusteredSpace};
use crate::duration::{DurationModel, RttInteractionModel};
use crate::latency::{LatencyConfig, LatencySpace};
use crate::measured::{MeasuredConfig, MeasuredInteractionModel, MeasuredSpace};

/// A substrate named as data: what to build, not how.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpaceSpec {
    /// Peers placed uniformly in the unit square.
    Synthetic {
        /// Number of coordinate points to place.
        peers: usize,
        /// The affine RTT model.
        config: LatencyConfig,
    },
    /// Peers grouped into ISP-style clusters.
    Clustered {
        /// Number of coordinate points to place.
        peers: usize,
        /// Cluster placement plus the RTT model.
        config: ClusterConfig,
    },
    /// The committed measured king-style matrix (indices wrap when the
    /// population outgrows the measurement set).
    Measured {
        /// Scale and jitter applied to the matrix.
        config: MeasuredConfig,
    },
}

impl SpaceSpec {
    /// A synthetic space with the default RTT model.
    pub fn synthetic(peers: usize) -> Self {
        SpaceSpec::Synthetic {
            peers,
            config: LatencyConfig::default(),
        }
    }

    /// A clustered space with the default placement.
    pub fn clustered(peers: usize) -> Self {
        SpaceSpec::Clustered {
            peers,
            config: ClusterConfig::default(),
        }
    }

    /// The measured sample with default scale/jitter.
    pub fn measured() -> Self {
        SpaceSpec::Measured {
            config: MeasuredConfig::default(),
        }
    }

    /// Stable label for reports and CLI flags.
    pub fn kind(&self) -> &'static str {
        match self {
            SpaceSpec::Synthetic { .. } => "synthetic",
            SpaceSpec::Clustered { .. } => "clustered",
            SpaceSpec::Measured { .. } => "measured",
        }
    }

    /// Builds the substrate. Synthetic and clustered placements draw
    /// from `rng` exactly as their direct constructors do; the measured
    /// matrix draws nothing.
    pub fn build(&self, rng: &mut SimRng) -> Substrate {
        match self {
            SpaceSpec::Synthetic { peers, config } => {
                Substrate::Synthetic(LatencySpace::generate(*peers, config, rng))
            }
            SpaceSpec::Clustered { peers, config } => {
                Substrate::Clustered(ClusteredSpace::generate(*peers, config, rng))
            }
            SpaceSpec::Measured { config } => {
                Substrate::Measured(MeasuredSpace::king_sample(*config))
            }
        }
    }
}

impl ToJson for SpaceSpec {
    fn to_json(&self) -> Json {
        match self {
            SpaceSpec::Synthetic { peers, config } => object(vec![
                ("kind", Json::Str("synthetic".into())),
                ("peers", peers.to_json()),
                ("base_rtt", config.base_rtt.to_json()),
                ("rtt_per_unit", config.rtt_per_unit.to_json()),
                ("jitter", config.jitter.to_json()),
            ]),
            SpaceSpec::Clustered { peers, config } => object(vec![
                ("kind", Json::Str("clustered".into())),
                ("peers", peers.to_json()),
                ("clusters", config.clusters.to_json()),
                ("scatter", config.scatter.to_json()),
                ("base_rtt", config.latency.base_rtt.to_json()),
                ("rtt_per_unit", config.latency.rtt_per_unit.to_json()),
                ("jitter", config.latency.jitter.to_json()),
            ]),
            SpaceSpec::Measured { config } => object(vec![
                ("kind", Json::Str("measured".into())),
                ("scale", config.scale.to_json()),
                ("jitter", config.jitter.to_json()),
            ]),
        }
    }
}

impl FromJson for SpaceSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = String::from_json(value.get("kind")?)?;
        let f = |key: &str| -> Result<f64, JsonError> { f64::from_json(value.get(key)?) };
        Ok(match kind.as_str() {
            "synthetic" => SpaceSpec::Synthetic {
                peers: usize::from_json(value.get("peers")?)?,
                config: LatencyConfig {
                    base_rtt: f("base_rtt")?,
                    rtt_per_unit: f("rtt_per_unit")?,
                    jitter: f("jitter")?,
                },
            },
            "clustered" => SpaceSpec::Clustered {
                peers: usize::from_json(value.get("peers")?)?,
                config: ClusterConfig {
                    clusters: usize::from_json(value.get("clusters")?)?,
                    scatter: f("scatter")?,
                    latency: LatencyConfig {
                        base_rtt: f("base_rtt")?,
                        rtt_per_unit: f("rtt_per_unit")?,
                        jitter: f("jitter")?,
                    },
                },
            },
            "measured" => SpaceSpec::Measured {
                config: MeasuredConfig {
                    scale: f("scale")?,
                    jitter: f("jitter")?,
                },
            },
            other => return Err(JsonError(format!("unknown substrate kind {other:?}"))),
        })
    }
}

/// A built substrate: the space behind a [`SpaceSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum Substrate {
    /// Uniform unit-square placement.
    Synthetic(LatencySpace),
    /// Clustered placement (keeps the membership for locality metrics).
    Clustered(ClusteredSpace),
    /// Measured matrix.
    Measured(MeasuredSpace),
}

impl Substrate {
    /// Number of endpoints the substrate models.
    pub fn len(&self) -> usize {
        match self {
            Substrate::Synthetic(s) => s.len(),
            Substrate::Clustered(c) => c.len(),
            Substrate::Measured(m) => m.len(),
        }
    }

    /// Whether the substrate is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic RTT between two endpoints.
    pub fn rtt(&self, a: usize, b: usize) -> f64 {
        match self {
            Substrate::Synthetic(s) => s.rtt(a, b),
            Substrate::Clustered(c) => c.space().rtt(a, b),
            Substrate::Measured(m) => m.rtt(a, b),
        }
    }

    /// RTT with the substrate's jitter applied (one uniform draw, every
    /// variant).
    pub fn rtt_jittered(&self, a: usize, b: usize, rng: &mut SimRng) -> f64 {
        match self {
            Substrate::Synthetic(s) => s.rtt_jittered(a, b, rng),
            Substrate::Clustered(c) => c.space().rtt_jittered(a, b, rng),
            Substrate::Measured(m) => m.rtt_jittered(a, b, rng),
        }
    }

    /// The coordinate-space view, when the substrate has one (the
    /// locality oracle and tree-cost metrics need coordinates; a
    /// measured matrix has none).
    pub fn latency_space(&self) -> Option<&LatencySpace> {
        match self {
            Substrate::Synthetic(s) => Some(s),
            Substrate::Clustered(c) => Some(c.space()),
            Substrate::Measured(_) => None,
        }
    }

    /// Wraps the substrate in its interaction-duration model. All
    /// variants draw identically per call (partner index + jitter
    /// uniform), so swapping substrates never changes draw counts.
    pub fn into_model(self, round_trips: f64) -> SubstrateModel {
        match self {
            Substrate::Synthetic(s) => {
                SubstrateModel::Rtt(RttInteractionModel::new(s, round_trips))
            }
            Substrate::Clustered(c) => {
                SubstrateModel::Rtt(RttInteractionModel::new(c.space().clone(), round_trips))
            }
            Substrate::Measured(m) => {
                SubstrateModel::Measured(MeasuredInteractionModel::new(m, round_trips))
            }
        }
    }
}

/// [`DurationModel`] over any substrate.
#[derive(Debug, Clone)]
pub enum SubstrateModel {
    /// Coordinate-space substrates.
    Rtt(RttInteractionModel),
    /// Measured-matrix substrate.
    Measured(MeasuredInteractionModel),
}

impl DurationModel for SubstrateModel {
    fn interaction_duration(&self, peer: usize, rng: &mut SimRng) -> f64 {
        match self {
            SubstrateModel::Rtt(m) => m.interaction_duration(peer, rng),
            SubstrateModel::Measured(m) => m.interaction_duration(peer, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_draws_match_inline_construction() {
        let spec = SpaceSpec::synthetic(20);
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let built = spec.build(&mut a);
        let inline = LatencySpace::generate(20, &LatencyConfig::default(), &mut b);
        assert_eq!(built.latency_space(), Some(&inline));
        assert_eq!(a.f64(), b.f64(), "draw streams diverged");
    }

    #[test]
    fn clustered_build_matches_inline_construction() {
        let spec = SpaceSpec::clustered(12);
        let mut a = SimRng::seed_from(4);
        let mut b = SimRng::seed_from(4);
        let built = spec.build(&mut a);
        let inline = ClusteredSpace::generate(12, &ClusterConfig::default(), &mut b);
        assert_eq!(built.latency_space(), Some(inline.space()));
        assert_eq!(a.f64(), b.f64(), "draw streams diverged");
    }

    #[test]
    fn measured_build_draws_nothing() {
        let mut a = SimRng::seed_from(2);
        let mut b = SimRng::seed_from(2);
        let built = SpaceSpec::measured().build(&mut a);
        assert_eq!(built.len(), 48);
        assert!(built.latency_space().is_none());
        assert_eq!(a.f64(), b.f64(), "measured build must not draw");
    }

    #[test]
    fn specs_round_trip_through_jsonio() {
        for spec in [
            SpaceSpec::synthetic(40),
            SpaceSpec::clustered(12),
            SpaceSpec::measured(),
        ] {
            let text = lagover_jsonio::to_string(&spec);
            let back: SpaceSpec = lagover_jsonio::from_str(&text).expect("parses");
            assert_eq!(back, spec, "round trip for {}", spec.kind());
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err = lagover_jsonio::from_str::<SpaceSpec>("{\"kind\": \"quantum\"}");
        assert!(err.is_err());
    }

    #[test]
    fn models_share_one_draw_pattern() {
        for spec in [
            SpaceSpec::synthetic(30),
            SpaceSpec::clustered(30),
            SpaceSpec::measured(),
        ] {
            let mut build_rng = SimRng::seed_from(7);
            let model = spec.build(&mut build_rng).into_model(2.0);
            let mut a = SimRng::seed_from(13);
            let mut b = SimRng::seed_from(13);
            let d = model.interaction_duration(3, &mut a);
            assert!(d > 0.0);
            b.f64();
            b.f64();
            assert_eq!(
                a.f64(),
                b.f64(),
                "{}: expected exactly two draws per call",
                spec.kind()
            );
        }
    }
}
