//! Clustered synthetic topologies: peers grouped into "domains"
//! (ISPs / timezones, the locality contexts of the paper's §7), with
//! cheap intra-cluster and expensive inter-cluster RTTs.
//!
//! The uniform unit-square placement of [`crate::latency`] spreads RTTs
//! smoothly; real populations are lumpy. [`ClusteredSpace`] places
//! cluster centers uniformly and scatters members tightly around them,
//! which makes locality-aware construction measurably more valuable —
//! the E10 experiment's hard mode.

use serde::{Deserialize, Serialize};

use lagover_sim::SimRng;

use crate::coords::Coord;
use crate::latency::{LatencyConfig, LatencySpace};

/// Parameters of a clustered placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of clusters (>= 1).
    pub clusters: usize,
    /// Standard scatter radius of members around their center, as a
    /// fraction of the unit square (members are placed uniformly in a
    /// square of this half-width around the center).
    pub scatter: f64,
    /// The RTT model applied on top of the coordinates.
    pub latency: LatencyConfig,
}

impl Default for ClusterConfig {
    /// Four tight clusters with the default RTT model.
    fn default() -> Self {
        ClusterConfig {
            clusters: 4,
            scatter: 0.03,
            latency: LatencyConfig::default(),
        }
    }
}

/// A latency space with known cluster membership.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteredSpace {
    space: LatencySpace,
    membership: Vec<usize>,
}

impl ClusteredSpace {
    /// Places `n` peers round-robin across clusters.
    ///
    /// # Panics
    ///
    /// Panics if `config.clusters == 0` or `n == 0`.
    pub fn generate(n: usize, config: &ClusterConfig, rng: &mut SimRng) -> Self {
        assert!(config.clusters >= 1, "need at least one cluster");
        assert!(n >= 1, "need at least one peer");
        let centers: Vec<Coord> = (0..config.clusters)
            .map(|_| Coord::sample_unit(rng))
            .collect();
        let mut coords = Vec::with_capacity(n);
        let mut membership = Vec::with_capacity(n);
        for i in 0..n {
            let cluster = i % config.clusters;
            let c = centers[cluster];
            let dx = (rng.f64() - 0.5) * 2.0 * config.scatter;
            let dy = (rng.f64() - 0.5) * 2.0 * config.scatter;
            coords.push(Coord::new(c.x + dx, c.y + dy));
            membership.push(cluster);
        }
        ClusteredSpace {
            space: LatencySpace::from_coords(coords, config.latency),
            membership,
        }
    }

    /// The underlying latency space.
    pub fn space(&self) -> &LatencySpace {
        &self.space
    }

    /// Cluster of peer `i`.
    pub fn cluster_of(&self, i: usize) -> usize {
        self.membership[i]
    }

    /// Whether two peers share a cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.membership[a] == self.membership[b]
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// Whether the space is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Mean intra-cluster and inter-cluster RTTs, measured over all
    /// pairs (O(n²); intended for analysis, not hot paths). Either is
    /// `None` when no such pair exists.
    pub fn rtt_split(&self) -> (Option<f64>, Option<f64>) {
        let n = self.len();
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for a in 0..n {
            for b in (a + 1)..n {
                let rtt = self.space.rtt(a, b);
                if self.same_cluster(a, b) {
                    intra.0 += rtt;
                    intra.1 += 1;
                } else {
                    inter.0 += rtt;
                    inter.1 += 1;
                }
            }
        }
        (
            (intra.1 > 0).then(|| intra.0 / intra.1 as f64),
            (inter.1 > 0).then(|| inter.0 / inter.1 as f64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_membership() {
        let mut rng = SimRng::seed_from(1);
        let cs = ClusteredSpace::generate(10, &ClusterConfig::default(), &mut rng);
        assert_eq!(cs.len(), 10);
        assert_eq!(cs.cluster_of(0), 0);
        assert_eq!(cs.cluster_of(5), 1);
        assert!(cs.same_cluster(0, 4));
        assert!(!cs.same_cluster(0, 1));
    }

    #[test]
    fn intra_cluster_rtts_are_much_cheaper() {
        let mut rng = SimRng::seed_from(2);
        let config = ClusterConfig {
            clusters: 4,
            scatter: 0.02,
            latency: LatencyConfig {
                base_rtt: 0.0,
                rtt_per_unit: 1.0,
                jitter: 0.0,
            },
        };
        let cs = ClusteredSpace::generate(80, &config, &mut rng);
        let (intra, inter) = cs.rtt_split();
        let (intra, inter) = (intra.unwrap(), inter.unwrap());
        assert!(
            intra * 3.0 < inter,
            "clusters not separated: intra {intra} vs inter {inter}"
        );
    }

    #[test]
    fn single_cluster_has_no_inter_pairs() {
        let mut rng = SimRng::seed_from(3);
        let config = ClusterConfig {
            clusters: 1,
            ..ClusterConfig::default()
        };
        let cs = ClusteredSpace::generate(6, &config, &mut rng);
        let (intra, inter) = cs.rtt_split();
        assert!(intra.is_some());
        assert!(inter.is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = ClusterConfig::default();
        let a = ClusteredSpace::generate(20, &config, &mut SimRng::seed_from(9));
        let b = ClusteredSpace::generate(20, &config, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        ClusteredSpace::generate(
            5,
            &ClusterConfig {
                clusters: 0,
                ..ClusterConfig::default()
            },
            &mut SimRng::seed_from(0),
        );
    }
}
