//! 2-D synthetic network coordinates.

use serde::{Deserialize, Serialize};

use lagover_sim::SimRng;

/// A point in the unit-square coordinate space.
///
/// # Example
///
/// ```
/// use lagover_net::coords::Coord;
/// let a = Coord::new(0.0, 0.0);
/// let b = Coord::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Coord {
    /// Horizontal position.
    pub x: f64,
    /// Vertical position.
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Samples a uniform coordinate in the unit square.
    pub fn sample_unit(rng: &mut SimRng) -> Self {
        Coord {
            x: rng.f64(),
            y: rng.f64(),
        }
    }

    /// Euclidean distance to another coordinate.
    pub fn distance(self, other: Coord) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Coord::new(0.25, 0.75);
        let b = Coord::new(0.5, 0.1);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn sample_unit_stays_in_square() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let c = Coord::sample_unit(&mut rng);
            assert!((0.0..1.0).contains(&c.x));
            assert!((0.0..1.0).contains(&c.y));
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..200 {
            let a = Coord::sample_unit(&mut rng);
            let b = Coord::sample_unit(&mut rng);
            let c = Coord::sample_unit(&mut rng);
            assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
        }
    }
}
