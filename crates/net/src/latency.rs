//! Pairwise round-trip-time model over synthetic coordinates.

use serde::{Deserialize, Serialize};

use lagover_sim::SimRng;

use crate::coords::Coord;

/// Parameters of the affine RTT model
/// `rtt(a, b) = base_rtt + distance(a, b) * rtt_per_unit (+ jitter)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Fixed per-pair floor (propagation + processing), in time units.
    pub base_rtt: f64,
    /// RTT contributed per unit of coordinate distance.
    pub rtt_per_unit: f64,
    /// Maximum multiplicative jitter: each sampled RTT is scaled by a
    /// uniform factor in `[1, 1 + jitter]`. Zero disables jitter.
    pub jitter: f64,
}

impl Default for LatencyConfig {
    /// Unit-square space spanning one order of magnitude of RTTs: floor
    /// 0.1, diagonal ≈ 1.5 time units, 20% jitter.
    fn default() -> Self {
        LatencyConfig {
            base_rtt: 0.1,
            rtt_per_unit: 1.0,
            jitter: 0.2,
        }
    }
}

/// Coordinates for a peer population plus the RTT model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySpace {
    coords: Vec<Coord>,
    config: LatencyConfig,
}

impl LatencySpace {
    /// Places `n` peers uniformly in the unit square.
    pub fn generate(n: usize, config: &LatencyConfig, rng: &mut SimRng) -> Self {
        let coords = (0..n).map(|_| Coord::sample_unit(rng)).collect();
        LatencySpace {
            coords,
            config: *config,
        }
    }

    /// Builds a space from explicit coordinates (used in tests and for
    /// locality-aware experiments).
    pub fn from_coords(coords: Vec<Coord>, config: LatencyConfig) -> Self {
        LatencySpace { coords, config }
    }

    /// Number of peers in the space.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Deterministic (jitter-free) RTT between two peers.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn rtt(&self, a: usize, b: usize) -> f64 {
        let d = self.coords[a].distance(self.coords[b]);
        self.config.base_rtt + d * self.config.rtt_per_unit
    }

    /// RTT with multiplicative jitter applied.
    pub fn rtt_jittered(&self, a: usize, b: usize, rng: &mut SimRng) -> f64 {
        let factor = 1.0 + rng.f64() * self.config.jitter;
        self.rtt(a, b) * factor
    }

    /// Coordinate of a peer.
    pub fn coord(&self, i: usize) -> Coord {
        self.coords[i]
    }

    /// The model parameters.
    pub fn config(&self) -> &LatencyConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> LatencySpace {
        LatencySpace::from_coords(
            vec![
                Coord::new(0.0, 0.0),
                Coord::new(1.0, 0.0),
                Coord::new(0.0, 1.0),
            ],
            LatencyConfig {
                base_rtt: 0.5,
                rtt_per_unit: 2.0,
                jitter: 0.0,
            },
        )
    }

    #[test]
    fn rtt_is_affine_in_distance() {
        let s = space();
        assert_eq!(s.rtt(0, 1), 0.5 + 2.0);
        assert_eq!(s.rtt(0, 0), 0.5);
    }

    #[test]
    fn rtt_symmetric() {
        let s = space();
        assert_eq!(s.rtt(1, 2), s.rtt(2, 1));
    }

    #[test]
    fn jitter_bounded() {
        let s = LatencySpace::from_coords(
            vec![Coord::new(0.0, 0.0), Coord::new(1.0, 0.0)],
            LatencyConfig {
                base_rtt: 1.0,
                rtt_per_unit: 1.0,
                jitter: 0.5,
            },
        );
        let base = s.rtt(0, 1);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let j = s.rtt_jittered(0, 1, &mut rng);
            assert!(j >= base && j <= base * 1.5 + 1e-12);
        }
    }

    #[test]
    fn generate_has_requested_size() {
        let mut rng = SimRng::seed_from(6);
        let s = LatencySpace::generate(17, &LatencyConfig::default(), &mut rng);
        assert_eq!(s.len(), 17);
        assert!(!s.is_empty());
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = LatencyConfig::default();
        let a = LatencySpace::generate(10, &cfg, &mut SimRng::seed_from(9));
        let b = LatencySpace::generate(10, &cfg, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }
}
