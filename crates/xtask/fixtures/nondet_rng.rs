//! Lint fixture: ambient RNG. Expected findings: exactly two
//! `nondet-rng` hits (the decoys below must stay silent).
//!
//! A comment mentioning thread_rng must not count.

fn decoys() -> &'static str {
    "thread_rng and rand::random in a string are fine"
}

fn violation_one() {
    let mut rng = rand::thread_rng();
    let _ = rng;
}

fn violation_two() -> u64 {
    rand::random()
}
