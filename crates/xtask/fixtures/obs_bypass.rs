//! Lint fixture: observability bypasses (scanned as if it were a
//! `crates/core/src` file). Expected findings: exactly three
//! `obs-bypass` hits — `println!` in this comment, the string decoy,
//! the `Reconstructed` struct, and everything inside `#[cfg(test)]`
//! must stay silent.

fn violation_raw_stdout(round: u64) {
    println!("round {round}: still converging");
}

fn violation_raw_stderr(round: u64) {
    eprintln!("round {round}: oracle backoff");
}

/// An ad-hoc tally struct the `lagover-obs` registry should own.
struct ShadowCounters {
    attaches: u64,
}

struct FineReconstructed {
    depth: u32,
}

fn fine_string_decoy() -> &'static str {
    "println! and struct FakeCounters in a string are fine"
}

fn fine_use(s: &ShadowCounters, r: &FineReconstructed) -> u64 {
    s.attaches + u64::from(r.depth)
}

#[cfg(test)]
mod tests {
    struct TestOnlyCounters {
        hits: u64,
    }

    #[test]
    fn printing_in_tests_is_fine() {
        let c = TestOnlyCounters { hits: 1 };
        println!("{}", c.hits);
    }
}
