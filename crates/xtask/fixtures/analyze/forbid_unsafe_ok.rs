//! Fixture: crate root carrying the forbid attribute.
#![forbid(unsafe_code)]

fn main() {}
