//! Fixture: alias-aware unordered-iteration detection — renamed
//! imports and type aliases still reach the hash containers.
use std::collections::BTreeMap;
use std::collections::HashMap as Dict;
use std::collections::{BTreeSet, HashSet as Seen};

// `Index` chains through `Dict` back to HashMap.
type Index = Dict<u64, usize>;

fn f(m: &mut BTreeMap<u8, u8>) {
    let d: Dict<u8, u8> = Default::default();
    m.insert(0, 1);
    let fine: BTreeSet<u8> = BTreeSet::new();
    let i: Index = Default::default();
    let s: Seen<u8> = Default::default();
    drop((d, fine, i, s));
}
