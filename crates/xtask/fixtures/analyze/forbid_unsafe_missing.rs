//! Fixture: crate root missing the forbid attribute.
// #![forbid(unsafe_code)] — commented out, must not count.

fn main() {}
