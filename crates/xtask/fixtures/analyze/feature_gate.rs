//! Fixture: wall-clock reads must be feature-gated.

#[cfg(feature = "wall-clock")]
fn gated() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(feature = "wall-clock")]
mod gated_mod {
    pub fn since_epoch() -> std::time::SystemTime {
        std::time::SystemTime::now()
    }
}

fn ungated() { let _t = std::time::Instant::now(); }

// Instant::now in a comment is fine.

#[cfg(not(feature = "wall-clock"))]
fn negated() {
    let _t = std::time::SystemTime::now();
}

#[cfg(test)]
mod tests {
    fn t() { let _ = std::time::Instant::now(); }
}
