//! Fixture: tiered panic-surface audit. The deny tier carries no
//! invariant; the warn tier is messaged and only counted; test and
//! debug_assertions regions are exempt.

fn deny_tier(x: Option<u8>, v: &[u8]) -> u8 {
    let a = x.unwrap();
    let b = x.expect("");
    if v.is_empty() {
        panic!();
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        _ => {}
    }
    a + b
}

fn warn_tier(x: Option<u8>, v: &[u8]) -> u8 {
    let a = x.expect("invariant: filled upstream");
    if v.len() < 2 {
        panic!("fixture: need two elements");
    }
    if a == 255 {
        unreachable!("fixture: capped at 254");
    }
    v[0] + v[usize::from(a)]
}

#[cfg(test)]
mod tests {
    fn masked(x: Option<u8>) {
        x.unwrap();
    }
}

#[cfg(debug_assertions)]
fn debug_validate(x: Option<u8>) {
    x.unwrap();
}
