//! Fixture: SimRng draw-site enumeration. Draws group per enclosing
//! function; decoys in comments, strings, and test modules are
//! invisible. `r.index(4)` in this comment is not a draw.

fn pick(r: &mut SimRng, v: &[u8]) -> u8 {
    let i = r.index(v.len());
    let j = r.index(v.len());
    let c = r.choose(v).copied();
    let _s = "r.f64() in a string is not a draw";
    v[i] + v[j] + c.unwrap_or(0)
}

fn spread(r: &mut SimRng, v: &mut [u8]) -> f64 {
    r.shuffle(v);
    r.exponential(2.0)
}

#[cfg(test)]
mod tests {
    fn t(r: &mut SimRng) {
        // Test draws never perturb committed replay output.
        r.pareto(1.0, 2.0);
    }
}
