//! Lint fixture: unordered-map iteration in a serialization-adjacent
//! file (it defines a `to_json`, so map iteration order can leak into
//! serialized bytes). Expected findings: exactly two `unordered-iter`
//! hits (the `use` line and the field type).

use std::collections::HashMap;

struct Report {
    per_peer: HashMap<usize, f64>,
}

impl Report {
    fn to_json(&self) -> String {
        let mut out = String::new();
        for (peer, value) in &self.per_peer {
            out.push_str(&format!("{peer}:{value},"));
        }
        out
    }
}
