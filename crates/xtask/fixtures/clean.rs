//! Lint fixture: a clean file — deterministic RNG, ordered maps,
//! messaged expects. Expected findings: none, under every rule.

use std::collections::BTreeMap;

struct Clean {
    per_peer: BTreeMap<usize, f64>,
}

impl Clean {
    fn to_json(&self) -> String {
        let mut out = String::new();
        for (peer, value) in &self.per_peer {
            out.push_str(&format!("{peer}:{value},"));
        }
        out
    }

    fn pick(&self, seed: u64) -> u64 {
        // Seeded, deterministic — not ambient.
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn first(&self) -> f64 {
        self.per_peer
            .values()
            .next()
            .copied()
            .expect("invariant: report is never empty")
            + self.pick(1) as f64 * 0.0
    }
}
