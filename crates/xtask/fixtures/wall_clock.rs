//! Lint fixture: wall clocks. Expected findings: exactly two
//! `wall-clock` hits — Instant::now in this comment must stay silent.

fn violation_instant() {
    let _start = std::time::Instant::now();
}

fn violation_system_time() {
    let _now = std::time::SystemTime::now();
}
