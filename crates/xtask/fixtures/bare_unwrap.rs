//! Lint fixture: bare unwraps (scanned as if it were a
//! `crates/core/src` hot path). Expected findings: exactly two
//! `bare-unwrap` hits — the messaged `expect` and everything inside
//! `#[cfg(test)]` must stay silent.

fn violation_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn violation_empty_expect(x: Option<u8>) -> u8 {
    x.expect("")
}

fn fine_with_invariant_message(x: Option<u8>) -> u8 {
    x.expect("invariant: populated by the constructor")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u8).unwrap();
    }
}
