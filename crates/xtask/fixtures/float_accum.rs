//! Lint fixture: float accumulation-order hazards (scanned as if it
//! were `crates/sim/src/stats.rs`). Expected findings: exactly two
//! `float-accumulation` hits; `.summary()` must stay silent.

fn violation_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

fn violation_turbofish(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>()
}

struct S;
impl S {
    fn summary(&self) -> f64 {
        0.0
    }
}

fn not_a_violation(s: &S) -> f64 {
    s.summary()
}
