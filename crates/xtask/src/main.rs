//! `cargo xtask` — the determinism & invariant audit harness.
//!
//! Subcommands:
//!
//! * `lint` — token-level scan of every workspace `src/` tree for the
//!   determinism hazards DESIGN.md §9 bans (ambient RNG, wall clocks,
//!   unordered-map iteration feeding serialized output, float
//!   accumulation-order hazards, bare `unwrap()` in core hot paths),
//!   checked against the justified allowlist `crates/xtask/lint.allow.toml`.
//! * `replay-diff` — runs the figure drivers at `LAGOVER_THREADS=1` vs
//!   `8` plus two forced chunkings and byte-diffs the JSON outputs,
//!   proving the parallel run loops are schedule-invariant.
//! * `loom` — runs the `parallel_runs` interleaving model suite
//!   (`crates/core/tests/parallel_protocol.rs`).
//! * `miri` — runs the core + sim unit tests under Miri when the
//!   component is installed; detects its absence and skips cleanly.
//! * `bench-gate` — regenerates the perf baseline with the
//!   `lagover-perf` harness and diffs it against the committed
//!   `BENCH_baseline.json` under the `perf.gate.toml` tolerances,
//!   rendering a markdown regression table.
//! * `analyze` — structural static analysis (DESIGN.md §14): the
//!   SimRng draw-site registry, alias-aware hash-container detection,
//!   the tiered panic-surface audit, crate-DAG layering, wall-clock
//!   feature gating, and the `#![forbid(unsafe_code)]` check, with a
//!   deterministic report under `target/analyze/`.

#![forbid(unsafe_code)]

mod allowlist;
mod analyze;
mod bench_gate;
mod gate_config;
mod lint;
mod replay;

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some("analyze") => analyze::run(&args[1..]),
        Some("replay-diff") => replay::run(&args[1..]),
        Some("loom") => run_loom(),
        Some("miri") => run_miri(),
        Some("bench-gate") => bench_gate::run(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <subcommand>\n\
         \n\
         subcommands:\n\
         \x20 lint                  scan workspace sources for determinism hazards\n\
         \x20 analyze [--bless]     structural static analysis: rng draw-site\n\
         \x20                       registry, aliases, panic surface, layering,\n\
         \x20                       feature gates (--bless regenerates\n\
         \x20                       crates/xtask/rng_sites.toml)\n\
         \x20 replay-diff [FIGS..]  byte-diff figure JSON across thread counts and\n\
         \x20                       chunkings (default: fig2 fig3 fig4 scaling;\n\
         \x20                       --full for paper-scale parameters)\n\
         \x20 loom                  run the parallel_runs interleaving model suite\n\
         \x20 miri                  run core+sim unit tests under Miri (skips if\n\
         \x20                       the component is not installed)\n\
         \x20 bench-gate            diff a fresh lagover-perf run against the\n\
         \x20                       committed BENCH_baseline.json ([--strict]\n\
         \x20                       [--baseline P] [--fresh P] [--config P]\n\
         \x20                       [--compare BASE.json HEAD.json])"
    );
}

/// Workspace root, derived from this crate's manifest directory
/// (`crates/xtask` → two levels up).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// The cargo that invoked us (falls back to `cargo` on PATH when run
/// directly as a binary).
fn cargo() -> String {
    std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

/// The cargo target directory (honours `CARGO_TARGET_DIR`).
fn target_dir(root: &std::path::Path) -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target"))
}

fn run_loom() -> ExitCode {
    println!("xtask loom: running the parallel_runs interleaving model suite");
    let status = Command::new(cargo())
        .current_dir(workspace_root())
        .args(["test", "-p", "lagover-core", "--test", "parallel_protocol"])
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("xtask loom: PASS");
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("xtask loom: model suite FAILED");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask loom: could not invoke cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_miri() -> ExitCode {
    // Probe for the component first: `cargo miri --version` exits
    // non-zero (or cargo itself errors) when Miri is not installed.
    let probe = Command::new(cargo()).args(["miri", "--version"]).output();
    let available = matches!(&probe, Ok(out) if out.status.success());
    if !available {
        println!(
            "xtask miri: Miri is not installed — skipping (install with\n\
             \x20 `rustup +nightly component add miri`)"
        );
        return ExitCode::SUCCESS;
    }
    println!("xtask miri: running core + sim unit tests under Miri");
    let status = Command::new(cargo())
        .current_dir(workspace_root())
        .args([
            "miri",
            "test",
            "-p",
            "lagover-core",
            "-p",
            "lagover-sim",
            "--lib",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("xtask miri: PASS");
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("xtask miri: FAILED");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask miri: could not invoke cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
