//! Per-file `use`-alias and `type`-alias resolution for the
//! alias-aware unordered-iteration rule: a `HashMap` smuggled in as
//! `use std::collections::HashMap as Map;` or hidden behind
//! `type Index = HashMap<PeerId, usize>;` is still a `HashMap`.
//!
//! Resolution is lexical and per-file, matching the engine's
//! philosophy: no type inference, just every local name that
//! *textually* binds to one of the tracked targets. Chained aliases
//! (`type A = Map<..>` where `Map` is itself a rename) resolve in file
//! order, which covers the sane cases.

use super::lexer::{find_idents, is_ident_byte};

/// One local alias of a tracked type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alias {
    /// The local name (`Map`, `Index`, ...).
    pub name: String,
    /// The tracked target it resolves to (`HashMap` / `HashSet`).
    pub target: &'static str,
    /// Byte span of the declaring item, so the declaration itself is
    /// not double-reported.
    pub decl_start: usize,
    pub decl_end: usize,
}

/// Finds every local alias of `targets` in a stripped source: `use ...
/// X as Y;` renames (including inside `{...}` groups) and `type Y =
/// ... X ...;` aliases, resolving chains through earlier aliases.
pub fn resolve(stripped: &str, targets: &[&'static str]) -> Vec<Alias> {
    let src = stripped.as_bytes();
    let mut aliases: Vec<Alias> = Vec::new();

    // Pass 1: `use` declarations, in file order.
    for start in find_idents(stripped, "use") {
        let Some(end) = item_semicolon(src, start) else {
            continue;
        };
        let body = &stripped[start + 3..end];
        for (local, referent) in use_renames(body) {
            if let Some(target) = targets.iter().find(|t| **t == referent) {
                if local != referent {
                    aliases.push(Alias {
                        name: local,
                        target,
                        decl_start: start,
                        decl_end: end + 1,
                    });
                }
            }
        }
    }

    // Pass 2: `type` aliases, resolving through pass-1 names and
    // earlier type aliases.
    for start in find_idents(stripped, "type") {
        let Some(end) = item_semicolon(src, start) else {
            continue;
        };
        let body = &stripped[start + 4..end];
        let Some((name, rhs)) = body.split_once('=') else {
            continue;
        };
        // The declared name: first identifier of the lhs (generic
        // parameters follow it).
        let name: String = name
            .trim_start()
            .chars()
            .take_while(|c| is_ident_byte(*c as u8))
            .collect();
        if name.is_empty() {
            continue;
        }
        let target = targets
            .iter()
            .find(|t| !find_idents(rhs, t).is_empty())
            .copied()
            .or_else(|| {
                aliases
                    .iter()
                    .filter(|a| a.decl_start < start)
                    .find(|a| !find_idents(rhs, &a.name).is_empty())
                    .map(|a| a.target)
            });
        if let Some(target) = target {
            aliases.push(Alias {
                name,
                target,
                decl_start: start,
                decl_end: end + 1,
            });
        }
    }
    aliases
}

/// `(local_name, referent)` pairs bound by one `use` body: for
/// `a::b::{X as Y, Z}` yields `(Y, X)` and `(Z, Z)`.
fn use_renames(body: &str) -> Vec<(String, String)> {
    // Split the body into leaf segments: on `{` `}` `,` — each leaf is
    // a path possibly ending in `as Name`.
    let mut out = Vec::new();
    for leaf in body.split(['{', '}', ',']) {
        let leaf = leaf.trim().trim_end_matches("::");
        if leaf.is_empty() {
            continue;
        }
        let (path, rename) = match leaf.split_once(" as ") {
            Some((p, r)) => (p.trim(), Some(r.trim())),
            None => (leaf, None),
        };
        let referent = path.rsplit("::").next().unwrap_or(path).trim();
        if referent.is_empty() || referent == "*" {
            continue;
        }
        let local = rename.unwrap_or(referent);
        out.push((local.to_string(), referent.to_string()));
    }
    out
}

/// Offset of the `;` terminating the item starting at `start`.
fn item_semicolon(src: &[u8], start: usize) -> Option<usize> {
    (start..src.len()).find(|&i| src[i] == b';')
}

#[cfg(test)]
mod tests {
    use super::*;

    const TARGETS: &[&str] = &["HashMap", "HashSet"];

    #[test]
    fn use_renames_are_resolved() {
        let src =
            "use std::collections::HashMap as Map;\nfn f() { let m: Map<u8, u8> = Map::new(); }\n";
        let aliases = resolve(src, TARGETS);
        assert_eq!(aliases.len(), 1);
        assert_eq!(aliases[0].name, "Map");
        assert_eq!(aliases[0].target, "HashMap");
        assert!(aliases[0].decl_end <= src.find("fn f").unwrap());
    }

    #[test]
    fn group_imports_with_renames() {
        let src = "use std::collections::{HashMap as Dict, HashSet as Set, BTreeMap};\n";
        let aliases = resolve(src, TARGETS);
        let names: Vec<_> = aliases
            .iter()
            .map(|a| (a.name.as_str(), a.target))
            .collect();
        assert_eq!(names, [("Dict", "HashMap"), ("Set", "HashSet")]);
    }

    #[test]
    fn plain_imports_are_not_aliases() {
        let src = "use std::collections::HashMap;\nuse std::collections::BTreeMap as Tree;\n";
        assert!(resolve(src, TARGETS).is_empty());
    }

    #[test]
    fn type_aliases_resolve_including_chains() {
        let src = "\
use std::collections::HashMap as Map;\n\
type Index = Map<u64, usize>;\n\
type Plain = std::collections::HashSet<u8>;\n\
type Fine = Vec<u8>;\n";
        let aliases = resolve(src, TARGETS);
        let names: Vec<_> = aliases
            .iter()
            .map(|a| (a.name.as_str(), a.target))
            .collect();
        assert_eq!(
            names,
            [
                ("Map", "HashMap"),
                ("Index", "HashMap"),
                ("Plain", "HashSet")
            ]
        );
    }
}
