//! Workspace manifest model: a hand-rolled parser for the TOML subset
//! the workspace's `Cargo.toml`s actually use (sections, `[[bin]]`
//! tables, `key = "string"`, `key.workspace = true`, single-line inline
//! tables and arrays), assembled into a crate DAG the layering rule
//! checks. Zero external dependencies, same philosophy as
//! `allowlist.rs`: anything outside the subset is a parse error, which
//! keeps the manifests honest.

use std::fs;
use std::path::Path;

/// Where one dependency comes from, before workspace resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSource {
    /// `foo.workspace = true` / `foo = { workspace = true }`.
    Workspace,
    /// `foo = { path = "..." }`, path relative to the manifest dir.
    Path(String),
    /// `foo = "1"` / `foo = { version = "1" }`.
    External(String),
}

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// The name used in the dependency table (before any `package =`
    /// rename).
    pub name: String,
    /// The real package name (`package = "..."` rename, else `name`).
    pub package: String,
    pub source: DepSource,
    /// True for `[dev-dependencies]` edges (exempt from layer ordering
    /// — test-only cycles like core ⇄ workload are legal in cargo).
    pub dev: bool,
}

/// One parsed `Cargo.toml`.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[package] name`, empty for a virtual manifest.
    pub name: String,
    /// Workspace-relative directory with forward slashes (`""` for the
    /// root manifest).
    pub dir: String,
    /// Explicit `[lib] path`, if any.
    pub lib_path: Option<String>,
    /// Explicit `[[bin]] path`s.
    pub bin_paths: Vec<String>,
    pub deps: Vec<Dep>,
    /// Declared `[features]` names.
    pub features: Vec<String>,
    /// `[workspace.dependencies]` (root manifest only).
    pub workspace_deps: Vec<(String, DepSource)>,
    /// `[patch.crates-io]` name → path (root manifest only).
    pub patches: Vec<(String, String)>,
}

/// The parsed workspace: root manifest plus every `crates/*` member,
/// sorted by crate name.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceModel {
    pub manifests: Vec<Manifest>,
}

/// What a dependency edge resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolved {
    /// An in-workspace crate (by package name).
    Internal(String),
    /// A crates.io name patched onto an in-tree stub.
    Stubbed(String),
    /// A crates.io dependency with no stub — banned by the layering
    /// rule outside `stubs/`.
    External(String),
}

impl WorkspaceModel {
    pub fn load(root: &Path) -> Result<WorkspaceModel, String> {
        let mut manifests = Vec::new();
        let root_text =
            fs::read_to_string(root.join("Cargo.toml")).map_err(|e| format!("Cargo.toml: {e}"))?;
        manifests.push(parse(&root_text, "").map_err(|e| format!("Cargo.toml: {e}"))?);
        let crates_dir = root.join("crates");
        let mut dirs: Vec<_> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("crates/: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let rel = format!(
                "crates/{}",
                dir.file_name().expect("crate dir name").to_string_lossy()
            );
            let text = fs::read_to_string(dir.join("Cargo.toml"))
                .map_err(|e| format!("{rel}/Cargo.toml: {e}"))?;
            manifests.push(parse(&text, &rel).map_err(|e| format!("{rel}/Cargo.toml: {e}"))?);
        }
        manifests.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(WorkspaceModel { manifests })
    }

    /// The root manifest (the one with workspace tables).
    pub fn root(&self) -> &Manifest {
        self.manifests
            .iter()
            .find(|m| m.dir.is_empty())
            .expect("root manifest present")
    }

    fn by_dir(&self, dir: &str) -> Option<&Manifest> {
        let dir = dir.trim_start_matches("./");
        self.manifests.iter().find(|m| m.dir == dir)
    }

    /// Resolves one dependency edge written in the manifest at
    /// `from_dir` to the crate (or external package) it targets.
    pub fn resolve(&self, from_dir: &str, dep: &Dep) -> Resolved {
        let source = match &dep.source {
            DepSource::Workspace => self
                .root()
                .workspace_deps
                .iter()
                .find(|(n, _)| n == &dep.name)
                .map(|(_, s)| s.clone())
                .unwrap_or(DepSource::External(String::new())),
            other => other.clone(),
        };
        match source {
            DepSource::Path(p) => {
                // Workspace-table paths are root-relative; direct
                // `path = ".."` deps are manifest-relative.
                let rel = if matches!(dep.source, DepSource::Workspace) || from_dir.is_empty() {
                    normalize(&p)
                } else {
                    normalize(&format!("{from_dir}/{p}"))
                };
                match self.by_dir(&rel) {
                    Some(m) => Resolved::Internal(m.name.clone()),
                    None => Resolved::External(dep.package.clone()),
                }
            }
            DepSource::External(_) | DepSource::Workspace => {
                let patched = self.root().patches.iter().any(|(n, _)| n == &dep.package);
                if patched {
                    Resolved::Stubbed(dep.package.clone())
                } else {
                    Resolved::External(dep.package.clone())
                }
            }
        }
    }
}

/// Lexically resolves `a/b/../c` and `./` segments.
fn normalize(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    out.join("/")
}

/// Parses one manifest. `dir` is its workspace-relative directory.
pub fn parse(text: &str, dir: &str) -> Result<Manifest, String> {
    let mut m = Manifest {
        dir: dir.to_string(),
        ..Manifest::default()
    };
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Package,
        Lib,
        Bin,
        Deps { dev: bool },
        Features,
        WorkspaceDeps,
        Patch,
        Other,
    }
    let mut section = Section::Other;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']');
            section = match header.trim_matches('[') {
                "package" => Section::Package,
                "lib" => Section::Lib,
                "bin" => {
                    m.bin_paths.push(String::new());
                    Section::Bin
                }
                "dependencies" => Section::Deps { dev: false },
                "dev-dependencies" => Section::Deps { dev: true },
                "features" => Section::Features,
                "workspace.dependencies" => Section::WorkspaceDeps,
                "patch.crates-io" => Section::Patch,
                _ => Section::Other,
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = key.trim();
        let value = value.trim();
        match section {
            Section::Package => {
                if key == "name" {
                    m.name = unquote(value, lineno)?;
                }
            }
            Section::Lib => {
                if key == "path" {
                    m.lib_path = Some(unquote(value, lineno)?);
                }
            }
            Section::Bin => {
                if key == "path" {
                    *m.bin_paths.last_mut().expect("inside a [[bin]] table") =
                        unquote(value, lineno)?;
                }
            }
            Section::Features => {
                m.features.push(key.trim_matches('"').to_string());
            }
            Section::Deps { dev } => {
                let (name, source, package) = parse_dep(key, value, lineno)?;
                m.deps.push(Dep {
                    package: package.unwrap_or_else(|| name.clone()),
                    name,
                    source,
                    dev,
                });
            }
            Section::WorkspaceDeps => {
                let (name, source, _) = parse_dep(key, value, lineno)?;
                m.workspace_deps.push((name, source));
            }
            Section::Patch => {
                let (name, source, _) = parse_dep(key, value, lineno)?;
                let DepSource::Path(p) = source else {
                    return Err(format!("line {lineno}: patch entries must use `path = `"));
                };
                m.patches.push((name, p));
            }
            Section::Other => {}
        }
    }
    Ok(m)
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))
}

/// Parses one dependency line: the key may be `name` or
/// `name.workspace`; the value a quoted version, `true`, or a
/// single-line inline table.
fn parse_dep(
    key: &str,
    value: &str,
    lineno: usize,
) -> Result<(String, DepSource, Option<String>), String> {
    if let Some(name) = key.strip_suffix(".workspace") {
        if value != "true" {
            return Err(format!("line {lineno}: `.workspace` must be `true`"));
        }
        return Ok((name.to_string(), DepSource::Workspace, None));
    }
    let name = key.to_string();
    if let Some(table) = value.strip_prefix('{').and_then(|v| v.strip_suffix('}')) {
        let mut path = None;
        let mut version = None;
        let mut package = None;
        let mut workspace = false;
        for part in split_inline(table) {
            let Some((k, v)) = part.split_once('=') else {
                continue;
            };
            let (k, v) = (k.trim(), v.trim());
            match k {
                "path" => path = Some(unquote(v, lineno)?),
                "version" => version = Some(unquote(v, lineno)?),
                "package" => package = Some(unquote(v, lineno)?),
                "workspace" => workspace = v == "true",
                _ => {}
            }
        }
        let source = if let Some(p) = path {
            DepSource::Path(p)
        } else if workspace {
            DepSource::Workspace
        } else {
            DepSource::External(version.unwrap_or_default())
        };
        return Ok((name, source, package));
    }
    Ok((name, DepSource::External(unquote(value, lineno)?), None))
}

/// Splits an inline-table body on top-level commas (commas inside
/// `[...]` arrays or quotes don't split).
fn split_inline(table: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let bytes = table.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth = depth.saturating_sub(1),
            b',' if !in_str && depth == 0 => {
                parts.push(&table[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&table[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_dep_forms_the_workspace_uses() {
        let text = r#"
[package]
name = "demo"

[lib]
path = "src/lib.rs"

[dependencies]
lagover-sim.workspace = true
rand = "0.8"
local = { path = "../local" }
renamed = { path = "crates/propcheck", package = "propcheck" }

[dev-dependencies]
proptest.workspace = true

[features]
wall-clock = []

[[bin]]
name = "demo"
path = "src/main.rs"
"#;
        let m = parse(text, "crates/demo").unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.lib_path.as_deref(), Some("src/lib.rs"));
        assert_eq!(m.bin_paths, ["src/main.rs"]);
        assert_eq!(m.features, ["wall-clock"]);
        assert_eq!(m.deps.len(), 5);
        assert_eq!(m.deps[0].source, DepSource::Workspace);
        assert!(!m.deps[0].dev);
        assert_eq!(m.deps[1].source, DepSource::External("0.8".into()));
        assert_eq!(m.deps[2].source, DepSource::Path("../local".into()));
        assert_eq!(m.deps[3].package, "propcheck");
        assert!(m.deps[4].dev);
    }

    #[test]
    fn parses_workspace_tables_and_patches() {
        let text = r#"
[workspace.dependencies]
lagover-sim = { path = "crates/sim" }
rand = "0.8"

[patch.crates-io]
rand = { path = "stubs/rand" }
"#;
        let m = parse(text, "").unwrap();
        assert_eq!(m.workspace_deps.len(), 2);
        assert_eq!(m.patches, [("rand".to_string(), "stubs/rand".to_string())]);
    }

    #[test]
    fn resolve_follows_workspace_renames_and_patches() {
        let root = r#"
[workspace.dependencies]
lagover-sim = { path = "crates/sim" }
proptest = { path = "crates/propcheck", package = "propcheck" }
rand = "0.8"
rayon = "1"

[patch.crates-io]
rand = { path = "stubs/rand" }
"#;
        let sim = "[package]\nname = \"lagover-sim\"\n";
        let pc = "[package]\nname = \"propcheck\"\n";
        let model = WorkspaceModel {
            manifests: vec![
                parse(root, "").unwrap(),
                parse(sim, "crates/sim").unwrap(),
                parse(pc, "crates/propcheck").unwrap(),
            ],
        };
        let dep = |name: &str| Dep {
            name: name.to_string(),
            package: name.to_string(),
            source: DepSource::Workspace,
            dev: false,
        };
        assert_eq!(
            model.resolve("crates/x", &dep("lagover-sim")),
            Resolved::Internal("lagover-sim".into())
        );
        assert_eq!(
            model.resolve("crates/x", &dep("proptest")),
            Resolved::Internal("propcheck".into())
        );
        assert_eq!(
            model.resolve("crates/x", &dep("rand")),
            Resolved::Stubbed("rand".into())
        );
        assert_eq!(
            model.resolve("crates/x", &dep("rayon")),
            Resolved::External("rayon".into())
        );
        // A manifest-relative path dep resolves against its own dir.
        let rel = Dep {
            name: "lagover-sim".into(),
            package: "lagover-sim".into(),
            source: DepSource::Path("../sim".into()),
            dev: true,
        };
        assert_eq!(
            model.resolve("crates/x", &rel),
            Resolved::Internal("lagover-sim".into())
        );
    }
}
