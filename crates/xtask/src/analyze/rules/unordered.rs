//! Rule `alias-unordered-iter`: `HashMap`/`HashSet` anywhere in
//! production code, workspace-wide, including uses reached through
//! `use ... as` renames and `type` aliases. Iteration order of the
//! std hash containers is seeded per process, so *any* reachable
//! instance is a replay hazard waiting for someone to iterate it —
//! the old lint only looked near serialization code and only for the
//! literal names. Deterministic alternatives: `BTreeMap`/`BTreeSet`,
//! or index-keyed arenas (`DESIGN.md §13.1`).

use super::super::aliases;
use super::super::lexer::find_idents;
use super::super::model::{FileKind, Model};
use super::Finding;

pub const RULE: &str = "alias-unordered-iter";

const TARGETS: &[&str] = &["HashMap", "HashSet"];

pub fn check(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in model.files_of(&[FileKind::Src, FileKind::Examples]) {
        let masked = file.masked();
        let local = aliases::resolve(&masked, TARGETS);
        let mut offsets: Vec<(usize, String)> = Vec::new();
        for target in TARGETS {
            for offset in find_idents(&masked, target) {
                offsets.push((offset, target.to_string()));
            }
        }
        for alias in &local {
            for offset in find_idents(&masked, &alias.name) {
                // The declaration itself already reports via its
                // target token; flag only the downstream uses.
                if offset < alias.decl_start || offset >= alias.decl_end {
                    offsets.push((offset, format!("{} (= {})", alias.name, alias.target)));
                }
            }
        }
        offsets.sort();
        for (offset, what) in offsets {
            findings.push(Finding {
                path: file.path.clone(),
                line: file.line_of(offset),
                rule: RULE,
                excerpt: format!("{what}: {}", file.excerpt_at(offset)),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::super::super::model::SourceFile;
    use super::*;

    fn check_src(kind: FileKind, source: &str) -> Vec<Finding> {
        let model = Model {
            workspace: Default::default(),
            files: vec![SourceFile::from_source(
                "crates/fake/src/lib.rs".to_string(),
                kind,
                source.to_string(),
            )],
        };
        check(&model)
    }

    #[test]
    fn fixture_pins_alias_and_type_alias_detection() {
        let findings = check_src(
            FileKind::Src,
            include_str!("../../../fixtures/analyze/alias_unordered.rs"),
        );
        // One for each import token, one per renamed use, one per
        // type-alias use — and none for the BTreeMap decoys.
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, [4, 5, 8, 11, 14, 15]);
        assert!(findings.iter().all(|f| f.rule == RULE));
        assert!(findings[2].excerpt.contains("Dict (= HashMap)"));
        assert!(findings[5].excerpt.contains("Seen (= HashSet)"));
    }

    #[test]
    fn plain_tokens_are_still_caught_workspace_wide() {
        let src =
            "use std::collections::HashMap;\nfn f() { let _: HashMap<u8, u8> = HashMap::new(); }\n";
        assert_eq!(check_src(FileKind::Src, src).len(), 3);
    }

    #[test]
    fn tests_and_benches_are_exempt() {
        let src = "use std::collections::HashMap;\n";
        assert!(check_src(FileKind::Tests, src).is_empty());
        assert!(check_src(FileKind::Benches, src).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod t { use std::collections::HashSet; }\n";
        assert!(check_src(FileKind::Src, in_test_mod).is_empty());
    }
}
