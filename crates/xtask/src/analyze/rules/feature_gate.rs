//! Rule `feature-gate`: wall-clock reads (`Instant::now`,
//! `SystemTime`) must sit inside a `#[cfg(feature = "wall-clock")]`
//! region — a *structural* guarantee that the nondeterministic clock
//! surface is compile-time scoped, replacing the old honour-system
//! allowlisting of whole files. `tests/` and `benches/` are exempt
//! (measuring a benchmark is the point); `#[cfg(test)]` modules
//! likewise. A `not(feature = "wall-clock")` region does not count as
//! gated.

use super::super::lexer::{find_idents, is_test_predicate};
use super::super::model::{FileKind, Model};
use super::Finding;

pub const RULE: &str = "feature-gate";

const TOKENS: &[&str] = &["Instant::now", "SystemTime"];

pub fn check(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in model.files_of(&[FileKind::Src, FileKind::Examples]) {
        let masked = file.masked();
        let mut offsets: Vec<(usize, &str)> = Vec::new();
        for token in TOKENS {
            for offset in find_idents(&masked, token) {
                let gated = file.cfg.feature_gated(offset, "wall-clock")
                    // A test-gated region is already masked, but a
                    // region like `all(test, feature = "slow")` keeps
                    // the honest exemption visible here too.
                    || file.cfg.gated_by(offset, is_test_predicate);
                if !gated {
                    offsets.push((offset, *token));
                }
            }
        }
        offsets.sort();
        for (offset, token) in offsets {
            findings.push(Finding {
                path: file.path.clone(),
                line: file.line_of(offset),
                rule: RULE,
                excerpt: format!(
                    "{token} outside a `feature = \"wall-clock\"` region: {}",
                    file.excerpt_at(offset)
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::super::super::model::SourceFile;
    use super::*;

    fn check_one(kind: FileKind, source: &str) -> Vec<Finding> {
        let model = Model {
            workspace: Default::default(),
            files: vec![SourceFile::from_source(
                "crates/fake/src/lib.rs".to_string(),
                kind,
                source.to_string(),
            )],
        };
        check(&model)
    }

    #[test]
    fn fixture_pins_gated_vs_ungated() {
        let findings = check_one(
            FileKind::Src,
            include_str!("../../../fixtures/analyze/feature_gate.rs"),
        );
        // Exactly the ungated call and the not()-gated call; the
        // properly gated region, the decoys, and the test module pass.
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].line, 15);
        assert!(findings[0].excerpt.contains("Instant::now"));
        assert_eq!(findings[1].line, 21);
        assert!(findings[1].excerpt.contains("SystemTime"));
    }

    #[test]
    fn benches_and_tests_are_exempt() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        assert!(check_one(FileKind::Benches, src).is_empty());
        assert!(check_one(FileKind::Tests, src).is_empty());
        assert_eq!(check_one(FileKind::Src, src).len(), 1);
    }

    #[test]
    fn whole_file_inner_gate_passes() {
        let src =
            "#![cfg(feature = \"wall-clock\")]\nfn f() { let _ = std::time::Instant::now(); }\n";
        assert!(check_one(FileKind::Src, src).is_empty());
    }
}
