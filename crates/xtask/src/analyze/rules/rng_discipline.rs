//! Rule `rng-discipline`: every `SimRng` draw call site in production
//! code is enumerated and diffed against the committed registry
//! `crates/xtask/rng_sites.toml`. Replay determinism is a property of
//! the *draw sequence*, so adding, removing, or moving a draw — the
//! exact edits that silently break byte-identical replay — must be a
//! conscious act: the build fails until the registry is re-blessed
//! (`cargo xtask analyze --bless`, reviewed like the golden journal).
//!
//! Sites are keyed `(path, enclosing function, method)` with a count:
//! coarse enough that reordering lines inside a function doesn't churn
//! the registry, fine enough that a draw migrating between functions
//! or files — a draw-order change — always shows up.

use super::super::lexer::{enclosing_fn, find_idents, fn_spans};
use super::super::model::{FileKind, Model};
use super::Finding;

/// The `SimRng` drawing surface (`crates/sim/src/rng.rs`). `split`,
/// `state`, and `draws` are not draws.
pub const DRAW_METHODS: &[&str] = &[
    "chance",
    "choose",
    "exponential",
    "f64",
    "index",
    "pareto",
    "range_u32",
    "shuffle",
];

pub const RULE: &str = "rng-discipline";

/// One aggregated draw site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrawSite {
    pub path: String,
    pub function: String,
    pub method: &'static str,
    pub count: u64,
    /// Line of the first occurrence — reported in findings, never
    /// serialized into the registry (line churn must not invalidate
    /// it).
    pub first_line: usize,
}

impl DrawSite {
    fn key(&self) -> (&str, &str, &str) {
        (&self.path, &self.function, self.method)
    }
}

/// Enumerates every draw site in `src/` production code (tests are
/// masked; `tests/`, `examples/`, and `benches/` draws don't perturb
/// committed replay output, so they stay out of the registry).
pub fn enumerate(model: &Model) -> Vec<DrawSite> {
    let mut sites: Vec<DrawSite> = Vec::new();
    for file in model.files_of(&[FileKind::Src]) {
        let masked = file.masked();
        let spans = fn_spans(&masked);
        for method in DRAW_METHODS {
            for offset in draw_calls(&masked, method) {
                let function = enclosing_fn(&spans, offset).to_string();
                let line = file.line_of(offset);
                match sites
                    .iter_mut()
                    .find(|s| s.path == file.path && s.function == function && s.method == *method)
                {
                    Some(s) => {
                        s.count += 1;
                        s.first_line = s.first_line.min(line);
                    }
                    None => sites.push(DrawSite {
                        path: file.path.clone(),
                        function,
                        method,
                        count: 1,
                        first_line: line,
                    }),
                }
            }
        }
    }
    sites.sort_by(|a, b| a.key().cmp(&b.key()));
    sites
}

/// Offsets of `.{method}(` calls (turbofish tolerated) in `text`.
fn draw_calls(text: &str, method: &str) -> Vec<usize> {
    let pattern = format!(".{method}");
    let bytes = text.as_bytes();
    find_idents(text, &pattern)
        .into_iter()
        .filter(|&offset| {
            let mut j = offset + pattern.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            // `::<T>` turbofish between name and argument list.
            if bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
                j += 2;
                if bytes.get(j) == Some(&b'<') {
                    let mut depth = 0usize;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'<' => depth += 1,
                            b'>' => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                } else {
                    return false;
                }
            }
            bytes.get(j) == Some(&b'(')
        })
        .collect()
}

/// Diffs the enumerated sites against the parsed registry. Every
/// mismatch — new site, changed count, vanished site — is a finding.
pub fn diff(current: &[DrawSite], registry: &[DrawSite], registry_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in current {
        match registry.iter().find(|r| r.key() == site.key()) {
            None => findings.push(Finding {
                path: site.path.clone(),
                line: site.first_line,
                rule: RULE,
                excerpt: format!(
                    "unregistered draw site: {}() ×{} in fn {} — re-bless with `cargo xtask analyze --bless`",
                    site.method, site.count, site.function
                ),
            }),
            Some(r) if r.count != site.count => findings.push(Finding {
                path: site.path.clone(),
                line: site.first_line,
                rule: RULE,
                excerpt: format!(
                    "draw count changed: {}() in fn {} is ×{}, registry says ×{}",
                    site.method, site.function, site.count, r.count
                ),
            }),
            Some(_) => {}
        }
    }
    for site in registry {
        if !current.iter().any(|c| c.key() == site.key()) {
            findings.push(Finding {
                path: registry_path.to_string(),
                line: 1,
                rule: RULE,
                excerpt: format!(
                    "stale registry entry: {}() in fn {} of {} no longer exists",
                    site.method, site.function, site.path
                ),
            });
        }
    }
    findings
}

/// Parses the registry (same TOML subset as the allowlist, plus one
/// integer key).
pub fn parse_registry(text: &str) -> Result<Vec<DrawSite>, String> {
    let mut sites: Vec<DrawSite> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[site]]" {
            sites.push(DrawSite {
                path: String::new(),
                function: String::new(),
                method: "",
                count: 0,
                first_line: 0,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `[[site]]` or `key = value`"
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(site) = sites.last_mut() else {
            return Err(format!("line {lineno}: `{key}` outside a [[site]] table"));
        };
        match key {
            "path" => site.path = unquote(value, lineno)?,
            "function" => site.function = unquote(value, lineno)?,
            "method" => {
                let v = unquote(value, lineno)?;
                site.method = DRAW_METHODS
                    .iter()
                    .find(|m| **m == v)
                    .ok_or_else(|| format!("line {lineno}: unknown draw method `{v}`"))?;
            }
            "count" => {
                site.count = value
                    .parse()
                    .map_err(|_| format!("line {lineno}: count must be an integer"))?
            }
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    for (i, s) in sites.iter().enumerate() {
        if s.path.is_empty() || s.function.is_empty() || s.method.is_empty() || s.count == 0 {
            return Err(format!(
                "[[site]] entry {}: needs path, function, method, and a nonzero count",
                i + 1
            ));
        }
    }
    Ok(sites)
}

/// Renders the registry deterministically (sites must be pre-sorted,
/// as [`enumerate`] returns them).
pub fn render_registry(sites: &[DrawSite]) -> String {
    let mut out = String::from(
        "# SimRng draw-site registry — regenerated by `cargo xtask analyze --bless`.\n\
         #\n\
         # Every production draw call site, keyed (path, function, method) with a\n\
         # count. `cargo xtask analyze` fails when the workspace drifts from this\n\
         # file: adding or moving a draw changes the replayed draw sequence, so it\n\
         # must be re-blessed (and reviewed) like the golden journal.\n",
    );
    let mut draws = 0u64;
    for site in sites {
        out.push_str(&format!(
            "\n[[site]]\npath = \"{}\"\nfunction = \"{}\"\nmethod = \"{}\"\ncount = {}\n",
            site.path, site.function, site.method, site.count
        ));
        draws += site.count;
    }
    out.push_str(&format!(
        "\n# {} sites, {} draw calls.\n",
        sites.len(),
        draws
    ));
    out
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))
}

#[cfg(test)]
mod tests {
    use super::super::super::model::SourceFile;
    use super::*;

    fn model_with(path: &str, source: &str) -> Model {
        Model {
            workspace: Default::default(),
            files: vec![SourceFile::from_source(
                path.to_string(),
                FileKind::Src,
                source.to_string(),
            )],
        }
    }

    #[test]
    fn fixture_sites_are_enumerated_per_function() {
        let model = model_with(
            "crates/fake/src/lib.rs",
            include_str!("../../../fixtures/analyze/rng_sites.rs"),
        );
        let sites = enumerate(&model);
        let keys: Vec<_> = sites
            .iter()
            .map(|s| (s.function.as_str(), s.method, s.count))
            .collect();
        assert_eq!(
            keys,
            [
                ("pick", "choose", 1),
                ("pick", "index", 2),
                ("spread", "exponential", 1),
                ("spread", "shuffle", 1),
            ]
        );
    }

    #[test]
    fn turbofish_and_spacing_are_tolerated_but_decoys_are_not() {
        let src = "fn f(r: &mut R) { r.index(4); r.index ::<u8>(); self.reindex(); index(3); v.indexes(1); }\n";
        let model = model_with("crates/fake/src/lib.rs", src);
        let sites = enumerate(&model);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].count, 2);
    }

    #[test]
    fn registry_round_trips() {
        let model = model_with(
            "crates/fake/src/lib.rs",
            include_str!("../../../fixtures/analyze/rng_sites.rs"),
        );
        let sites = enumerate(&model);
        let text = render_registry(&sites);
        let parsed = parse_registry(&text).unwrap();
        assert_eq!(parsed.len(), sites.len());
        for (p, s) in parsed.iter().zip(&sites) {
            assert_eq!(p.key(), s.key());
            assert_eq!(p.count, s.count);
        }
        assert!(diff(&sites, &parsed, "reg.toml").is_empty());
    }

    #[test]
    fn added_moved_and_stale_sites_each_produce_the_pinned_finding() {
        let model = model_with(
            "crates/fake/src/lib.rs",
            include_str!("../../../fixtures/analyze/rng_sites.rs"),
        );
        let sites = enumerate(&model);
        let registry = parse_registry(&render_registry(&sites)).unwrap();

        // Added draw: count drifts.
        let mut grown = sites.clone();
        grown[1].count += 1;
        let f = diff(&grown, &registry, "reg.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("draw count changed"));

        // Moved draw: one site vanishes, a new one appears.
        let mut moved = sites.clone();
        moved[0].function = "elsewhere".to_string();
        let f = diff(&moved, &registry, "reg.toml");
        assert_eq!(f.len(), 2);
        assert!(f[0].excerpt.contains("unregistered draw site"));
        assert!(f[1].excerpt.contains("stale registry entry"));
        assert_eq!(f[1].path, "reg.toml");
    }

    #[test]
    fn draws_in_test_modules_are_invisible() {
        let src = "#[cfg(test)]\nmod tests { fn t(r: &mut R) { r.f64(); } }\nfn live() {}\n";
        assert!(enumerate(&model_with("crates/fake/src/lib.rs", src)).is_empty());
    }

    #[test]
    fn registry_rejects_malformed_entries() {
        assert!(parse_registry("[[site]]\npath = \"p\"\n").is_err());
        assert!(parse_registry(
            "[[site]]\npath = \"p\"\nfunction = \"f\"\nmethod = \"nope\"\ncount = 1\n"
        )
        .is_err());
        assert!(parse_registry("count = 1\n").is_err());
    }
}
