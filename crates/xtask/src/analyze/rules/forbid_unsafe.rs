//! Rule `forbid-unsafe`: every crate root (lib and bin targets) must
//! carry `#![forbid(unsafe_code)]`. The workspace has zero `unsafe`
//! today — the deterministic parallel fold and the SoA arenas are all
//! safe Rust — and `forbid` (unlike `deny`) cannot be overridden
//! further down the tree, so the attribute is a one-line proof the
//! property still holds. This rule keeps it from being silently
//! dropped.

use super::super::lexer::find_idents;
use super::super::model::Model;
use super::Finding;

pub const RULE: &str = "forbid-unsafe";

const ATTR: &str = "#![forbid(unsafe_code)]";

/// Workspace-relative paths of every crate-root file: declared lib and
/// `[[bin]]` paths plus the conventional `src/lib.rs`, `src/main.rs`,
/// and `src/bin/*.rs` targets that exist.
pub fn crate_roots(model: &Model) -> Vec<String> {
    let exists = |p: &str| model.files.iter().any(|f| f.path == p);
    let mut roots = Vec::new();
    for m in &model.workspace.manifests {
        if m.name.is_empty() {
            continue;
        }
        let prefix = if m.dir.is_empty() {
            String::new()
        } else {
            format!("{}/", m.dir)
        };
        let mut candidates: Vec<String> = Vec::new();
        match &m.lib_path {
            Some(p) => candidates.push(format!("{prefix}{p}")),
            None => candidates.push(format!("{prefix}src/lib.rs")),
        }
        for p in &m.bin_paths {
            candidates.push(format!("{prefix}{p}"));
        }
        candidates.push(format!("{prefix}src/main.rs"));
        for f in &model.files {
            if f.path.starts_with(&format!("{prefix}src/bin/")) {
                candidates.push(f.path.clone());
            }
        }
        for c in candidates {
            if exists(&c) && !roots.contains(&c) {
                roots.push(c);
            }
        }
    }
    roots.sort();
    roots
}

pub fn check(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for root in crate_roots(model) {
        let file = model
            .files
            .iter()
            .find(|f| f.path == root)
            .expect("crate_roots returns existing files");
        if find_idents(&file.stripped, ATTR).is_empty() {
            findings.push(Finding {
                path: root,
                line: 1,
                rule: RULE,
                excerpt: format!("crate root is missing `{ATTR}`"),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::super::super::manifest;
    use super::super::super::manifest::WorkspaceModel;
    use super::super::super::model::{FileKind, SourceFile};
    use super::*;

    fn model(sources: Vec<(&str, &str)>) -> Model {
        let manifest_text = "[package]\nname = \"demo\"\n";
        Model {
            workspace: WorkspaceModel {
                manifests: vec![manifest::parse(manifest_text, "crates/demo").unwrap()],
            },
            files: sources
                .into_iter()
                .map(|(p, s)| SourceFile::from_source(p.to_string(), FileKind::Src, s.to_string()))
                .collect(),
        }
    }

    #[test]
    fn fixture_pins_present_vs_missing() {
        let present = include_str!("../../../fixtures/analyze/forbid_unsafe_ok.rs");
        let missing = include_str!("../../../fixtures/analyze/forbid_unsafe_missing.rs");
        let m = model(vec![
            ("crates/demo/src/lib.rs", present),
            ("crates/demo/src/main.rs", missing),
            ("crates/demo/src/bin/tool.rs", missing),
            ("crates/demo/src/helper.rs", missing), // not a root: exempt
        ]);
        let findings = check(&m);
        let paths: Vec<_> = findings.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            ["crates/demo/src/bin/tool.rs", "crates/demo/src/main.rs"]
        );
        assert!(findings[0].excerpt.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn a_commented_attribute_does_not_count() {
        let m = model(vec![(
            "crates/demo/src/lib.rs",
            "// #![forbid(unsafe_code)]\nfn f() {}\n",
        )]);
        assert_eq!(check(&m).len(), 1);
    }

    #[test]
    fn every_real_crate_root_is_covered() {
        let root = crate::workspace_root();
        let m = Model::load(&root).unwrap();
        let roots = crate_roots(&m);
        // The known root inventory: one lib or main per crate plus the
        // bench bins; growing the workspace grows this list.
        assert!(roots.contains(&"src/lib.rs".to_string()));
        assert!(roots.contains(&"crates/xtask/src/main.rs".to_string()));
        assert!(roots.contains(&"crates/bench/src/bin/obs_bench.rs".to_string()));
        assert!(
            roots.len() >= 20,
            "expected >= 20 crate roots, got {}",
            roots.len()
        );
    }
}
