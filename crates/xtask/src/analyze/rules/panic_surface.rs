//! Rule `panic-surface`: a tiered audit of release-reachable panic
//! sites in `crates/core/src` (the code every committed figure runs
//! through), replacing the old all-or-nothing `bare-unwrap` lint.
//!
//! * **Deny** (fails the build): panics that carry no invariant —
//!   `.unwrap()`, `.expect("")`, bare `panic!()` / `unreachable!()`,
//!   and `todo!` / `unimplemented!` placeholders.
//! * **Warn** (counted in the report): messaged `.expect("...")`,
//!   `panic!("...")`, `unreachable!("...")` — legitimate invariant
//!   assertions, tracked so growth is visible in REPORT.json diffs.
//! * **Info** (counted): direct slice-index expressions, the implicit
//!   panic surface of the SoA arenas (DESIGN.md §13.1).
//!
//! `#[cfg(test)]` and `#[cfg(debug_assertions)]` regions are masked:
//! debug-only validation (e.g. `Overlay::validate`) may assert freely.

use super::super::lexer::{find_from, find_idents, is_ident_byte};
use super::super::model::{FileKind, Model};
use super::Finding;

pub const RULE: &str = "panic-surface";

/// Warn/info-tier counters, serialized into REPORT.json.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PanicMetrics {
    pub expect_msg: u64,
    pub panic_msg: u64,
    pub unreachable_msg: u64,
    pub slice_index: u64,
}

pub fn check(model: &Model) -> (Vec<Finding>, PanicMetrics) {
    let mut findings = Vec::new();
    let mut metrics = PanicMetrics::default();
    for file in model.files_of(&[FileKind::Src]) {
        if !file.path.starts_with("crates/core/src") {
            continue;
        }
        let masked = file.cfg.mask_matching(&file.masked(), |p| {
            p.contains("debug_assertions") && !p.contains("not(debug_assertions")
        });
        let mut offsets: Vec<(usize, &'static str)> = Vec::new();
        for offset in find_idents(&masked, ".unwrap()") {
            offsets.push((offset, ".unwrap() without an invariant message"));
        }
        for offset in find_idents(&masked, ".expect(") {
            // Strings are space-blanked *preserving length*, so a
            // surviving `""` really was empty in the source.
            if masked[offset..].starts_with(".expect(\"\")") {
                offsets.push((offset, ".expect(\"\") without an invariant message"));
            } else {
                metrics.expect_msg += 1;
            }
        }
        for (mac, bare_label, msg_counter) in [
            ("panic!", "bare panic!() without a message", 0usize),
            ("unreachable!", "bare unreachable!() without a message", 1),
        ] {
            for offset in find_idents(&masked, mac) {
                if macro_args_empty(&masked, offset + mac.len()) {
                    offsets.push((offset, bare_label));
                } else if msg_counter == 0 {
                    metrics.panic_msg += 1;
                } else {
                    metrics.unreachable_msg += 1;
                }
            }
        }
        for mac in ["todo!", "unimplemented!"] {
            for offset in find_idents(&masked, mac) {
                offsets.push((offset, "unfinished-code placeholder"));
            }
        }
        metrics.slice_index += slice_index_count(&masked);
        offsets.sort();
        for (offset, label) in offsets {
            findings.push(Finding {
                path: file.path.clone(),
                line: file.line_of(offset),
                rule: RULE,
                excerpt: format!("{label}: {}", file.excerpt_at(offset)),
            });
        }
    }
    (findings, metrics)
}

/// Whether the macro invocation whose bang just ended at `after` has
/// an empty (or missing) argument list.
fn macro_args_empty(text: &str, after: usize) -> bool {
    let bytes = text.as_bytes();
    let mut j = after;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    let Some(&open) = bytes.get(j) else {
        return true;
    };
    let close = match open {
        b'(' => b')',
        b'[' => b']',
        b'{' => b'}',
        _ => return true,
    };
    let end = find_from(bytes, &[close], j + 1).unwrap_or(bytes.len());
    text[j + 1..end].trim().is_empty()
}

/// Counts direct index expressions `expr[...]`: a `[` immediately
/// following an identifier, `)`, or `]`. Array types (`[u8; 4]`),
/// attributes (`#[...]`), and array literals don't qualify. A lexical
/// heuristic, reported as an info metric only.
fn slice_index_count(text: &str) -> u64 {
    let bytes = text.as_bytes();
    let mut count = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'[' && i > 0 {
            let prev = bytes[i - 1];
            if is_ident_byte(prev) || prev == b')' || prev == b']' {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::super::super::model::SourceFile;
    use super::*;

    fn run_on(path: &str, source: &str) -> (Vec<Finding>, PanicMetrics) {
        let model = Model {
            workspace: Default::default(),
            files: vec![SourceFile::from_source(
                path.to_string(),
                FileKind::Src,
                source.to_string(),
            )],
        };
        check(&model)
    }

    #[test]
    fn fixture_pins_both_tiers() {
        let source = include_str!("../../../fixtures/analyze/panic_tiers.rs");
        let (findings, metrics) = run_on("crates/core/src/engine.rs", source);
        let labels: Vec<_> = findings
            .iter()
            .map(|f| f.excerpt.split(':').next().unwrap())
            .collect();
        assert_eq!(
            labels,
            [
                ".unwrap() without an invariant message",
                ".expect(\"\") without an invariant message",
                "bare panic!() without a message",
                "bare unreachable!() without a message",
                "unfinished-code placeholder",
            ]
        );
        assert_eq!(
            metrics,
            PanicMetrics {
                expect_msg: 1,
                panic_msg: 1,
                unreachable_msg: 1,
                slice_index: 2,
            }
        );
    }

    #[test]
    fn rule_is_scoped_to_core_src() {
        let source = include_str!("../../../fixtures/analyze/panic_tiers.rs");
        let (findings, metrics) = run_on("crates/workload/src/lib.rs", source);
        assert!(findings.is_empty());
        assert_eq!(metrics, PanicMetrics::default());
    }

    #[test]
    fn debug_assertions_regions_are_exempt() {
        let source = "\
#[cfg(debug_assertions)]\nfn validate(x: Option<u8>) { x.unwrap(); }\n\
fn live() -> u8 { 3 }\n";
        let (findings, _) = run_on("crates/core/src/overlay.rs", source);
        assert!(findings.is_empty());
    }

    #[test]
    fn messaged_invariants_pass_but_are_counted() {
        let source = "fn f(x: Option<u8>) -> u8 { x.expect(\"invariant: filled\") }\n";
        let (findings, metrics) = run_on("crates/core/src/engine.rs", source);
        assert!(findings.is_empty());
        assert_eq!(metrics.expect_msg, 1);
    }
}
