//! The analyzer's rule set. Each rule is a pure function from the
//! shared [`Model`](super::model::Model) to findings (plus, for some
//! rules, deterministic metrics for the report); `analyze::run` wires
//! them together, applies the allowlist, and renders the report.

pub mod feature_gate;
pub mod forbid_unsafe;
pub mod layering;
pub mod panic_surface;
pub mod rng_discipline;
pub mod unordered;

/// One analyzer hit. Shared with the lint pass (`crate::lint`), which
/// runs its legacy rules on the same engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (matches allowlist `rule =` values).
    pub rule: &'static str,
    /// The offending source line (or a structural message), trimmed.
    pub excerpt: String,
}

/// Rule ids `cargo xtask analyze` owns; the allowlist's unused-entry
/// warning is scoped per pass so a justified analyze exception doesn't
/// read as unused to `cargo xtask lint` (and vice versa).
pub const ANALYZE_RULES: &[&str] = &[
    rng_discipline::RULE,
    unordered::RULE,
    panic_surface::RULE,
    layering::RULE,
    feature_gate::RULE,
    forbid_unsafe::RULE,
];
