//! Rule `layering`: the workspace crate DAG must match the declared
//! architecture (DESIGN.md §4): jsonio and propcheck at the bottom,
//! the sim kernel above them, obs below core, core below the
//! workload/feed/experiment stack, harnesses on top. A normal
//! dependency may only point at a strictly lower layer; dev-deps are
//! exempt from ordering (cargo allows test-only cycles such as
//! core ⇄ workload) but must still resolve in-workspace or to a stub.
//! External crates.io dependencies are banned unless patched onto an
//! in-tree `stubs/` crate — the build stays hermetic by construction.

use super::super::manifest::{Manifest, Resolved, WorkspaceModel};
use super::Finding;

pub const RULE: &str = "layering";

/// The declared layers, lowest first. A crate absent from this table
/// is itself a finding: growing the workspace means declaring where
/// the new crate sits.
pub const LAYERS: &[(&str, u32)] = &[
    ("lagover-jsonio", 0),
    ("propcheck", 0),
    ("lagover-sim", 1),
    ("lagover-dht", 2),
    ("lagover-gossip", 2),
    ("lagover-net", 2),
    ("lagover-obs", 2),
    ("lagover-core", 3),
    ("lagover-workload", 4),
    ("lagover-feed", 5),
    ("lagover-node", 5),
    ("lagover-stream", 6),
    ("lagover-experiments", 7),
    ("lagover-perf", 8),
    ("lagover", 9),
    ("lagover-bench", 9),
    ("lagover-cli", 9),
    ("xtask", 9),
];

fn tier(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
}

pub fn check(workspace: &WorkspaceModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, path) in &workspace.root().patches {
        if !path.starts_with("stubs/") {
            findings.push(finding(
                workspace.root(),
                format!("[patch.crates-io] {name} must point into stubs/, not {path}"),
            ));
        }
    }
    for m in &workspace.manifests {
        if m.name.is_empty() {
            continue; // virtual manifest
        }
        let Some(my_tier) = tier(&m.name) else {
            findings.push(finding(
                m,
                format!(
                    "crate `{}` is not in the declared layer map (analyze::rules::layering::LAYERS) — place it",
                    m.name
                ),
            ));
            continue;
        };
        for dep in &m.deps {
            match workspace.resolve(&m.dir, dep) {
                Resolved::Internal(target) => {
                    let Some(dep_tier) = tier(&target) else {
                        findings.push(finding(
                            m,
                            format!("dependency `{target}` is not in the declared layer map"),
                        ));
                        continue;
                    };
                    if !dep.dev && dep_tier >= my_tier {
                        findings.push(finding(
                            m,
                            format!(
                                "layering violation: `{}` (layer {}) must not depend on `{}` (layer {})",
                                m.name, my_tier, target, dep_tier
                            ),
                        ));
                    }
                }
                Resolved::Stubbed(_) => {}
                Resolved::External(target) => {
                    findings.push(finding(
                        m,
                        format!(
                            "external dependency `{target}` has no in-tree stub — \
                             vendor a stub under stubs/ and patch it, or drop the dependency"
                        ),
                    ));
                }
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, &a.excerpt).cmp(&(&b.path, &b.excerpt)));
    findings
}

fn finding(m: &Manifest, excerpt: String) -> Finding {
    let path = if m.dir.is_empty() {
        "Cargo.toml".to_string()
    } else {
        format!("{}/Cargo.toml", m.dir)
    };
    Finding {
        path,
        line: 1,
        rule: RULE,
        excerpt,
    }
}

#[cfg(test)]
mod tests {
    use super::super::super::manifest::parse;
    use super::*;

    fn workspace(members: Vec<(&str, &str)>) -> WorkspaceModel {
        let root = r#"
[package]
name = "lagover"

[workspace.dependencies]
lagover-sim = { path = "crates/sim" }
lagover-core = { path = "crates/core" }
lagover-obs = { path = "crates/obs" }
rand = "0.8"
rayon = "1"

[patch.crates-io]
rand = { path = "stubs/rand" }
"#;
        let mut manifests = vec![parse(root, "").unwrap()];
        for (dir, text) in members {
            manifests.push(parse(text, dir).unwrap());
        }
        WorkspaceModel { manifests }
    }

    #[test]
    fn the_real_workspace_layers_cleanly() {
        let root = crate::workspace_root();
        let ws = WorkspaceModel::load(&root).unwrap();
        let findings = check(&ws);
        assert!(
            findings.is_empty(),
            "layering violations: {:?}",
            findings.iter().map(|f| &f.excerpt).collect::<Vec<_>>()
        );
    }

    #[test]
    fn inverted_edges_are_findings() {
        let ws = workspace(vec![
            ("crates/sim", "[package]\nname = \"lagover-sim\"\n[dependencies]\nlagover-core.workspace = true\n"),
            ("crates/core", "[package]\nname = \"lagover-core\"\n"),
            ("crates/obs", "[package]\nname = \"lagover-obs\"\n"),
        ]);
        let findings = check(&ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].excerpt.contains("layering violation"));
        assert_eq!(findings[0].path, "crates/sim/Cargo.toml");
    }

    #[test]
    fn dev_dep_back_edges_are_legal() {
        let ws = workspace(vec![
            ("crates/sim", "[package]\nname = \"lagover-sim\"\n[dev-dependencies]\nlagover-core.workspace = true\n"),
            ("crates/core", "[package]\nname = \"lagover-core\"\n"),
            ("crates/obs", "[package]\nname = \"lagover-obs\"\n"),
        ]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn unstubbed_external_deps_are_findings() {
        let ws = workspace(vec![
            (
                "crates/obs",
                "[package]\nname = \"lagover-obs\"\n[dependencies]\nrayon.workspace = true\n",
            ),
            ("crates/sim", "[package]\nname = \"lagover-sim\"\n"),
            ("crates/core", "[package]\nname = \"lagover-core\"\n"),
        ]);
        let findings = check(&ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].excerpt.contains("no in-tree stub"));
        // Stubbed externals are fine.
        let ok = workspace(vec![
            (
                "crates/obs",
                "[package]\nname = \"lagover-obs\"\n[dependencies]\nrand.workspace = true\n",
            ),
            ("crates/sim", "[package]\nname = \"lagover-sim\"\n"),
            ("crates/core", "[package]\nname = \"lagover-core\"\n"),
        ]);
        assert!(check(&ok).is_empty());
    }

    #[test]
    fn undeclared_crates_are_findings() {
        let ws = workspace(vec![
            ("crates/new", "[package]\nname = \"lagover-shiny\"\n"),
            ("crates/sim", "[package]\nname = \"lagover-sim\"\n"),
            ("crates/core", "[package]\nname = \"lagover-core\"\n"),
            ("crates/obs", "[package]\nname = \"lagover-obs\"\n"),
        ]);
        let findings = check(&ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .excerpt
            .contains("not in the declared layer map"));
    }
}
