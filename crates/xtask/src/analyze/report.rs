//! Deterministic report rendering for `cargo xtask analyze`:
//! `target/analyze/REPORT.json` (machine-readable, byte-identical
//! across runs on the same tree — no timestamps, no absolute paths,
//! insertion-ordered objects, findings pre-sorted) plus a markdown
//! findings table for humans and CI job summaries.

use lagover_jsonio::{object, Json};

use super::rules::panic_surface::PanicMetrics;
use super::rules::{Finding, ANALYZE_RULES};

/// Everything one analyze pass produced, post-allowlist.
pub struct Report {
    pub files_scanned: usize,
    /// Registered SimRng draw sites and total draw calls.
    pub rng_sites: usize,
    pub rng_draws: u64,
    pub panic: PanicMetrics,
    pub allowed: usize,
    /// Unallowlisted findings, sorted by (path, line, rule, excerpt).
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn to_json(&self) -> Json {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                object(vec![
                    ("path", Json::Str(f.path.clone())),
                    ("line", Json::U64(f.line as u64)),
                    ("rule", Json::Str(f.rule.to_string())),
                    ("finding", Json::Str(f.excerpt.clone())),
                ])
            })
            .collect();
        object(vec![
            ("schema", Json::Str("lagover.analyze.report/v1".to_string())),
            (
                "rules",
                Json::Array(
                    ANALYZE_RULES
                        .iter()
                        .map(|r| Json::Str((*r).to_string()))
                        .collect(),
                ),
            ),
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            (
                "rng",
                object(vec![
                    ("sites", Json::U64(self.rng_sites as u64)),
                    ("draws", Json::U64(self.rng_draws)),
                ]),
            ),
            (
                "panic_surface",
                object(vec![
                    ("expect_msg", Json::U64(self.panic.expect_msg)),
                    ("panic_msg", Json::U64(self.panic.panic_msg)),
                    ("unreachable_msg", Json::U64(self.panic.unreachable_msg)),
                    ("slice_index", Json::U64(self.panic.slice_index)),
                ]),
            ),
            ("allowlisted", Json::U64(self.allowed as u64)),
            ("violations", Json::U64(self.findings.len() as u64)),
            ("findings", Json::Array(findings)),
        ])
    }

    /// The JSON document as written to disk (pretty, trailing newline).
    pub fn render_json(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }

    pub fn render_markdown(&self) -> String {
        let mut out = String::from("# cargo xtask analyze\n\n");
        out.push_str("| metric | value |\n|---|---:|\n");
        out.push_str(&format!("| files scanned | {} |\n", self.files_scanned));
        out.push_str(&format!(
            "| registered rng draw sites | {} ({} draws) |\n",
            self.rng_sites, self.rng_draws
        ));
        out.push_str(&format!(
            "| messaged panics (expect / panic! / unreachable!) | {} / {} / {} |\n",
            self.panic.expect_msg, self.panic.panic_msg, self.panic.unreachable_msg
        ));
        out.push_str(&format!(
            "| slice-index expressions in core | {} |\n",
            self.panic.slice_index
        ));
        out.push_str(&format!("| allowlisted findings | {} |\n", self.allowed));
        out.push_str(&format!("| violations | {} |\n", self.findings.len()));
        out.push('\n');
        if self.findings.is_empty() {
            out.push_str("No violations.\n");
        } else {
            out.push_str("## Findings\n\n| path | line | rule | finding |\n|---|---:|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    f.path,
                    f.line,
                    f.rule,
                    f.excerpt.replace('|', "\\|")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 3,
            rng_sites: 2,
            rng_draws: 5,
            panic: PanicMetrics {
                expect_msg: 4,
                panic_msg: 1,
                unreachable_msg: 2,
                slice_index: 7,
            },
            allowed: 1,
            findings: vec![Finding {
                path: "crates/a/src/lib.rs".to_string(),
                line: 9,
                rule: "feature-gate",
                excerpt: "Instant::now outside a gate".to_string(),
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let a = sample().render_json();
        let b = sample().render_json();
        assert_eq!(a, b);
        // Insertion order is serialization order: schema first,
        // findings last.
        let schema_at = a.find("\"schema\"").unwrap();
        let findings_at = a.find("\"findings\"").unwrap();
        assert!(schema_at < findings_at);
        assert!(a.ends_with('\n'));
        // Round-trips through the parser.
        let parsed = lagover_jsonio::parse(&a).unwrap();
        assert_eq!(parsed.get("violations").unwrap().as_u64().unwrap(), 1);
        assert_eq!(
            parsed.get("rules").unwrap().as_array().unwrap().len(),
            ANALYZE_RULES.len()
        );
    }

    #[test]
    fn markdown_lists_findings_or_declares_clean() {
        let md = sample().render_markdown();
        assert!(md.contains("| crates/a/src/lib.rs | 9 | feature-gate |"));
        let clean = Report {
            findings: Vec::new(),
            ..sample()
        };
        assert!(clean.render_markdown().contains("No violations."));
    }
}
