//! The lexical core of the structural analyzer: offset-preserving
//! source stripping, identifier-boundary token search, `#[cfg(...)]`
//! region tracking, and enclosing-function spans.
//!
//! Everything here operates on raw bytes and **preserves byte offsets
//! exactly**: `strip_code` replaces comment and string-literal contents
//! with spaces (never adding or removing a byte, never touching a
//! newline), so any offset found in the stripped text maps 1:1 back to
//! the original source and its line number. The property tests in
//! `crates/xtask/tests/lexer_props.rs` pin this invariant for arbitrary
//! generated sources; the fixtures under `crates/xtask/fixtures/`
//! pin the tricky tokens (raw strings, nested block comments,
//! lifetimes vs. char literals) byte for byte.

pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

pub fn find_from(hay: &[u8], ned: &[u8], from: usize) -> Option<usize> {
    if ned.is_empty() || hay.len() < ned.len() {
        return None;
    }
    (from..=hay.len() - ned.len()).find(|&i| &hay[i..i + ned.len()] == ned)
}

/// Byte offsets of `needle` in `haystack` where the match is not
/// embedded in a longer identifier on either side. A needle that
/// starts/ends with punctuation (`.sum`, `::`) is boundary-checked
/// only on its identifier ends.
pub fn find_idents(haystack: &str, needle: &str) -> Vec<usize> {
    let hay = haystack.as_bytes();
    let ned = needle.as_bytes();
    let mut offsets = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(hay, ned, from) {
        let left_ok = pos == 0 || !is_ident_byte(hay[pos - 1]);
        let right_ok = pos + ned.len() >= hay.len() || !is_ident_byte(hay[pos + ned.len()]);
        let left_ok = left_ok || !is_ident_byte(ned[0]);
        let right_ok = right_ok || !is_ident_byte(ned[ned.len() - 1]);
        if left_ok && right_ok {
            offsets.push(pos);
        }
        from = pos + 1;
    }
    offsets
}

pub fn contains_ident(haystack: &str, needle: &str) -> bool {
    !find_idents(haystack, needle).is_empty()
}

/// 1-based line number of `offset` in `source`.
pub fn line_of(source: &str, offset: usize) -> usize {
    1 + source.as_bytes()[..offset.min(source.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// The source line containing `offset`, trimmed.
pub fn excerpt_at(source: &str, offset: usize) -> String {
    let line = line_of(source, offset);
    source
        .lines()
        .nth(line - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Replaces comments and string/char-literal *contents* with spaces,
/// preserving the total byte length and every newline so offsets map
/// 1:1 back to the original source. Quote characters themselves are
/// kept, which lets `.expect("")` detection distinguish an empty
/// message from a blanked non-empty one.
pub fn strip_code(source: &str) -> String {
    let src = source.as_bytes();
    let mut out = src.to_vec();
    let mut i = 0;
    while i < src.len() {
        match src[i] {
            b'/' if src.get(i + 1) == Some(&b'/') => {
                let end = find_from(src, b"\n", i).unwrap_or(src.len());
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if src.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < src.len() && depth > 0 {
                    if src[j] == b'/' && src.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if src[j] == b'*' && src.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'"' => {
                let end = skip_string(src, i);
                blank(&mut out, i + 1..end.saturating_sub(1));
                i = end;
            }
            b'r' | b'b' if !prev_is_ident(src, i) && raw_string_start(src, i).is_some() => {
                let (body_start, body_end, end) = raw_string_start(src, i).expect("checked above");
                blank(&mut out, body_start..body_end);
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = src.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|b| is_ident_byte(b) && b != b'\\')
                    && src.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                } else {
                    let end = skip_char_literal(src, i);
                    blank(&mut out, i + 1..end.saturating_sub(1));
                    i = end;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn blank(out: &mut [u8], range: std::ops::Range<usize>) {
    for b in &mut out[range] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn prev_is_ident(src: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(src[i - 1])
}

/// If `src[i..]` starts a raw (or raw-byte) string literal, returns
/// `(content_start, content_end, end_after_closing_quote_and_hashes)`.
fn raw_string_start(src: &[u8], i: usize) -> Option<(usize, usize, usize)> {
    let mut j = i;
    if src.get(j) == Some(&b'b') {
        j += 1;
    }
    if src.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let hash_start = j;
    while src.get(j) == Some(&b'#') {
        j += 1;
    }
    let hashes = j - hash_start;
    if src.get(j) != Some(&b'"') {
        return None;
    }
    let content_start = j + 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    // Blank only the contents — the closing quote and hashes survive,
    // mirroring the non-raw case (and keeping stripping idempotent).
    let (content_end, end) = match find_from(src, &closer, content_start) {
        Some(p) => (p, p + closer.len()),
        None => (src.len(), src.len()),
    };
    Some((content_start, content_end, end))
}

/// Returns the index just past the closing quote of the string starting
/// at `src[start] == b'"'`.
fn skip_string(src: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < src.len() {
        match src[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    src.len()
}

fn skip_char_literal(src: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < src.len() {
        match src[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    src.len()
}

/// One `#[cfg(...)]`-gated region: the byte span of the attribute plus
/// the item it gates, and the predicate text (taken from the *original*
/// source, since stripping blanks the string literals inside it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgRegion {
    pub start: usize,
    pub end: usize,
    /// Predicate with all whitespace removed, e.g. `test`,
    /// `feature="wall-clock"`, `not(feature="wall-clock")`.
    pub predicate: String,
}

impl CfgRegion {
    pub fn contains(&self, offset: usize) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// All `#[cfg(...)]` / `#![cfg(...)]` regions of one file, resolved to
/// byte spans via brace/semicolon tracking. Regions may nest; queries
/// consider every region containing an offset.
#[derive(Debug, Clone, Default)]
pub struct CfgMap {
    pub regions: Vec<CfgRegion>,
}

impl CfgMap {
    /// Builds the map. `stripped` locates the attributes (so a
    /// commented-out `#[cfg(...)]` is invisible); `original` supplies
    /// the predicate text (stripping blanks the feature-name strings).
    pub fn build(stripped: &str, original: &str) -> CfgMap {
        let src = stripped.as_bytes();
        let mut regions = Vec::new();
        let mut from = 0;
        while let Some(hash) = find_from(src, b"#", from) {
            from = hash + 1;
            // `#[cfg(` or `#![cfg(` — and not `#[cfg_attr(`.
            let mut j = hash + 1;
            let inner = src.get(j) == Some(&b'!');
            if inner {
                j += 1;
            }
            if src.get(j) != Some(&b'[') {
                continue;
            }
            j += 1;
            let kw = b"cfg(";
            if src.get(j..j + kw.len()) != Some(kw.as_slice()) {
                continue;
            }
            let pred_start = j + kw.len();
            let Some(pred_end) = matching_paren(src, pred_start - 1) else {
                continue;
            };
            // Attribute closer: the `]` right after the predicate.
            let Some(attr_end) = find_from(src, b"]", pred_end).map(|p| p + 1) else {
                continue;
            };
            let predicate: String = original[pred_start..pred_end]
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            let end = if inner {
                // Inner attribute: gates the rest of the file (the
                // enclosing-module case at file top; nested inner
                // attributes are not used in this workspace).
                src.len()
            } else {
                item_end(src, attr_end)
            };
            regions.push(CfgRegion {
                start: hash,
                end,
                predicate,
            });
            from = attr_end;
        }
        CfgMap { regions }
    }

    /// Predicates of every region containing `offset`.
    pub fn predicates_at(&self, offset: usize) -> impl Iterator<Item = &str> {
        self.regions
            .iter()
            .filter(move |r| r.contains(offset))
            .map(|r| r.predicate.as_str())
    }

    /// Whether `offset` sits inside a region positively gated on
    /// `feature = "<name>"`. A region whose predicate only mentions the
    /// feature under `not(...)` does not count.
    pub fn feature_gated(&self, offset: usize, feature: &str) -> bool {
        let positive = format!("feature=\"{feature}\"");
        let negated = format!("not(feature=\"{feature}\"");
        self.predicates_at(offset)
            .any(|p| p.contains(&positive) && !p.contains(&negated))
    }

    /// Whether `offset` sits inside a region whose predicate satisfies
    /// `pred` (predicates are whitespace-free, see [`CfgRegion`]).
    pub fn gated_by(&self, offset: usize, pred: impl FnMut(&str) -> bool) -> bool {
        self.predicates_at(offset).any(pred)
    }

    /// Space-blanks (keeping newlines) every region whose predicate
    /// satisfies `pred`. Used to hide `cfg(test)` / `cfg(debug_assertions)`
    /// code from rules that only audit release-reachable paths.
    pub fn mask_matching(&self, stripped: &str, mut pred: impl FnMut(&str) -> bool) -> String {
        let mut out = stripped.as_bytes().to_vec();
        let len = out.len();
        for region in &self.regions {
            if pred(&region.predicate) {
                blank(&mut out, region.start..region.end.min(len));
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }
}

/// `test` or any `all(...)`/`any(...)` composition mentioning `test`
/// positively (predicates are whitespace-free).
pub fn is_test_predicate(p: &str) -> bool {
    contains_ident(p, "test") && !p.contains("not(test")
}

/// Matching `)` for the `(` at `src[open]`, honouring nesting.
fn matching_paren(src: &[u8], open: usize) -> Option<usize> {
    debug_assert_eq!(src.get(open), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in src.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// End offset of the item a (non-inner) attribute at `attr_end` gates:
/// skips any further attributes, then runs to the end of the first
/// brace-balanced block — or to the first `;` or `,` at depth zero,
/// whichever comes first (fields, `use` items, struct-literal fields,
/// enum variants).
fn item_end(src: &[u8], attr_end: usize) -> usize {
    let mut i = attr_end;
    // Skip whitespace and stacked attributes (`#[derive(..)]`, `#[test]`).
    loop {
        while i < src.len() && src[i].is_ascii_whitespace() {
            i += 1;
        }
        if src.get(i) == Some(&b'#') && src.get(i + 1) == Some(&b'[') {
            let mut depth = 0usize;
            while i < src.len() {
                match src[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    let mut paren = 0usize;
    let mut bracket = 0usize;
    while i < src.len() {
        match src[i] {
            b'(' => paren += 1,
            b')' => paren = paren.saturating_sub(1),
            b'[' => bracket += 1,
            b']' => bracket = bracket.saturating_sub(1),
            b'{' => {
                let mut depth = 0usize;
                while i < src.len() {
                    match src[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return src.len();
            }
            b';' | b',' if paren == 0 && bracket == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    src.len()
}

/// Span of one `fn` item body: `name` plus the byte range from the
/// `fn` keyword to the end of its brace block (bodiless trait-method
/// signatures are skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// Every `fn` body span in the stripped source, in file order. Spans
/// nest for inner functions; [`enclosing_fn`] picks the innermost.
pub fn fn_spans(stripped: &str) -> Vec<FnSpan> {
    let src = stripped.as_bytes();
    let mut spans = Vec::new();
    for start in find_idents(stripped, "fn") {
        let mut j = start + 2;
        while j < src.len() && src[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < src.len() && is_ident_byte(src[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn` in e.g. `Fn()` position already excluded by boundaries
        }
        let name = stripped[name_start..j].to_string();
        // Find the body `{`, skipping the parameter list and any
        // parenthesized/bracketed groups in the signature; a `;` first
        // means a bodiless signature.
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut body = None;
        while j < src.len() {
            match src[j] {
                b'(' => paren += 1,
                b')' => paren = paren.saturating_sub(1),
                b'[' => bracket += 1,
                b']' => bracket = bracket.saturating_sub(1),
                b'{' if paren == 0 && bracket == 0 => {
                    body = Some(j);
                    break;
                }
                b';' if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while k < src.len() {
            match src[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push(FnSpan {
            name,
            start,
            end: (k + 1).min(src.len()),
        });
    }
    spans
}

/// Name of the innermost function whose body contains `offset`, or
/// `"<file>"` for top-level positions.
pub fn enclosing_fn(spans: &[FnSpan], offset: usize) -> &str {
    spans
        .iter()
        .filter(|s| s.start <= offset && offset < s.end)
        .min_by_key(|s| s.end - s.start)
        .map_or("<file>", |s| s.name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_preserves_length_and_newlines() {
        let src = "// c\nfn f() { let s = \"a\\\"b\"; let r = r#\"x\"#; }\n/* b /* n */ */\n";
        let stripped = strip_code(src);
        assert_eq!(stripped.len(), src.len());
        let nl = |s: &str| -> Vec<usize> {
            s.bytes()
                .enumerate()
                .filter(|(_, b)| *b == b'\n')
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(nl(src), nl(&stripped));
        assert!(!stripped.contains('x'), "raw string contents blanked");
    }

    #[test]
    fn cfg_regions_cover_brace_blocks_and_terse_items() {
        let src = "\
#[cfg(test)]\nmod tests { fn t() { hazard(); } }\n\
#[cfg(feature = \"wall-clock\")]\nuse std::time::Instant;\n\
fn live() {}\n";
        let stripped = strip_code(src);
        let map = CfgMap::build(&stripped, src);
        assert_eq!(map.regions.len(), 2);
        assert_eq!(map.regions[0].predicate, "test");
        assert_eq!(map.regions[1].predicate, "feature=\"wall-clock\"");
        let hazard = src.find("hazard").unwrap();
        assert!(map.regions[0].contains(hazard));
        let instant = src.find("Instant").unwrap();
        assert!(map.feature_gated(instant, "wall-clock"));
        let live = src.find("live").unwrap();
        assert!(!map.feature_gated(live, "wall-clock"));
        assert!(map.predicates_at(live).next().is_none());
    }

    #[test]
    fn negated_feature_regions_do_not_count_as_gated() {
        let src = "#[cfg(not(feature = \"wall-clock\"))]\nfn fallback() { tick(); }\n";
        let stripped = strip_code(src);
        let map = CfgMap::build(&stripped, src);
        let tick = src.find("tick").unwrap();
        assert!(!map.feature_gated(tick, "wall-clock"));
    }

    #[test]
    fn cfg_attr_is_not_a_region() {
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S;\n";
        let stripped = strip_code(src);
        assert!(CfgMap::build(&stripped, src).regions.is_empty());
    }

    #[test]
    fn inner_cfg_attribute_gates_the_rest_of_the_file() {
        let src = "#![cfg(feature = \"wall-clock\")]\nfn f() { now(); }\n";
        let stripped = strip_code(src);
        let map = CfgMap::build(&stripped, src);
        assert!(map.feature_gated(src.find("now").unwrap(), "wall-clock"));
    }

    #[test]
    fn stacked_attributes_are_skipped_to_the_item() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { x: u8 }\nfn live() {}\n";
        let stripped = strip_code(src);
        let map = CfgMap::build(&stripped, src);
        assert!(map.regions[0].contains(src.find("x: u8").unwrap()));
        assert!(!map.regions[0].contains(src.find("live").unwrap()));
    }

    #[test]
    fn struct_literal_field_attribute_spans_to_the_comma() {
        let src = "fn f() -> S { S {\n#[cfg(feature = \"wall-clock\")]\nat: Instant::now(),\nn: 3,\n} }\n";
        let stripped = strip_code(src);
        let map = CfgMap::build(&stripped, src);
        assert!(map.feature_gated(src.find("Instant::now").unwrap(), "wall-clock"));
        assert!(!map.feature_gated(src.find("n: 3").unwrap(), "wall-clock"));
    }

    #[test]
    fn fn_spans_nest_and_signatures_are_skipped() {
        let src = "\
trait T { fn sig(&self) -> u8; }\n\
fn outer() {\n    fn inner() { draw(); }\n    late();\n}\n";
        let stripped = strip_code(src);
        let spans = fn_spans(&stripped);
        let names: Vec<_> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(enclosing_fn(&spans, src.find("draw").unwrap()), "inner");
        assert_eq!(enclosing_fn(&spans, src.find("late").unwrap()), "outer");
        assert_eq!(enclosing_fn(&spans, 0), "<file>");
    }

    #[test]
    fn mask_matching_blanks_only_selected_regions() {
        let src = "#[cfg(test)]\nmod t { bad(); }\n#[cfg(feature = \"x\")]\nfn keep() { ok(); }\n";
        let stripped = strip_code(src);
        let map = CfgMap::build(&stripped, src);
        let masked = map.mask_matching(&stripped, is_test_predicate);
        assert!(!masked.contains("bad"));
        assert!(masked.contains("ok()"));
        assert_eq!(masked.len(), src.len());
    }
}
