//! `cargo xtask analyze` — structural static analysis over the whole
//! workspace (DESIGN.md §14).
//!
//! Where `cargo xtask lint` pattern-matches hazard tokens, `analyze`
//! builds a model first — every source file tokenized with exact byte
//! offsets ([`lexer`]), `use`-aliases resolved per file ([`aliases`]),
//! `#[cfg(...)]` regions tracked by brace depth ([`lexer::CfgMap`]),
//! and every `Cargo.toml` parsed into a crate DAG ([`manifest`]) — and
//! then runs structural rules over it ([`rules`]):
//!
//! * `rng-discipline` — every `SimRng` draw call site diffed against
//!   the committed registry `crates/xtask/rng_sites.toml`; re-bless
//!   with `cargo xtask analyze --bless` (or `LAGOVER_BLESS=1`).
//! * `alias-unordered-iter` — `HashMap`/`HashSet` workspace-wide,
//!   through renames and type aliases.
//! * `panic-surface` — tiered unwrap/expect/panic audit of
//!   `crates/core/src`.
//! * `layering` — the declared crate DAG holds; externals resolve to
//!   `stubs/`.
//! * `feature-gate` — wall-clock reads sit inside
//!   `#[cfg(feature = "wall-clock")]` regions.
//! * `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! Findings honour the shared allowlist (`crates/xtask/lint.allow.toml`)
//! and land in `target/analyze/REPORT.json` + `REPORT.md`, rendered
//! deterministically — byte-identical across runs on the same tree.

pub mod aliases;
pub mod lexer;
pub mod manifest;
pub mod model;
#[cfg(test)]
mod props;
pub mod report;
pub mod rules;

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use crate::allowlist::{self, ALLOWLIST_PATH, MAX_ALLOW_ENTRIES};
use model::Model;
use report::Report;
use rules::rng_discipline::{self, DrawSite};
use rules::{feature_gate, forbid_unsafe, layering, panic_surface, unordered};
pub use rules::{Finding, ANALYZE_RULES};

/// Relative path of the draw-site registry, from the workspace root.
pub const REGISTRY_PATH: &str = "crates/xtask/rng_sites.toml";

/// One full rule pass over a loaded model, pure and IO-free: findings
/// are pre-allowlist, sorted (path, line, rule, excerpt).
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub sites: Vec<DrawSite>,
    pub panic: panic_surface::PanicMetrics,
}

pub fn analyze(model: &Model, registry: &[DrawSite]) -> Analysis {
    let sites = rng_discipline::enumerate(model);
    let mut findings = rng_discipline::diff(&sites, registry, REGISTRY_PATH);
    findings.extend(unordered::check(model));
    let (panic_findings, panic) = panic_surface::check(model);
    findings.extend(panic_findings);
    findings.extend(layering::check(&model.workspace));
    findings.extend(feature_gate::check(model));
    findings.extend(forbid_unsafe::check(model));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.excerpt).cmp(&(&b.path, b.line, b.rule, &b.excerpt))
    });
    Analysis {
        findings,
        sites,
        panic,
    }
}

/// Entry point for `cargo xtask analyze [--bless]`.
pub fn run(args: &[String]) -> ExitCode {
    let mut bless = std::env::var_os("LAGOVER_BLESS").is_some();
    for arg in args {
        match arg.as_str() {
            "--bless" => bless = true,
            other => {
                eprintln!("xtask analyze: unknown argument `{other}` (expected --bless)");
                return ExitCode::from(2);
            }
        }
    }
    let root = crate::workspace_root();

    let allow_text = match fs::read_to_string(root.join(ALLOWLIST_PATH)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask analyze: cannot read {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allow = match allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask analyze: {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if allow.len() > MAX_ALLOW_ENTRIES {
        eprintln!(
            "xtask analyze: allowlist has {} entries; the cap is {MAX_ALLOW_ENTRIES} \
             — fix violations instead of allowlisting them",
            allow.len()
        );
        return ExitCode::FAILURE;
    }

    let model = match Model::load(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if bless {
        let sites = rng_discipline::enumerate(&model);
        let text = rng_discipline::render_registry(&sites);
        if let Err(e) = fs::write(root.join(REGISTRY_PATH), &text) {
            eprintln!("xtask analyze: cannot write {REGISTRY_PATH}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: blessed {REGISTRY_PATH} ({} sites, {} draw calls) — review and commit it",
            sites.len(),
            sites.iter().map(|s| s.count).sum::<u64>()
        );
    }

    let registry_text = match fs::read_to_string(root.join(REGISTRY_PATH)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "xtask analyze: cannot read {REGISTRY_PATH}: {e}\n\
                 \x20 generate it with `cargo xtask analyze --bless` and commit it"
            );
            return ExitCode::FAILURE;
        }
    };
    let registry = match rng_discipline::parse_registry(&registry_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {REGISTRY_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let analysis = analyze(&model, &registry);
    let files_scanned = model.files.len();
    let applied = allowlist::apply(analysis.findings, &allow, ANALYZE_RULES);

    let report = Report {
        files_scanned,
        rng_sites: analysis.sites.len(),
        rng_draws: analysis.sites.iter().map(|s| s.count).sum(),
        panic: analysis.panic,
        allowed: applied.allowed,
        findings: applied.violations,
    };
    let out_dir = crate::target_dir(&root).join("analyze");
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("xtask analyze: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_reports(&out_dir, &report) {
        eprintln!("xtask analyze: {e}");
        return ExitCode::FAILURE;
    }

    for v in &report.findings {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.excerpt);
    }
    for entry in &applied.unused {
        println!(
            "warning: unused allowlist entry (path = {:?}, rule = {:?}) — remove it",
            entry.path, entry.rule
        );
    }
    println!(
        "xtask analyze: {} files, {} rng draw sites — {} violation(s), {} allowlisted \
         (report: {})",
        report.files_scanned,
        report.rng_sites,
        report.findings.len(),
        report.allowed,
        out_dir.join("REPORT.json").display()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_reports(out_dir: &Path, report: &Report) -> Result<(), String> {
    let json_path = out_dir.join("REPORT.json");
    fs::write(&json_path, report.render_json())
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    let md_path = out_dir.join("REPORT.md");
    fs::write(&md_path, report.render_markdown())
        .map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The end-to-end property `cargo xtask analyze` enforces, run
    /// in-process: the committed registry matches the tree, and every
    /// finding in the real workspace is allowlisted.
    #[test]
    fn real_workspace_analyzes_clean_modulo_allowlist() {
        let root = crate::workspace_root();
        let model = Model::load(&root).expect("model loads");
        let registry_text =
            std::fs::read_to_string(root.join(REGISTRY_PATH)).expect("registry committed");
        let registry = rng_discipline::parse_registry(&registry_text).expect("registry parses");
        let allow_text =
            std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("allowlist readable");
        let allow = crate::allowlist::parse(&allow_text).expect("allowlist parses");
        assert!(allow.len() <= MAX_ALLOW_ENTRIES);
        let analysis = analyze(&model, &registry);
        let applied = crate::allowlist::apply(analysis.findings, &allow, ANALYZE_RULES);
        assert!(
            applied.violations.is_empty(),
            "unallowlisted violations:\n{}",
            applied
                .violations
                .iter()
                .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.rule, f.excerpt))
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Every analyze-scoped allowlist entry is live.
        assert!(
            applied.unused.is_empty(),
            "unused analyze allowlist entries: {:?}",
            applied.unused
        );
    }

    /// The committed registry is byte-identical to what `--bless`
    /// would regenerate — i.e. never hand-edited into drift.
    #[test]
    fn committed_registry_matches_a_fresh_bless() {
        let root = crate::workspace_root();
        let model = Model::load(&root).expect("model loads");
        let sites = rng_discipline::enumerate(&model);
        let fresh = rng_discipline::render_registry(&sites);
        let committed =
            std::fs::read_to_string(root.join(REGISTRY_PATH)).expect("registry committed");
        assert_eq!(
            committed, fresh,
            "rng_sites.toml drifted — rerun `cargo xtask analyze --bless`"
        );
    }

    /// REPORT.json must not depend on iteration order or wall time:
    /// two passes over the same tree render identical bytes.
    #[test]
    fn report_is_byte_identical_across_passes() {
        let root = crate::workspace_root();
        let render = || {
            let model = Model::load(&root).expect("model loads");
            let registry_text =
                std::fs::read_to_string(root.join(REGISTRY_PATH)).expect("registry committed");
            let registry = rng_discipline::parse_registry(&registry_text).expect("registry parses");
            let analysis = analyze(&model, &registry);
            let files_scanned = model.files.len();
            Report {
                files_scanned,
                rng_sites: analysis.sites.len(),
                rng_draws: analysis.sites.iter().map(|s| s.count).sum(),
                panic: analysis.panic,
                allowed: 0,
                findings: analysis.findings,
            }
            .render_json()
        };
        assert_eq!(render(), render());
    }
}
