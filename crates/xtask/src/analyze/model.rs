//! The analysis model: every workspace source file, loaded once,
//! stripped once, with its cfg-region map — shared by `cargo xtask
//! lint` and `cargo xtask analyze` so both passes see the same bytes.
//!
//! File collection walks each crate's `src/`, `tests/`, `examples/`,
//! and `benches/` trees (plus the root facade package), not just
//! `src/` — test and bench code is real code; rules opt out per
//! [`FileKind`] instead of being blind to whole trees. `stubs/` and
//! the lint fixtures are excluded: stubs mirror external crates, and
//! fixtures *deliberately* violate every rule.

use std::fs;
use std::path::{Path, PathBuf};

use super::lexer::{self, CfgMap};
use super::manifest::WorkspaceModel;

/// Which target tree a file belongs to. Rules scope themselves by
/// kind: e.g. `nondet-rng` applies everywhere (a nondeterministic test
/// is still a broken test), while wall-clock rules exempt `tests/` and
/// `benches/` (measuring a benchmark is the point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileKind {
    Src,
    Tests,
    Examples,
    Benches,
}

/// One loaded source file with its derived lexical state.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub kind: FileKind,
    pub source: String,
    /// Comment/string-stripped text, byte-for-byte aligned with
    /// `source`.
    pub stripped: String,
    /// `#[cfg(...)]` regions resolved over `stripped`.
    pub cfg: CfgMap,
}

impl SourceFile {
    pub fn load(root: &Path, abs: &Path, kind: FileKind) -> Result<SourceFile, String> {
        let source =
            fs::read_to_string(abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let path = abs
            .strip_prefix(root)
            .unwrap_or(abs)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::from_source(path, kind, source))
    }

    pub fn from_source(path: String, kind: FileKind, source: String) -> SourceFile {
        let stripped = lexer::strip_code(&source);
        let cfg = CfgMap::build(&stripped, &source);
        SourceFile {
            path,
            kind,
            source,
            stripped,
            cfg,
        }
    }

    /// `stripped` with every `#[cfg(test)]`-gated region blanked — the
    /// text rules scan when they only audit production code.
    pub fn masked(&self) -> String {
        self.cfg
            .mask_matching(&self.stripped, lexer::is_test_predicate)
    }

    pub fn line_of(&self, offset: usize) -> usize {
        lexer::line_of(&self.source, offset)
    }

    pub fn excerpt_at(&self, offset: usize) -> String {
        lexer::excerpt_at(&self.source, offset)
    }
}

/// The full analysis input: parsed manifests plus every source file,
/// sorted by path for deterministic iteration and output.
pub struct Model {
    pub workspace: WorkspaceModel,
    pub files: Vec<SourceFile>,
}

impl Model {
    pub fn load(root: &Path) -> Result<Model, String> {
        let workspace = WorkspaceModel::load(root)?;
        let mut entries = Vec::new();
        let mut package_dirs = vec![root.to_path_buf()];
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("crates/: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        package_dirs.extend(crate_dirs);
        for dir in &package_dirs {
            for (tree, kind) in [
                ("src", FileKind::Src),
                ("tests", FileKind::Tests),
                ("examples", FileKind::Examples),
                ("benches", FileKind::Benches),
            ] {
                // The root package's `crates/` subdirectory is not a
                // source tree; only its src/tests/examples count.
                let mut files = Vec::new();
                collect_rs(&dir.join(tree), &mut files);
                for abs in files {
                    entries.push((abs, kind));
                }
            }
        }
        entries.sort();
        let mut files = Vec::new();
        for (abs, kind) in entries {
            files.push(SourceFile::load(root, &abs, kind)?);
        }
        Ok(Model { workspace, files })
    }

    /// Files of the given kinds, in path order.
    pub fn files_of<'a>(
        &'a self,
        kinds: &'a [FileKind],
    ) -> impl Iterator<Item = &'a SourceFile> + 'a {
        self.files.iter().filter(move |f| kinds.contains(&f.kind))
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_workspace_model_loads_and_covers_all_trees() {
        let root = crate::workspace_root();
        let model = Model::load(&root).expect("model loads");
        assert!(model.files.len() > 100, "workspace has many sources");
        // The scan must reach beyond src/: the scope fix that motivated
        // the analyzer (tests/, examples/, benches/ were silently
        // skipped before).
        for kind in [
            FileKind::Src,
            FileKind::Tests,
            FileKind::Examples,
            FileKind::Benches,
        ] {
            assert!(
                model.files.iter().any(|f| f.kind == kind),
                "no files of kind {:?} collected",
                kind
            );
        }
        // Stubs and fixtures stay out.
        assert!(model.files.iter().all(|f| !f.path.starts_with("stubs/")));
        assert!(model
            .files
            .iter()
            .all(|f| !f.path.starts_with("crates/xtask/fixtures")));
        // Paths are sorted and unique.
        let paths: Vec<_> = model.files.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted);
        // The facade package's own trees are in.
        assert!(paths.contains(&"src/lib.rs"));
        assert!(paths.iter().any(|p| p.starts_with("tests/")));
        assert!(paths.iter().any(|p| p.starts_with("examples/")));
    }
}
