//! Property tests for the lexer core (`analyze::lexer`), run on the
//! in-tree `propcheck` shim. Every rule in the engine leans on three
//! invariants — stripping never moves a byte, masking never moves a
//! byte, and identifier search never reports a phantom occurrence —
//! so they are pinned here over generated token soups rather than a
//! handful of hand-picked fixtures, plus deterministic round-trip
//! cases for the trickiest literal forms.

use proptest::prelude::*;

use super::lexer::{find_idents, is_ident_byte, line_of, strip_code, CfgMap};

/// Source fragments the generator splices together. Deliberately
/// adversarial: nested block comments, raw strings with hashes,
/// escaped quotes, char literals, lifetimes, cfg attributes, and the
/// hazard tokens the rules search for.
const PIECES: &[&str] = &[
    "fn f() {\n",
    "}\n",
    "let x = 1;\n",
    "// line comment with thread_rng\n",
    "/* block /* nested */ comment */",
    "\"string with \\\" escape and thread_rng\"",
    "r#\"raw \"quoted\" thread_rng\"#",
    "b\"byte string\"",
    "'x'",
    "'\\''",
    "'\\n'",
    "&'static str",
    "#[cfg(test)]\nmod t { let _ = 1; }\n",
    "#[cfg(feature = \"wall-clock\")]\nfn gated() {}\n",
    "thread_rng()",
    "my_thread_rng_helper()",
    "ident",
    "\n\n",
    "struct S;\n",
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PIECES.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|i| PIECES[i]).collect::<String>())
}

fn newline_offsets(s: &str) -> Vec<usize> {
    s.bytes()
        .enumerate()
        .filter(|(_, b)| *b == b'\n')
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    /// Stripping replaces bytes but never inserts, deletes, or moves
    /// one: total length and every newline offset are preserved, so
    /// any offset into the stripped text indexes the same line of the
    /// original.
    #[test]
    fn strip_preserves_byte_offsets_and_lines(src in soup()) {
        let stripped = strip_code(&src);
        prop_assert_eq!(stripped.len(), src.len());
        prop_assert_eq!(newline_offsets(&stripped), newline_offsets(&src));
        for offset in (0..src.len()).step_by(7) {
            prop_assert_eq!(line_of(&stripped, offset), line_of(&src, offset));
        }
    }

    /// Stripping already-stripped text is a no-op — blanked string
    /// and char-literal bodies re-lex to the same spans.
    #[test]
    fn strip_is_idempotent(src in soup()) {
        let once = strip_code(&src);
        prop_assert_eq!(strip_code(&once), once);
    }

    /// Masking cfg regions only ever blanks: every output byte is
    /// either the input byte or a space, newlines always survive.
    #[test]
    fn mask_only_blanks_in_place(src in soup()) {
        let stripped = strip_code(&src);
        let map = CfgMap::build(&stripped, &src);
        let masked = map.mask_matching(&stripped, |_| true);
        prop_assert_eq!(masked.len(), stripped.len());
        for (m, s) in masked.bytes().zip(stripped.bytes()) {
            prop_assert!(m == s || (m == b' ' && s != b'\n'));
        }
        prop_assert_eq!(newline_offsets(&masked), newline_offsets(&src));
    }

    /// Every offset `find_idents` reports carries a verbatim needle
    /// occurrence with free identifier boundaries on both sides — and
    /// it finds *all* of them (no phantom or missed hits).
    #[test]
    fn find_idents_is_exact(src in soup()) {
        let stripped = strip_code(&src);
        let needle = "thread_rng";
        let offsets = find_idents(&stripped, needle);
        for &o in &offsets {
            prop_assert_eq!(&stripped[o..o + needle.len()], needle);
            prop_assert!(o == 0 || !is_ident_byte(stripped.as_bytes()[o - 1]));
            let after = o + needle.len();
            prop_assert!(
                after >= stripped.len() || !is_ident_byte(stripped.as_bytes()[after])
            );
        }
        // Exhaustive cross-check against a naive scan.
        let naive: Vec<usize> = (0..stripped.len().saturating_sub(needle.len() - 1))
            .filter(|&i| {
                stripped[i..].starts_with(needle)
                    && (i == 0 || !is_ident_byte(stripped.as_bytes()[i - 1]))
                    && (i + needle.len() >= stripped.len()
                        || !is_ident_byte(stripped.as_bytes()[i + needle.len()]))
            })
            .collect();
        prop_assert_eq!(offsets, naive);
    }
}

#[cfg(test)]
mod round_trips {
    use super::super::lexer::strip_code;

    /// Each tricky literal, with the exact bytes stripping must leave.
    #[test]
    fn tricky_tokens_strip_to_pinned_bytes() {
        let cases: &[(&str, &str)] = &[
            // Escaped quote inside a string: contents blanked, quotes kept.
            (r#"let s = "a\"b";"#, r#"let s = "    ";"#),
            // Raw string with hashes: hashes and quotes survive.
            (r###"let r = r#"x"y"#;"###, r###"let r = r#"   "#;"###),
            // Byte string.
            (r#"let b = b"xyz";"#, r#"let b = b"   ";"#),
            // Char literal vs lifetime: only the literal is blanked.
            (
                "let c = 'q'; let s: &'static str = s;",
                "let c = ' '; let s: &'static str = s;",
            ),
            // Escaped-quote char literal.
            (r"let c = '\'';", "let c = '  ';"),
            // Nested block comment, fully blanked.
            ("a /* x /* y */ z */ b", "a                   b"),
            // Line comment stops at the newline.
            ("code // tail\nmore", "code        \nmore"),
        ];
        for (src, want) in cases {
            assert_eq!(&strip_code(src), want, "stripping {src:?}");
        }
    }
}
