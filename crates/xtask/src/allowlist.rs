//! Hand-rolled parser for `lint.allow.toml` — the workspace builds
//! with zero external dependencies, so the file sticks to a tiny TOML
//! subset: `[[allow]]` tables of `key = "string"` pairs plus `#`
//! comments. Anything else is a parse error, which keeps the format
//! honest.

use crate::analyze::rules::Finding;

/// Relative path of the allowlist, from the workspace root. Shared by
/// `cargo xtask lint` and `cargo xtask analyze`.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint.allow.toml";

/// Hard cap on allowlist size — the list must stay a short set of
/// justified exceptions, not an escape hatch.
pub const MAX_ALLOW_ENTRIES: usize = 10;

/// One justified lint exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative source path the exception applies to.
    pub path: String,
    /// Rule identifier (see `lint.rs`).
    pub rule: String,
    /// One-line justification; must be non-empty.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry covers a finding at `path` under `rule`.
    pub fn matches(&self, path: &str, rule: &str) -> bool {
        self.path == path && self.rule == rule
    }
}

/// Parses the allowlist, validating that every entry carries a path, a
/// rule, and a non-empty reason.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<[Option<String>; 3]> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push([None, None, None]);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `[[allow]]` or `key = \"value\"`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!(
                "line {lineno}: value must be a double-quoted string"
            ));
        };
        let Some(current) = entries.last_mut() else {
            return Err(format!("line {lineno}: `{key}` outside an [[allow]] table"));
        };
        let slot = match key {
            "path" => &mut current[0],
            "rule" => &mut current[1],
            "reason" => &mut current[2],
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        };
        if slot.is_some() {
            return Err(format!("line {lineno}: duplicate key `{key}`"));
        }
        *slot = Some(value.to_string());
    }
    entries
        .into_iter()
        .enumerate()
        .map(|(i, [path, rule, reason])| {
            let missing = |k: &str| format!("[[allow]] entry {}: missing `{k}`", i + 1);
            let entry = AllowEntry {
                path: path.ok_or_else(|| missing("path"))?,
                rule: rule.ok_or_else(|| missing("rule"))?,
                reason: reason.ok_or_else(|| missing("reason"))?,
            };
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "[[allow]] entry {}: reason must be a non-empty justification",
                    i + 1
                ));
            }
            Ok(entry)
        })
        .collect()
}

/// Result of filtering findings through the allowlist.
pub struct Applied {
    /// Findings no entry covers — these fail the build.
    pub violations: Vec<Finding>,
    /// How many findings an entry absorbed.
    pub allowed: usize,
    /// Entries whose rule belongs to `scope` but which matched nothing.
    /// The unused-entry warning is scoped per pass: a justified
    /// `analyze` exception must not read as unused to `lint`, and vice
    /// versa.
    pub unused: Vec<AllowEntry>,
}

/// Filters `findings` through the allowlist, reporting unused entries
/// only for rules in `scope`.
pub fn apply(findings: Vec<Finding>, allow: &[AllowEntry], scope: &[&str]) -> Applied {
    let mut used = vec![false; allow.len()];
    let mut violations = Vec::new();
    let mut allowed = 0usize;
    for f in findings {
        match allow.iter().position(|a| a.matches(&f.path, f.rule)) {
            Some(i) => {
                used[i] = true;
                allowed += 1;
            }
            None => violations.push(f),
        }
    }
    let unused = allow
        .iter()
        .zip(&used)
        .filter(|(entry, used)| !**used && scope.contains(&entry.rule.as_str()))
        .map(|(entry, _)| entry.clone())
        .collect();
    Applied {
        violations,
        allowed,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_blank_lines() {
        let text = r#"
# header comment
[[allow]]
path = "crates/a/src/lib.rs"
rule = "wall-clock"
reason = "benchmark binary"

[[allow]]
path = "crates/b/src/x.rs"
rule = "nondet-rng"
reason = "why"
"#;
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches("crates/a/src/lib.rs", "wall-clock"));
        assert!(!entries[0].matches("crates/a/src/lib.rs", "nondet-rng"));
        assert!(!entries[0].matches("crates/other.rs", "wall-clock"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let text = "[[allow]]\npath = \"p\"\nrule = \"r\"\nreason = \"\"\n";
        assert!(parse(text).unwrap_err().contains("non-empty"));
    }

    #[test]
    fn missing_fields_are_rejected() {
        let text = "[[allow]]\npath = \"p\"\nreason = \"why\"\n";
        assert!(parse(text).unwrap_err().contains("missing `rule`"));
    }

    #[test]
    fn keys_outside_a_table_are_rejected() {
        assert!(parse("path = \"p\"\n").unwrap_err().contains("outside"));
    }

    #[test]
    fn unknown_keys_and_duplicates_are_rejected() {
        assert!(parse("[[allow]]\nlines = \"3\"\n")
            .unwrap_err()
            .contains("unknown key"));
        let dup = "[[allow]]\npath = \"a\"\npath = \"b\"\n";
        assert!(parse(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn empty_file_parses_to_no_entries() {
        assert_eq!(parse("# nothing here\n").unwrap(), vec![]);
    }

    #[test]
    fn apply_scopes_the_unused_warning_per_pass() {
        let entry = |path: &str, rule: &str| AllowEntry {
            path: path.to_string(),
            rule: rule.to_string(),
            reason: "justified".to_string(),
        };
        let allow = vec![entry("a.rs", "wall-clock"), entry("b.rs", "panic-surface")];
        let findings = vec![Finding {
            path: "a.rs".to_string(),
            line: 1,
            rule: "wall-clock",
            excerpt: String::new(),
        }];
        let applied = apply(findings, &allow, &["wall-clock"]);
        assert!(applied.violations.is_empty());
        assert_eq!(applied.allowed, 1);
        // The panic-surface entry is unused but belongs to the other
        // pass, so no warning here...
        assert!(applied.unused.is_empty());
        // ... and the analyze pass does report it.
        let applied = apply(Vec::new(), &allow, &["panic-surface"]);
        assert_eq!(applied.unused.len(), 1);
        assert_eq!(applied.unused[0].rule, "panic-surface");
    }
}
