//! `cargo xtask bench-gate` — the perf regression gate.
//!
//! Regenerates the baseline document with the release `lagover-perf`
//! harness and diffs it against the committed `BENCH_baseline.json`
//! under the `perf.gate.toml` tolerances:
//!
//! * **work units** are exact — any drift in any deterministic metric
//!   is a regression (or an unacknowledged improvement: either way the
//!   baseline must be regenerated in the same PR);
//! * **wall clock** is compared only when both documents carry a wall
//!   layer *and* their environment tags match (same runner class),
//!   within the configured percentage budget;
//! * **added** metrics or scenarios are warnings, promoted to failures
//!   by `--strict` (the weekly full-matrix job runs strict).
//!
//! The verdict is rendered as a markdown regression table, printed and
//! written to `target/bench-gate/REGRESSIONS.md` for the CI artifact
//! upload. `--compare A.json B.json` diffs two existing documents
//! instead of running the harness — CI uses it to compare the
//! committed `BENCH_obs.json` between base and head.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use lagover_perf::Baseline;

use crate::gate_config::{self, GateConfig};

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate.
    Regression,
    /// Reported; fails only under `--strict`.
    Warning,
}

/// One divergence between the baseline and the fresh document.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Scenario the divergence is in.
    pub scenario: String,
    /// Metric name (or a structural pseudo-metric like `scenario`).
    pub metric: String,
    /// Baseline-side value, rendered.
    pub baseline: String,
    /// Fresh-side value, rendered.
    pub fresh: String,
    /// Regression or warning.
    pub severity: Severity,
    /// One-line explanation.
    pub note: String,
}

/// One row of the ns/interaction normalization table: median wall
/// nanoseconds divided by the scenario's deterministic interaction
/// count. Normalizing by work units makes scenarios of different
/// sizes comparable on one scale and separates "the code got slower"
/// from "the scenario did more work".
#[derive(Debug, Clone, PartialEq)]
pub struct NormRow {
    /// Scenario the row describes.
    pub scenario: String,
    /// Baseline-side ns per interaction (`None` when the baseline has
    /// no wall layer or no interaction count).
    pub baseline_ns: Option<f64>,
    /// Fresh-side ns per interaction.
    pub fresh_ns: Option<f64>,
}

impl NormRow {
    fn render_side(v: Option<f64>) -> String {
        v.map_or_else(|| "n/a".into(), |ns| format!("{ns:.1}"))
    }
}

/// Everything the gate found, plus coverage tallies for the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Divergences, in scenario order.
    pub findings: Vec<Finding>,
    /// ns/interaction rows for scenarios where at least one side
    /// carries both a wall layer and an interaction count.
    pub normalization: Vec<NormRow>,
    /// Scenarios compared.
    pub scenarios: usize,
    /// Work-unit metrics compared exactly.
    pub work_metrics: usize,
    /// Wall layers compared within budget.
    pub wall_compared: usize,
    /// Wall layers skipped (missing on one side or env mismatch).
    pub wall_skipped: usize,
}

impl GateReport {
    /// Number of regression-severity findings.
    pub fn regressions(&self) -> usize {
        self.count(Severity::Regression)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the gate fails: any regression, or any warning under
    /// `--strict`.
    pub fn failed(&self, strict: bool) -> bool {
        self.regressions() > 0 || (strict && self.warnings() > 0)
    }

    /// Renders the markdown regression table CI uploads.
    pub fn render_markdown(&self, strict: bool) -> String {
        let mut out = String::from("# bench-gate report\n\n");
        out.push_str(&format!(
            "Compared {} scenario(s): {} work-unit metrics exactly, \
             {} wall layer(s) within budget, {} wall layer(s) skipped.\n\n",
            self.scenarios, self.work_metrics, self.wall_compared, self.wall_skipped
        ));
        if self.findings.is_empty() {
            out.push_str("No divergences.\n\n");
        } else {
            out.push_str("| scenario | metric | baseline | fresh | severity | note |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} |\n",
                    f.scenario,
                    f.metric,
                    f.baseline,
                    f.fresh,
                    match f.severity {
                        Severity::Regression => "REGRESSION",
                        Severity::Warning => "warning",
                    },
                    f.note
                ));
            }
            out.push('\n');
        }
        if !self.normalization.is_empty() {
            out.push_str("## ns/interaction (median wall / deterministic interactions)\n\n");
            out.push_str("| scenario | baseline | fresh |\n");
            out.push_str("|---|---|---|\n");
            for row in &self.normalization {
                out.push_str(&format!(
                    "| {} | {} | {} |\n",
                    row.scenario,
                    NormRow::render_side(row.baseline_ns),
                    NormRow::render_side(row.fresh_ns),
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "Verdict: **{}** ({} regression(s), {} warning(s){})\n",
            if self.failed(strict) { "FAIL" } else { "PASS" },
            self.regressions(),
            self.warnings(),
            if strict { ", strict mode" } else { "" }
        ));
        out
    }
}

/// Diffs `fresh` against `baseline` under `config`. Errors (schema or
/// parameter mismatch) mean the documents are not comparable at all —
/// distinct from a regression verdict.
pub fn compare(
    baseline: &Baseline,
    fresh: &Baseline,
    config: &GateConfig,
) -> Result<GateReport, String> {
    if baseline.schema_version != fresh.schema_version {
        return Err(format!(
            "schema version mismatch: baseline v{}, fresh v{} — \
             regenerate BENCH_baseline.json in the PR that bumped the schema",
            baseline.schema_version, fresh.schema_version
        ));
    }
    if baseline.params != fresh.params {
        let p = &baseline.params;
        let q = &fresh.params;
        return Err(format!(
            "parameter mismatch: baseline peers={} runs={} max_rounds={} seed={}, \
             fresh peers={} runs={} max_rounds={} seed={}",
            p.peers, p.runs, p.max_rounds, p.seed, q.peers, q.runs, q.max_rounds, q.seed
        ));
    }

    let mut report = GateReport::default();
    for base in &baseline.scenarios {
        let Some(new) = fresh.scenario(&base.name) else {
            report.findings.push(Finding {
                scenario: base.name.clone(),
                metric: "scenario".into(),
                baseline: "present".into(),
                fresh: "missing".into(),
                severity: Severity::Regression,
                note: "scenario disappeared from the harness".into(),
            });
            continue;
        };
        report.scenarios += 1;
        compare_work(base, new, &mut report);
        compare_wall(base, new, config, &mut report);
        let baseline_ns = ns_per_interaction(base);
        let fresh_ns = ns_per_interaction(new);
        if baseline_ns.is_some() || fresh_ns.is_some() {
            report.normalization.push(NormRow {
                scenario: base.name.clone(),
                baseline_ns,
                fresh_ns,
            });
        }
    }
    for new in &fresh.scenarios {
        if baseline.scenario(&new.name).is_none() {
            report.findings.push(Finding {
                scenario: new.name.clone(),
                metric: "scenario".into(),
                baseline: "missing".into(),
                fresh: "present".into(),
                severity: Severity::Warning,
                note: "new scenario not in the committed baseline".into(),
            });
        }
    }
    Ok(report)
}

/// Median wall nanoseconds per deterministic interaction for one
/// scenario entry, when it carries both layers.
fn ns_per_interaction(entry: &lagover_perf::ScenarioBaseline) -> Option<f64> {
    let wall = entry.wall.as_ref()?;
    let interactions = entry.work.metric("work.interactions").filter(|&i| i > 0)?;
    Some(wall.median_secs * 1e9 / interactions as f64)
}

/// Exact comparison of the deterministic layer.
fn compare_work(
    base: &lagover_perf::ScenarioBaseline,
    new: &lagover_perf::ScenarioBaseline,
    report: &mut GateReport,
) {
    let scenario = &base.name;
    fn exact(report: &mut GateReport, scenario: &str, metric: &str, b: u64, f: u64) {
        report.work_metrics += 1;
        if b != f {
            report.findings.push(Finding {
                scenario: scenario.to_string(),
                metric: metric.to_string(),
                baseline: b.to_string(),
                fresh: f.to_string(),
                severity: Severity::Regression,
                note: "work units are exact; regenerate the baseline if intended".into(),
            });
        }
    }
    exact(
        report,
        scenario,
        "rounds",
        base.work.rounds,
        new.work.rounds,
    );
    exact(
        report,
        scenario,
        "converged",
        base.work.converged,
        new.work.converged,
    );
    exact(
        report,
        scenario,
        "converged_rounds",
        base.work.converged_rounds,
        new.work.converged_rounds,
    );
    for (name, b) in &base.work.metrics {
        match new.work.metric(name) {
            Some(f) => exact(report, scenario, name, *b, f),
            None => report.findings.push(Finding {
                scenario: scenario.clone(),
                metric: name.clone(),
                baseline: b.to_string(),
                fresh: "missing".into(),
                severity: Severity::Regression,
                note: "metric disappeared".into(),
            }),
        }
    }
    for (name, f) in &new.work.metrics {
        if base.work.metric(name).is_none() {
            report.findings.push(Finding {
                scenario: scenario.clone(),
                metric: name.clone(),
                baseline: "missing".into(),
                fresh: f.to_string(),
                severity: Severity::Warning,
                note: "new metric not in the committed baseline".into(),
            });
        }
    }
}

/// Budgeted comparison of the wall layer, when comparable.
fn compare_wall(
    base: &lagover_perf::ScenarioBaseline,
    new: &lagover_perf::ScenarioBaseline,
    config: &GateConfig,
    report: &mut GateReport,
) {
    let (Some(b), Some(f)) = (&base.wall, &new.wall) else {
        if base.wall.is_some() || new.wall.is_some() {
            report.wall_skipped += 1;
        }
        return;
    };
    if b.env != f.env {
        report.wall_skipped += 1;
        report.findings.push(Finding {
            scenario: base.name.clone(),
            metric: "wall.median_secs".into(),
            baseline: b.env.render(),
            fresh: f.env.render(),
            severity: Severity::Warning,
            note: "environment tags differ; wall clock not comparable".into(),
        });
        return;
    }
    report.wall_compared += 1;
    let budget_pct = config.budget_for(&base.name);
    let limit = b.median_secs * (1.0 + budget_pct / 100.0);
    if f.median_secs > limit {
        report.findings.push(Finding {
            scenario: base.name.clone(),
            metric: "wall.median_secs".into(),
            baseline: format!("{:.4}s", b.median_secs),
            fresh: format!("{:.4}s", f.median_secs),
            severity: Severity::Regression,
            note: format!("exceeds the {budget_pct}% budget ({limit:.4}s)"),
        });
    }
}

/// Entry point for `cargo xtask bench-gate [FLAGS]`.
pub fn run(args: &[String]) -> ExitCode {
    let root = crate::workspace_root();
    let mut strict = false;
    let mut baseline_path = root.join("BENCH_baseline.json");
    let mut fresh_path: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut compare_paths: Option<(PathBuf, PathBuf)> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--strict" => strict = true,
            "--baseline" => match it.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => return usage(),
            },
            "--fresh" => match it.next() {
                Some(p) => fresh_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--compare" => match (it.next(), it.next()) {
                (Some(a), Some(b)) => compare_paths = Some((PathBuf::from(a), PathBuf::from(b))),
                _ => return usage(),
            },
            other => {
                eprintln!("xtask bench-gate: unknown flag `{other}`");
                return usage();
            }
        }
    }

    let config = match load_config(&root, config_path.as_deref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask bench-gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (baseline, fresh) = if let Some((a, b)) = &compare_paths {
        match (read_baseline(a), read_baseline(b)) {
            (Ok(x), Ok(y)) => (x, y),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("xtask bench-gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let baseline = match read_baseline(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xtask bench-gate: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fresh = match fresh_path {
            Some(path) => read_baseline(&path),
            None => run_harness(&root),
        };
        match fresh {
            Ok(f) => (baseline, f),
            Err(e) => {
                eprintln!("xtask bench-gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let report = match compare(&baseline, &fresh, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench-gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let markdown = report.render_markdown(strict);
    print!("{markdown}");
    let out_dir = crate::target_dir(&root).join("bench-gate");
    let out_path = out_dir.join("REGRESSIONS.md");
    if let Err(e) = fs::create_dir_all(&out_dir).and_then(|()| fs::write(&out_path, &markdown)) {
        eprintln!("xtask bench-gate: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("(table written to {})", out_path.display());
    if report.failed(strict) {
        eprintln!("xtask bench-gate: FAIL");
        ExitCode::FAILURE
    } else {
        println!("xtask bench-gate: PASS");
        ExitCode::SUCCESS
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask bench-gate [--strict] [--baseline PATH] [--fresh PATH] \
         [--config PATH] [--compare BASE.json HEAD.json]"
    );
    ExitCode::from(2)
}

/// Loads `perf.gate.toml`: an explicit `--config` must exist; the
/// default root file falls back to built-in tolerances when absent.
fn load_config(root: &Path, explicit: Option<&Path>) -> Result<GateConfig, String> {
    let path = explicit
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("perf.gate.toml"));
    match fs::read_to_string(&path) {
        Ok(text) => gate_config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if explicit.is_none() && e.kind() == std::io::ErrorKind::NotFound => {
            println!(
                "xtask bench-gate: no {} — using default tolerances",
                path.display()
            );
            Ok(GateConfig::default())
        }
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn read_baseline(path: &Path) -> Result<Baseline, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    lagover_jsonio::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Builds (no-op when current) and runs the release `lagover-perf`
/// harness for the fresh work-only document.
fn run_harness(root: &Path) -> Result<Baseline, String> {
    println!("xtask bench-gate: building lagover-perf (release)");
    let status = Command::new(crate::cargo())
        .current_dir(root)
        .args(["build", "--release", "-p", "lagover-perf"])
        .status()
        .map_err(|e| format!("cannot invoke cargo: {e}"))?;
    if !status.success() {
        return Err("building lagover-perf failed".to_string());
    }
    let binary = crate::target_dir(root)
        .join("release")
        .join(format!("lagover-perf{}", std::env::consts::EXE_SUFFIX));
    println!("xtask bench-gate: running {}", binary.display());
    let out = Command::new(&binary)
        .current_dir(root)
        .output()
        .map_err(|e| format!("cannot run {}: {e}", binary.display()))?;
    if !out.status.success() {
        return Err(format!(
            "lagover-perf exited with {}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    lagover_jsonio::from_str(&text).map_err(|e| format!("cannot parse harness output: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(text: &str) -> Baseline {
        lagover_jsonio::from_str(text).expect("fixture parses")
    }

    fn baseline() -> Baseline {
        fixture(include_str!("../fixtures/bench_gate/baseline.json"))
    }

    #[test]
    fn identical_documents_pass() {
        let report = compare(
            &baseline(),
            &fixture(include_str!("../fixtures/bench_gate/fresh_identical.json")),
            &GateConfig::default(),
        )
        .unwrap();
        assert_eq!(report.findings, vec![]);
        assert!(!report.failed(false));
        assert!(!report.failed(true));
        assert_eq!(report.scenarios, 2);
        assert!(report.work_metrics > 0);
        let md = report.render_markdown(false);
        assert!(md.contains("**PASS**"), "{md}");
        assert!(md.contains("No divergences"), "{md}");
    }

    #[test]
    fn work_unit_drift_is_a_regression() {
        let report = compare(
            &baseline(),
            &fixture(include_str!("../fixtures/bench_gate/fresh_work_drift.json")),
            &GateConfig::default(),
        )
        .unwrap();
        assert!(report.failed(false), "exact layer must fail on any drift");
        assert_eq!(report.regressions(), 1);
        let f = &report.findings[0];
        assert_eq!(f.scenario, "fig2");
        assert_eq!(f.metric, "work.rng_draws");
        assert_eq!((f.baseline.as_str(), f.fresh.as_str()), ("250", "251"));
        let md = report.render_markdown(false);
        assert!(
            md.contains("| fig2 | work.rng_draws | 250 | 251 | REGRESSION |"),
            "{md}"
        );
        assert!(md.contains("**FAIL**"), "{md}");
    }

    #[test]
    fn schema_version_mismatch_is_an_error_not_a_verdict() {
        let e = compare(
            &baseline(),
            &fixture(include_str!("../fixtures/bench_gate/fresh_schema.json")),
            &GateConfig::default(),
        )
        .unwrap_err();
        assert!(e.contains("schema version mismatch"), "{e}");
    }

    #[test]
    fn added_metric_warns_and_strict_promotes_it() {
        let report = compare(
            &baseline(),
            &fixture(include_str!(
                "../fixtures/bench_gate/fresh_added_metric.json"
            )),
            &GateConfig::default(),
        )
        .unwrap();
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.warnings(), 1);
        assert!(!report.failed(false), "warnings pass by default");
        assert!(report.failed(true), "--strict fails on warnings");
        let md = report.render_markdown(true);
        assert!(md.contains("strict mode"), "{md}");
        assert!(md.contains("| warning |"), "{md}");
    }

    #[test]
    fn missing_scenario_and_metric_are_regressions() {
        let mut fresh = baseline();
        fresh.scenarios[1].work.metrics.remove(0);
        fresh.scenarios.remove(0);
        let report = compare(&baseline(), &fresh, &GateConfig::default()).unwrap();
        assert_eq!(report.regressions(), 2);
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "scenario" && f.fresh == "missing"));
    }

    #[test]
    fn parameter_mismatch_is_an_error() {
        let mut fresh = baseline();
        fresh.params.seed += 1;
        let e = compare(&baseline(), &fresh, &GateConfig::default()).unwrap_err();
        assert!(e.contains("parameter mismatch"), "{e}");
    }

    #[test]
    fn wall_layers_compare_within_budget_same_env_only() {
        use lagover_perf::WallLayer;
        let mut base = baseline();
        let mut fresh = baseline();
        base.scenarios[0].wall = Some(WallLayer::from_samples(vec![1.0, 1.0, 1.0]));
        fresh.scenarios[0].wall = Some(WallLayer::from_samples(vec![1.2, 1.2, 1.2]));
        let config = GateConfig::default(); // 25% budget
        let report = compare(&base, &fresh, &config).unwrap();
        assert_eq!(report.wall_compared, 1);
        assert_eq!(report.regressions(), 0, "20% growth is inside the budget");

        fresh.scenarios[0].wall = Some(WallLayer::from_samples(vec![1.3, 1.3, 1.3]));
        let report = compare(&base, &fresh, &config).unwrap();
        assert_eq!(report.regressions(), 1, "30% growth blows the budget");
        assert!(report.findings[0].note.contains("25% budget"));

        // Mismatched environment tags: skipped with a warning.
        let mut other_env = WallLayer::from_samples(vec![9.9]);
        other_env.env.threads = "weird".into();
        fresh.scenarios[0].wall = Some(other_env);
        let report = compare(&base, &fresh, &config).unwrap();
        assert_eq!(report.wall_compared, 0);
        assert_eq!(report.wall_skipped, 1);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.warnings(), 1);
    }

    #[test]
    fn normalization_table_reports_ns_per_interaction() {
        use lagover_perf::WallLayer;
        let mut base = baseline();
        let mut fresh = baseline();
        for doc in [&mut base, &mut fresh] {
            doc.scenarios[0]
                .work
                .metrics
                .push(("work.interactions".to_string(), 2_000));
        }
        base.scenarios[0].wall = Some(WallLayer::from_samples(vec![1.0]));
        fresh.scenarios[0].wall = Some(WallLayer::from_samples(vec![0.5]));
        let report = compare(&base, &fresh, &GateConfig::default()).unwrap();
        assert_eq!(report.normalization.len(), 1);
        let row = &report.normalization[0];
        assert_eq!(row.scenario, "fig2");
        assert_eq!(row.baseline_ns, Some(1e9 / 2_000.0));
        assert_eq!(row.fresh_ns, Some(0.5e9 / 2_000.0));
        let md = report.render_markdown(false);
        assert!(md.contains("ns/interaction"), "{md}");
        assert!(md.contains("| fig2 | 500000.0 | 250000.0 |"), "{md}");
    }

    #[test]
    fn normalization_handles_a_one_sided_wall_layer() {
        use lagover_perf::WallLayer;
        let base = baseline();
        let mut fresh = baseline();
        fresh.scenarios[0]
            .work
            .metrics
            .push(("work.interactions".to_string(), 1_000));
        fresh.scenarios[0].wall = Some(WallLayer::from_samples(vec![0.1]));
        let report = compare(&base, &fresh, &GateConfig::default()).unwrap();
        assert_eq!(report.normalization.len(), 1);
        assert_eq!(report.normalization[0].baseline_ns, None);
        assert!(report
            .render_markdown(false)
            .contains("| fig2 | n/a | 100000.0 |"));
    }

    #[test]
    fn normalization_absent_without_wall_layers() {
        let report = compare(&baseline(), &baseline(), &GateConfig::default()).unwrap();
        assert!(report.normalization.is_empty());
        assert!(!report.render_markdown(false).contains("ns/interaction"));
    }

    #[test]
    fn one_sided_wall_layer_is_skipped_silently() {
        use lagover_perf::WallLayer;
        let base = baseline();
        let mut fresh = baseline();
        fresh.scenarios[0].wall = Some(WallLayer::from_samples(vec![0.1]));
        let report = compare(&base, &fresh, &GateConfig::default()).unwrap();
        assert_eq!(report.wall_skipped, 1);
        assert_eq!(report.findings, vec![], "work-only baseline stays clean");
    }
}
