//! Hand-rolled parser for `perf.gate.toml` — the bench-gate tolerance
//! file. Like `lint.allow.toml` it sticks to a tiny TOML subset so the
//! workspace needs no external TOML crate: a `[wall]` table of
//! `key = NUMBER` pairs, repeated `[[scenario]]` tables carrying a
//! quoted `name` plus a per-scenario `budget_pct` override, and `#`
//! comments. Anything else is a parse error.
//!
//! Work units are never configurable: they are exact by definition
//! (DESIGN.md §12), so the file only tunes the wall-clock layer.

/// Bench-gate tolerances.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Allowed wall-clock median growth, percent (`[wall] budget_pct`).
    pub wall_budget_pct: f64,
    /// Wall samples the gate takes when asked to measure
    /// (`[wall] samples`).
    pub wall_samples: u64,
    /// Per-scenario `budget_pct` overrides (`[[scenario]]` tables).
    pub scenario_budgets: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            wall_budget_pct: 25.0,
            wall_samples: 3,
            scenario_budgets: Vec::new(),
        }
    }
}

impl GateConfig {
    /// The wall budget for `scenario`, honouring overrides.
    pub fn budget_for(&self, scenario: &str) -> f64 {
        self.scenario_budgets
            .iter()
            .find(|(name, _)| name == scenario)
            .map(|(_, pct)| *pct)
            .unwrap_or(self.wall_budget_pct)
    }
}

/// Which table the parser is currently inside.
#[derive(PartialEq)]
enum Section {
    Top,
    Wall,
    Scenario,
}

/// Parses `perf.gate.toml` text.
pub fn parse(text: &str) -> Result<GateConfig, String> {
    let mut config = GateConfig::default();
    let mut section = Section::Top;
    // (name, budget_pct) of the [[scenario]] table being filled.
    let mut pending: Vec<(Option<String>, Option<f64>)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[wall]" => {
                section = Section::Wall;
                continue;
            }
            "[[scenario]]" => {
                section = Section::Scenario;
                pending.push((None, None));
                continue;
            }
            _ if line.starts_with('[') => {
                return Err(format!("line {lineno}: unknown table `{line}`"));
            }
            _ => {}
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `[wall]`, `[[scenario]]`, or `key = value`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match (&section, key) {
            (Section::Wall, "budget_pct") => config.wall_budget_pct = number(value, lineno)?,
            (Section::Wall, "samples") => {
                let n = number(value, lineno)?;
                if n.fract() != 0.0 || n < 0.0 {
                    return Err(format!("line {lineno}: samples must be a whole number"));
                }
                config.wall_samples = n as u64;
            }
            (Section::Scenario, "name") => {
                let name = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: name must be a quoted string"))?;
                let entry = pending.last_mut().expect("inside a [[scenario]] table");
                if entry.0.is_some() {
                    return Err(format!("line {lineno}: duplicate `name`"));
                }
                entry.0 = Some(name.to_string());
            }
            (Section::Scenario, "budget_pct") => {
                let entry = pending.last_mut().expect("inside a [[scenario]] table");
                if entry.1.is_some() {
                    return Err(format!("line {lineno}: duplicate `budget_pct`"));
                }
                entry.1 = Some(number(value, lineno)?);
            }
            (Section::Top, _) => {
                return Err(format!("line {lineno}: `{key}` outside a table"));
            }
            (_, other) => {
                return Err(format!("line {lineno}: unknown key `{other}`"));
            }
        }
    }
    for (i, (name, pct)) in pending.into_iter().enumerate() {
        let name = name.ok_or_else(|| format!("[[scenario]] entry {}: missing `name`", i + 1))?;
        let pct =
            pct.ok_or_else(|| format!("[[scenario]] entry {}: missing `budget_pct`", i + 1))?;
        config.scenario_budgets.push((name, pct));
    }
    if config.wall_budget_pct < 0.0 {
        return Err("[wall] budget_pct must be non-negative".to_string());
    }
    if let Some((name, pct)) = config.scenario_budgets.iter().find(|(_, pct)| *pct < 0.0) {
        return Err(format!("scenario `{name}`: budget_pct {pct} is negative"));
    }
    Ok(config)
}

fn number(value: &str, lineno: usize) -> Result<f64, String> {
    value
        .parse()
        .map_err(|_| format!("line {lineno}: `{value}` is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_fixture() {
        let config = parse(include_str!("../fixtures/bench_gate/gate.toml")).unwrap();
        assert_eq!(config.wall_budget_pct, 25.0);
        assert_eq!(config.wall_samples, 3);
        assert_eq!(
            config.scenario_budgets,
            vec![("construction".to_string(), 40.0)]
        );
        assert_eq!(config.budget_for("construction"), 40.0);
        assert_eq!(config.budget_for("fig2"), 25.0, "falls back to [wall]");
    }

    #[test]
    fn rejects_the_malformed_fixture() {
        let e = parse(include_str!("../fixtures/bench_gate/gate_bad.toml")).unwrap_err();
        assert!(e.contains("not a number"), "{e}");
    }

    #[test]
    fn empty_file_yields_defaults() {
        assert_eq!(parse("# nothing\n").unwrap(), GateConfig::default());
    }

    #[test]
    fn scenario_tables_need_both_fields() {
        assert!(parse("[[scenario]]\nname = \"fig2\"\n")
            .unwrap_err()
            .contains("missing `budget_pct`"));
        assert!(parse("[[scenario]]\nbudget_pct = 10\n")
            .unwrap_err()
            .contains("missing `name`"));
    }

    #[test]
    fn stray_keys_and_tables_are_rejected() {
        assert!(parse("budget_pct = 10\n").unwrap_err().contains("outside"));
        assert!(parse("[walls]\n").unwrap_err().contains("unknown table"));
        assert!(parse("[wall]\nbudget = 10\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse("[wall]\nsamples = 1.5\n")
            .unwrap_err()
            .contains("whole number"));
        assert!(parse("[wall]\nbudget_pct = -4\n")
            .unwrap_err()
            .contains("non-negative"));
    }
}
