//! `cargo xtask replay-diff` — proves the figure pipeline is
//! schedule-invariant by running each driver under four different
//! parallel schedules and byte-diffing the JSON they emit:
//!
//! * `LAGOVER_THREADS=1` (the sequential baseline),
//! * `LAGOVER_THREADS=8`,
//! * `LAGOVER_THREADS=8` + `LAGOVER_CHUNK=1` (maximal interleaving),
//! * `LAGOVER_THREADS=8` + `LAGOVER_CHUNK=3` (uneven chunks).
//!
//! Any divergence means per-run state leaked across the chunk
//! boundaries of `lagover_core::parallel_runs` — exactly the class of
//! bug the loom model (`cargo xtask loom`) checks from the other side.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// The four schedules; the first is the baseline the rest diff against.
const VARIANTS: &[(&str, &str, Option<&str>)] = &[
    ("threads-1", "1", None),
    ("threads-8", "8", None),
    ("threads-8-chunk-1", "8", Some("1")),
    ("threads-8-chunk-3", "8", Some("3")),
];

/// Entry point for `cargo xtask replay-diff [FIGS..] [--full]`.
///
/// The figure list is derived from the perf scenario registry
/// ([`lagover_perf::replay_figures`]), so a scenario added there is
/// automatically replay-diffed here — no hand-maintained list to
/// drift.
pub fn run(args: &[String]) -> ExitCode {
    let known = lagover_perf::replay_figures();
    let mut figures: Vec<String> = Vec::new();
    let mut full = false;
    for arg in args {
        match arg.as_str() {
            "--full" => full = true,
            name if known.contains(&name) => figures.push(name.to_string()),
            other => {
                eprintln!(
                    "xtask replay-diff: unknown argument `{other}` (figures: {})",
                    known.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    if figures.is_empty() {
        figures = known.iter().map(|s| s.to_string()).collect();
    }

    let root = crate::workspace_root();
    let binary = match experiments_binary(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask replay-diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    let out_root = target_dir(&root).join("replay-diff");
    let mut failures = 0usize;
    for fig in &figures {
        let mut baseline: Option<Vec<u8>> = None;
        for &(variant, threads, chunk) in VARIANTS {
            let out_dir = out_root.join(fig).join(variant);
            if let Err(e) = fs::create_dir_all(&out_dir) {
                eprintln!(
                    "xtask replay-diff: cannot create {}: {e}",
                    out_dir.display()
                );
                return ExitCode::FAILURE;
            }
            let mut cmd = Command::new(&binary);
            cmd.current_dir(&root)
                .args(["run", fig])
                .args(["--json", &out_dir.to_string_lossy()])
                .env("LAGOVER_THREADS", threads)
                .env_remove("LAGOVER_CHUNK");
            if let Some(c) = chunk {
                cmd.env("LAGOVER_CHUNK", c);
            }
            if !full {
                cmd.arg("--quick");
            }
            // Capture the driver's (chatty) table output; surface it
            // only when the run itself fails.
            match cmd.output() {
                Ok(out) if out.status.success() => {}
                Ok(out) => {
                    eprintln!(
                        "xtask replay-diff: {fig} [{variant}] driver exited with {}\n{}",
                        out.status,
                        String::from_utf8_lossy(&out.stderr)
                    );
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("xtask replay-diff: cannot run {}: {e}", binary.display());
                    return ExitCode::FAILURE;
                }
            }
            let json_path = out_dir.join(format!("{fig}.json"));
            let bytes = match fs::read(&json_path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "xtask replay-diff: driver wrote no {}: {e}",
                        json_path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            match &baseline {
                None => {
                    println!("  {fig} [{variant}]: baseline, {} bytes", bytes.len());
                    baseline = Some(bytes);
                }
                Some(base) => match first_divergence(base, &bytes) {
                    None => println!("  {fig} [{variant}]: IDENTICAL"),
                    Some(at) => {
                        failures += 1;
                        println!(
                            "  {fig} [{variant}]: DIFFERS from threads-1 at byte {at}\n    baseline: {}\n    variant:  {}",
                            context(base, at),
                            context(&bytes, at)
                        );
                    }
                },
            }
        }
    }
    if failures == 0 {
        println!(
            "xtask replay-diff: PASS — {} figure(s) byte-identical across {} schedules",
            figures.len(),
            VARIANTS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask replay-diff: FAIL — {failures} schedule divergence(s)");
        ExitCode::FAILURE
    }
}

/// Locates (building if necessary) the release `lagover-experiments`
/// binary.
fn experiments_binary(root: &std::path::Path) -> Result<PathBuf, String> {
    let binary = target_dir(root).join("release").join(format!(
        "lagover-experiments{}",
        std::env::consts::EXE_SUFFIX
    ));
    if binary.is_file() {
        return Ok(binary);
    }
    println!("xtask replay-diff: building lagover-experiments (release)");
    let status = Command::new(crate::cargo())
        .current_dir(root)
        .args(["build", "--release", "-p", "lagover-experiments"])
        .status()
        .map_err(|e| format!("cannot invoke cargo: {e}"))?;
    if !status.success() {
        return Err("building lagover-experiments failed".to_string());
    }
    if binary.is_file() {
        Ok(binary)
    } else {
        Err(format!("built, but {} does not exist", binary.display()))
    }
}

use crate::target_dir;

/// The core comparison `replay-diff` is built on: byte offset of the
/// first divergence between two outputs, or `None` when they are
/// identical (a length mismatch diverges at the shorter length).
pub fn first_divergence(a: &[u8], b: &[u8]) -> Option<usize> {
    let shared = a.len().min(b.len());
    (0..shared).find(|&i| a[i] != b[i]).or({
        if a.len() == b.len() {
            None
        } else {
            Some(shared)
        }
    })
}

/// A short printable window around `at` for divergence reports.
fn context(bytes: &[u8], at: usize) -> String {
    let start = at.saturating_sub(20);
    let end = (at + 20).min(bytes.len());
    let window = String::from_utf8_lossy(&bytes[start..end]).into_owned();
    format!("…{}…", window.escape_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_buffers_have_no_divergence() {
        assert_eq!(first_divergence(b"", b""), None);
        assert_eq!(first_divergence(b"{\"a\":1}", b"{\"a\":1}"), None);
    }

    #[test]
    fn divergence_reports_the_first_differing_byte() {
        assert_eq!(first_divergence(b"abcd", b"abXd"), Some(2));
        assert_eq!(first_divergence(b"abc", b"abcd"), Some(3));
        assert_eq!(first_divergence(b"abcd", b"abc"), Some(3));
    }
}

#[cfg(test)]
mod props {
    //! Property tests for the comparison: a replayed run that produced
    //! the *same* bytes must always be accepted, and a run whose
    //! sampled value was perturbed (the observable effect of an
    //! injected `thread_rng` draw) must always be rejected, with the
    //! divergence located no earlier than the perturbation.

    use super::first_divergence;
    use proptest::prelude::*;

    /// Renders a miniature figure-report JSON whose only
    /// schedule-sensitive content is one sampled value.
    fn render(seed: u64, sample: u64, runs: &[u64]) -> Vec<u8> {
        let runs_csv = runs
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"seed\":{seed},\"sample\":{sample},\"runs\":[{runs_csv}]}}").into_bytes()
    }

    proptest! {
        #[test]
        fn identical_replays_are_accepted(
            seed in proptest::prelude::any::<u64>(),
            sample in proptest::prelude::any::<u64>(),
            runs in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..8),
        ) {
            let a = render(seed, sample, &runs);
            let b = render(seed, sample, &runs);
            prop_assert_eq!(first_divergence(&a, &b), None);
        }

        #[test]
        fn thread_rng_style_perturbation_is_rejected(
            seed in proptest::prelude::any::<u64>(),
            sample in 0u64..u64::MAX,
            delta in 1u64..1000,
            runs in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..8),
        ) {
            // An ambient-RNG draw changes the sampled value but leaves
            // the surrounding report structure alone.
            let perturbed = sample.wrapping_add(delta);
            prop_assume!(perturbed != sample);
            let a = render(seed, sample, &runs);
            let b = render(seed, perturbed, &runs);
            let at = first_divergence(&a, &b);
            prop_assert!(at.is_some(), "perturbed replay accepted");
            // The prefix before the sample is identical, so the diff
            // must land inside or after the sample field.
            let prefix = format!("{{\"seed\":{seed},\"sample\":");
            prop_assert!(at.expect("checked above") >= prefix.len());
        }
    }
}
