//! The determinism lint: a token-level scan over every workspace
//! source tree for the hazard classes DESIGN.md §9 bans, now running
//! on the `analyze` engine (`crate::analyze::lexer` strips comments
//! and string contents offset-preservingly and masks `#[cfg(test)]`
//! regions; `crate::analyze::model` walks `src/`, `tests/`,
//! `examples/`, and `benches/` — the old scanner silently skipped
//! everything but `src/`).
//!
//! Rules, scoped per target tree ([`FileKind`]):
//!
//! | rule                 | pattern                                | scope |
//! |----------------------|----------------------------------------|-------|
//! | `nondet-rng`         | `thread_rng`, `rand::random`           | all trees — a nondeterministic test is still a broken test |
//! | `wall-clock`         | `Instant::now`, `SystemTime`           | `src/` + `examples/` (timing a test or bench is the point) |
//! | `unordered-iter`     | `HashMap`, `HashSet`                   | serialization-adjacent `src/`/`examples/` files (mention `to_json`/`jsonio`, or live in `crates/experiments/src`) |
//! | `float-accumulation` | `.sum(`/`.sum::`                       | `crates/sim/src/stats.rs` |
//! | `obs-bypass`         | `println!`/`eprintln!`, `struct *Counters` | `crates/core/src` (telemetry goes through the `lagover-obs` facade) |
//!
//! The old `bare-unwrap` rule moved to `cargo xtask analyze` as the
//! tiered `panic-surface` rule; the alias-aware workspace-wide hash
//! container rule lives there too (`alias-unordered-iter`).

use std::fs;
use std::process::ExitCode;

use crate::allowlist::{self, ALLOWLIST_PATH, MAX_ALLOW_ENTRIES};
use crate::analyze::lexer::{contains_ident, find_idents, is_ident_byte};
use crate::analyze::model::{FileKind, Model, SourceFile};
pub use crate::analyze::rules::Finding;

/// Rule ids `cargo xtask lint` owns; the allowlist's unused-entry
/// warning is scoped to these (see [`allowlist::apply`]).
pub const LINT_RULES: &[&str] = &[
    "nondet-rng",
    "wall-clock",
    "unordered-iter",
    "float-accumulation",
    "obs-bypass",
];

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        eprintln!("xtask lint takes no arguments");
        return ExitCode::from(2);
    }
    let root = crate::workspace_root();

    let allow_text = match fs::read_to_string(root.join(ALLOWLIST_PATH)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint: cannot read {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allow = match allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if allow.len() > MAX_ALLOW_ENTRIES {
        eprintln!(
            "xtask lint: allowlist has {} entries; the cap is {MAX_ALLOW_ENTRIES} \
             — fix violations instead of allowlisting them",
            allow.len()
        );
        return ExitCode::FAILURE;
    }

    let model = match Model::load(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut findings = Vec::new();
    for file in &model.files {
        findings.extend(scan_file(file));
    }

    let applied = allowlist::apply(findings, &allow, LINT_RULES);
    for v in &applied.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.excerpt);
    }
    for entry in &applied.unused {
        println!(
            "warning: unused allowlist entry (path = {:?}, rule = {:?}) — remove it",
            entry.path, entry.rule
        );
    }
    println!(
        "xtask lint: scanned {} files — {} violation(s), {} allowlisted ({} allowlist entries)",
        model.files.len(),
        applied.violations.len(),
        applied.allowed,
        allow.len()
    );
    if applied.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scans one loaded source file, applying each rule the file's kind
/// and path put it in scope for.
pub fn scan_file(file: &SourceFile) -> Vec<Finding> {
    let path = file.path.as_str();
    let masked = file.masked();
    let serialization_adjacent = path.starts_with("crates/experiments/src")
        || contains_ident(&masked, "to_json")
        || contains_ident(&masked, "jsonio");
    let timed_scope = matches!(file.kind, FileKind::Src | FileKind::Examples);

    let mut findings = Vec::new();
    let mut emit = |offset: usize, rule: &'static str| {
        findings.push(Finding {
            path: path.to_string(),
            line: file.line_of(offset),
            rule,
            excerpt: file.excerpt_at(offset),
        });
    };

    for offset in find_idents(&masked, "thread_rng") {
        emit(offset, "nondet-rng");
    }
    for offset in find_idents(&masked, "rand::random") {
        emit(offset, "nondet-rng");
    }
    if timed_scope {
        for offset in find_idents(&masked, "Instant::now") {
            emit(offset, "wall-clock");
        }
        for offset in find_idents(&masked, "SystemTime") {
            emit(offset, "wall-clock");
        }
    }
    if timed_scope && serialization_adjacent {
        for offset in find_idents(&masked, "HashMap") {
            emit(offset, "unordered-iter");
        }
        for offset in find_idents(&masked, "HashSet") {
            emit(offset, "unordered-iter");
        }
    }
    if path == "crates/sim/src/stats.rs" {
        for offset in find_idents(&masked, ".sum") {
            // `.sum(` or `.sum::<f64>(` — both accumulate in iterator
            // order; the trailing check excludes unrelated idents like
            // `.summary`.
            let after = masked.as_bytes().get(offset + 4).copied();
            if after == Some(b'(') || after == Some(b':') {
                emit(offset, "float-accumulation");
            }
        }
    }
    if path.starts_with("crates/core/src") {
        // Telemetry must flow through the `lagover-obs` facade: no raw
        // stdout/stderr printing and no ad-hoc `*Counters` structs in
        // the engine crate (the one blessed set lives in
        // `crates/obs/src/counters.rs`).
        for offset in find_idents(&masked, "println!") {
            emit(offset, "obs-bypass");
        }
        for offset in find_idents(&masked, "eprintln!") {
            emit(offset, "obs-bypass");
        }
        let bytes = masked.as_bytes();
        for offset in find_idents(&masked, "struct") {
            let mut j = offset + "struct".len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if masked[start..j].ends_with("Counters") {
                emit(offset, "obs-bypass");
            }
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scans source text as a `src/`-tree file at `path` — the scope
    /// most rules apply to.
    fn scan_source(path: &str, source: &str) -> Vec<Finding> {
        scan_file(&SourceFile::from_source(
            path.to_string(),
            FileKind::Src,
            source.to_string(),
        ))
    }

    fn rules_of(path: &str, source: &str) -> Vec<&'static str> {
        scan_source(path, source)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    fn rules_of_kind(kind: FileKind, path: &str, source: &str) -> Vec<&'static str> {
        scan_file(&SourceFile::from_source(
            path.to_string(),
            kind,
            source.to_string(),
        ))
        .into_iter()
        .map(|f| f.rule)
        .collect()
    }

    #[test]
    fn fixture_nondet_rng_is_caught() {
        let findings = scan_source(
            "crates/fake/src/lib.rs",
            include_str!("../fixtures/nondet_rng.rs"),
        );
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["nondet-rng", "nondet-rng"]);
        // Line numbers must point at the real uses, not the decoys in
        // comments/strings.
        assert!(findings
            .iter()
            .all(|f| f.excerpt.contains("rng") || f.excerpt.contains("random")));
    }

    #[test]
    fn nondet_rng_applies_to_every_tree() {
        let source = "fn f() { let _ = thread_rng(); }\n";
        for kind in [
            FileKind::Src,
            FileKind::Tests,
            FileKind::Examples,
            FileKind::Benches,
        ] {
            assert_eq!(
                rules_of_kind(kind, "crates/fake/tests/t.rs", source),
                ["nondet-rng"],
                "kind {kind:?}"
            );
        }
    }

    #[test]
    fn fixture_wall_clock_is_caught() {
        assert_eq!(
            rules_of(
                "crates/fake/src/lib.rs",
                include_str!("../fixtures/wall_clock.rs")
            ),
            ["wall-clock", "wall-clock"]
        );
    }

    #[test]
    fn wall_clock_exempts_tests_and_benches() {
        let source = "fn f() { let _t = std::time::Instant::now(); }\n";
        assert!(rules_of_kind(FileKind::Tests, "crates/fake/tests/t.rs", source).is_empty());
        assert!(rules_of_kind(FileKind::Benches, "crates/fake/benches/b.rs", source).is_empty());
        assert_eq!(
            rules_of_kind(FileKind::Examples, "examples/e.rs", source),
            ["wall-clock"]
        );
    }

    #[test]
    fn fixture_unordered_iter_is_caught_only_near_serialization() {
        let source = include_str!("../fixtures/unordered_iter.rs");
        // The fixture mentions `to_json`, so it is serialization-adjacent.
        assert_eq!(
            rules_of("crates/fake/src/lib.rs", source),
            ["unordered-iter", "unordered-iter"]
        );
        // A HashMap in a file with no serialization surface is fine.
        let plain = "use std::collections::HashMap;\nfn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n";
        assert!(rules_of("crates/fake/src/lib.rs", plain).is_empty());
        // ... but in the experiments crate the rule applies everywhere.
        assert_eq!(rules_of("crates/experiments/src/lib.rs", plain).len(), 3);
    }

    #[test]
    fn fixture_float_accumulation_is_caught_in_stats_only() {
        let source = include_str!("../fixtures/float_accum.rs");
        assert_eq!(
            rules_of("crates/sim/src/stats.rs", source),
            ["float-accumulation", "float-accumulation"]
        );
        assert!(rules_of("crates/sim/src/metrics.rs", source).is_empty());
    }

    #[test]
    fn fixture_obs_bypass_is_caught_in_core_only() {
        let source = include_str!("../fixtures/obs_bypass.rs");
        let findings = scan_source("crates/core/src/engine.rs", source);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["obs-bypass", "obs-bypass", "obs-bypass"]);
        // One print of each stream plus the shadow-counter struct —
        // and none of the decoys.
        assert!(findings[0].excerpt.contains("println!"));
        assert!(findings[1].excerpt.contains("eprintln!"));
        assert!(findings[2].excerpt.contains("ShadowCounters"));
        // Outside the engine crate the rule does not apply (the obs
        // crate itself defines the blessed `EngineCounters`).
        assert!(rules_of("crates/obs/src/counters.rs", source).is_empty());
    }

    #[test]
    fn obs_bypass_requires_the_counters_suffix() {
        let source = "struct Countersign { field: u8 }\nstruct Counters { a: u64 }\n";
        assert_eq!(
            rules_of("crates/core/src/engine.rs", source),
            ["obs-bypass"]
        );
    }

    #[test]
    fn fixture_clean_file_produces_no_findings() {
        assert!(rules_of(
            "crates/core/src/engine.rs",
            include_str!("../fixtures/clean.rs")
        )
        .is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let source = r##"
// thread_rng in a comment is fine
/* Instant::now in /* a nested */ block comment */
fn f() -> &'static str {
    let _lifetime: &'static str = "thread_rng and SystemTime in a string";
    let _raw = r#"rand::random() in a raw string"#;
    let _ch = '"';
    "done"
}
"##;
        assert!(rules_of("crates/core/src/engine.rs", source).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let source = "
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _rng = thread_rng();
        let _t = std::time::SystemTime::now();
    }
}
";
        assert!(rules_of("crates/core/src/engine.rs", source).is_empty());
    }

    #[test]
    fn non_test_code_after_a_test_module_is_still_scanned() {
        let source = "
#[cfg(test)]
mod tests { fn t() { } }
fn late() { let _t = std::time::Instant::now(); }
";
        assert_eq!(
            rules_of("crates/core/src/engine.rs", source),
            ["wall-clock"]
        );
    }

    #[test]
    fn identifier_boundaries_are_respected() {
        // `my_thread_rng_helper` and `.summary()` must not match.
        let source = "fn my_thread_rng_helper() {}\n";
        assert!(rules_of("crates/core/src/engine.rs", source).is_empty());
        let stats = "fn f(s: &S) { s.summary(); }\n";
        assert!(rules_of("crates/sim/src/stats.rs", stats).is_empty());
    }

    #[test]
    fn line_numbers_survive_stripping() {
        let source = "// comment\n\nfn f() {\n    let t = std::time::SystemTime::now();\n}\n";
        let findings = scan_source("crates/sim/src/clock.rs", source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].excerpt.contains("SystemTime"));
    }

    #[test]
    fn real_workspace_sources_lint_clean_modulo_allowlist() {
        // The end-to-end property `cargo xtask lint` enforces, run
        // in-process: every finding in the real tree is allowlisted,
        // and every lint-scoped allowlist entry is live.
        let root = crate::workspace_root();
        let allow_text =
            std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("allowlist readable");
        let allow = crate::allowlist::parse(&allow_text).expect("allowlist parses");
        assert!(allow.len() <= MAX_ALLOW_ENTRIES);
        let model = Model::load(&root).expect("model loads");
        let mut findings = Vec::new();
        for file in &model.files {
            findings.extend(scan_file(file));
        }
        let applied = allowlist::apply(findings, &allow, LINT_RULES);
        assert!(
            applied.violations.is_empty(),
            "unallowlisted violations:\n{}",
            applied
                .violations
                .iter()
                .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.rule, f.excerpt))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            applied.unused.is_empty(),
            "unused lint allowlist entries: {:?}",
            applied.unused
        );
    }
}
