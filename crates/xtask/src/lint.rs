//! The determinism lint: a token-level scan over every workspace
//! `src/` tree for the hazard classes DESIGN.md §9 bans.
//!
//! This is deliberately *not* an AST pass — the workspace builds with
//! zero external dependencies, so there is no `syn` to parse with.
//! Instead the scanner strips comments and string/char-literal contents
//! (preserving byte offsets, so line numbers stay exact), masks
//! `#[cfg(test)]` module bodies via brace tracking, and then matches the
//! banned patterns with identifier-boundary checks. The fixtures under
//! `crates/xtask/fixtures/` pin down exactly what each rule catches and
//! what it must not catch.
//!
//! Rules:
//!
//! | rule                 | pattern                                | scope |
//! |----------------------|----------------------------------------|-------|
//! | `nondet-rng`         | `thread_rng`, `rand::random`           | all sources |
//! | `wall-clock`         | `Instant::now`, `SystemTime`           | all sources (benchmarks go on the allowlist) |
//! | `unordered-iter`     | `HashMap`, `HashSet`                   | serialization-adjacent files (mention `to_json`/`jsonio`, or live in `crates/experiments/src`) |
//! | `float-accumulation` | `.sum(`/`.sum::`                       | `crates/sim/src/stats.rs` |
//! | `bare-unwrap`        | `.unwrap()`, `.expect("")`             | `crates/core/src` |
//! | `obs-bypass`         | `println!`/`eprintln!`, `struct *Counters` | `crates/core/src` (telemetry goes through the `lagover-obs` facade) |

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::allowlist;

/// Relative path of the allowlist, from the workspace root.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint.allow.toml";

/// Hard cap on allowlist size — the list must stay a short set of
/// justified exceptions, not an escape hatch.
pub const MAX_ALLOW_ENTRIES: usize = 10;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (matches allowlist `rule =` values).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        eprintln!("xtask lint takes no arguments");
        return ExitCode::from(2);
    }
    let root = crate::workspace_root();

    let allow_text = match fs::read_to_string(root.join(ALLOWLIST_PATH)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint: cannot read {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allow = match allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if allow.len() > MAX_ALLOW_ENTRIES {
        eprintln!(
            "xtask lint: allowlist has {} entries; the cap is {MAX_ALLOW_ENTRIES} \
             — fix violations instead of allowlisting them",
            allow.len()
        );
        return ExitCode::FAILURE;
    }

    let files = workspace_sources(&root);
    let mut findings = Vec::new();
    for file in &files {
        let source = match fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = rel_path(&root, file);
        findings.extend(scan_source(&rel, &source));
    }

    let mut used = vec![false; allow.len()];
    let mut violations = Vec::new();
    let mut allowed = 0usize;
    for f in findings {
        match allow.iter().position(|a| a.matches(&f.path, f.rule)) {
            Some(i) => {
                used[i] = true;
                allowed += 1;
            }
            None => violations.push(f),
        }
    }

    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.excerpt);
    }
    for (entry, used) in allow.iter().zip(&used) {
        if !used {
            println!(
                "warning: unused allowlist entry (path = {:?}, rule = {:?}) — remove it",
                entry.path, entry.rule
            );
        }
    }
    println!(
        "xtask lint: scanned {} files — {} violation(s), {} allowlisted ({} allowlist entries)",
        files.len(),
        violations.len(),
        allowed,
        allow.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// All `.rs` files under every `crates/*/src`, sorted for stable output.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .expect("workspace has a crates/ directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans one source file (identified by its workspace-relative `path`,
/// which selects the path-scoped rules) and returns all findings.
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let stripped = strip_code(source);
    let masked = mask_test_regions(&stripped);
    let serialization_adjacent = path.starts_with("crates/experiments/src")
        || contains_ident(&masked, "to_json")
        || contains_ident(&masked, "jsonio");

    let mut findings = Vec::new();
    let mut emit = |offset: usize, rule: &'static str| {
        let line = 1 + source.as_bytes()[..offset]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        let excerpt = source
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        findings.push(Finding {
            path: path.to_string(),
            line,
            rule,
            excerpt,
        });
    };

    for offset in find_idents(&masked, "thread_rng") {
        emit(offset, "nondet-rng");
    }
    for offset in find_idents(&masked, "rand::random") {
        emit(offset, "nondet-rng");
    }
    for offset in find_idents(&masked, "Instant::now") {
        emit(offset, "wall-clock");
    }
    for offset in find_idents(&masked, "SystemTime") {
        emit(offset, "wall-clock");
    }
    if serialization_adjacent {
        for offset in find_idents(&masked, "HashMap") {
            emit(offset, "unordered-iter");
        }
        for offset in find_idents(&masked, "HashSet") {
            emit(offset, "unordered-iter");
        }
    }
    if path == "crates/sim/src/stats.rs" {
        for offset in find_idents(&masked, ".sum") {
            // `.sum(` or `.sum::<f64>(` — both accumulate in iterator
            // order; the trailing check excludes unrelated idents like
            // `.summary`.
            let after = masked.as_bytes().get(offset + 4).copied();
            if after == Some(b'(') || after == Some(b':') {
                emit(offset, "float-accumulation");
            }
        }
    }
    if path.starts_with("crates/core/src") {
        for offset in find_idents(&masked, ".unwrap()") {
            emit(offset, "bare-unwrap");
        }
        // String contents are space-blanked *preserving length*, so a
        // surviving `""` really was empty in the source.
        for offset in find_idents(&masked, ".expect(\"\")") {
            emit(offset, "bare-unwrap");
        }
        // Telemetry must flow through the `lagover-obs` facade: no raw
        // stdout/stderr printing and no ad-hoc `*Counters` structs in
        // the engine crate (the one blessed set lives in
        // `crates/obs/src/counters.rs`).
        for offset in find_idents(&masked, "println!") {
            emit(offset, "obs-bypass");
        }
        for offset in find_idents(&masked, "eprintln!") {
            emit(offset, "obs-bypass");
        }
        let bytes = masked.as_bytes();
        for offset in find_idents(&masked, "struct") {
            let mut j = offset + "struct".len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if masked[start..j].ends_with("Counters") {
                emit(offset, "obs-bypass");
            }
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn contains_ident(haystack: &str, needle: &str) -> bool {
    !find_idents(haystack, needle).is_empty()
}

/// Byte offsets of `needle` in `haystack` where the match is not
/// embedded in a longer identifier on either side.
fn find_idents(haystack: &str, needle: &str) -> Vec<usize> {
    let hay = haystack.as_bytes();
    let ned = needle.as_bytes();
    let mut offsets = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(hay, ned, from) {
        let left_ok = pos == 0 || !is_ident_byte(hay[pos - 1]);
        let right_ok = pos + ned.len() >= hay.len() || !is_ident_byte(hay[pos + ned.len()]);
        // A needle that starts/ends with punctuation (`.sum`, `::`) is
        // boundary-checked only on its identifier ends.
        let left_ok = left_ok || !is_ident_byte(ned[0]);
        let right_ok = right_ok || !is_ident_byte(ned[ned.len() - 1]);
        if left_ok && right_ok {
            offsets.push(pos);
        }
        from = pos + 1;
    }
    offsets
}

fn find_from(hay: &[u8], ned: &[u8], from: usize) -> Option<usize> {
    if ned.is_empty() || hay.len() < ned.len() {
        return None;
    }
    (from..=hay.len() - ned.len()).find(|&i| &hay[i..i + ned.len()] == ned)
}

/// Replaces comments and string/char-literal *contents* with spaces,
/// preserving the total byte length and every newline so offsets map
/// 1:1 back to the original source. Quote characters themselves are
/// kept, which lets `.expect("")` detection distinguish an empty
/// message from a blanked non-empty one.
pub fn strip_code(source: &str) -> String {
    let src = source.as_bytes();
    let mut out = src.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < src.len() {
        match src[i] {
            b'/' if src.get(i + 1) == Some(&b'/') => {
                let end = find_from(src, b"\n", i).unwrap_or(src.len());
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if src.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < src.len() && depth > 0 {
                    if src[j] == b'/' && src.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if src[j] == b'*' && src.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'"' => {
                let end = skip_string(src, i);
                blank(&mut out, i + 1..end.saturating_sub(1));
                i = end;
            }
            b'r' | b'b' if !prev_is_ident(src, i) && raw_string_start(src, i).is_some() => {
                let (body_start, end) = raw_string_start(src, i).expect("checked above");
                blank(&mut out, body_start..end);
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = src.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|b| is_ident_byte(b) && b != b'\\')
                    && src.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                } else {
                    let end = skip_char_literal(src, i);
                    blank(&mut out, i + 1..end.saturating_sub(1));
                    i = end;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(src: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(src[i - 1])
}

/// If `src[i..]` starts a raw (or raw-byte) string literal, returns
/// `(content_start, end_after_closing_quote_and_hashes)`.
fn raw_string_start(src: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if src.get(j) == Some(&b'b') {
        j += 1;
    }
    if src.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let hash_start = j;
    while src.get(j) == Some(&b'#') {
        j += 1;
    }
    let hashes = j - hash_start;
    if src.get(j) != Some(&b'"') {
        return None;
    }
    let content_start = j + 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let end = find_from(src, &closer, content_start)
        .map(|p| p + closer.len())
        .unwrap_or(src.len());
    Some((content_start, end))
}

/// Returns the index just past the closing quote of the string starting
/// at `src[start] == b'"'`.
fn skip_string(src: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < src.len() {
        match src[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    src.len()
}

fn skip_char_literal(src: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < src.len() {
        match src[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    src.len()
}

/// Space-blanks the bodies of `#[cfg(test)]`-gated items (keeping
/// newlines), so test-only code is invisible to the pattern matchers.
/// Works on already-stripped text, so the attribute cannot appear
/// inside a string or comment.
pub fn mask_test_regions(stripped: &str) -> String {
    let mut out = stripped.as_bytes().to_vec();
    let src = stripped.as_bytes();
    let mut from = 0;
    while let Some(attr) = find_from(src, b"#[cfg(test)]", from) {
        let attr_end = attr + "#[cfg(test)]".len();
        // The gated item's body is the next brace-balanced block.
        let Some(open) = find_from(src, b"{", attr_end) else {
            break;
        };
        let mut depth = 1;
        let mut j = open + 1;
        while j < src.len() && depth > 0 {
            match src[j] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        for b in &mut out[open..j] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        from = j;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, source: &str) -> Vec<&'static str> {
        scan_source(path, source)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn fixture_nondet_rng_is_caught() {
        let findings = scan_source(
            "crates/fake/src/lib.rs",
            include_str!("../fixtures/nondet_rng.rs"),
        );
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["nondet-rng", "nondet-rng"]);
        // Line numbers must point at the real uses, not the decoys in
        // comments/strings.
        assert!(findings
            .iter()
            .all(|f| f.excerpt.contains("rng") || f.excerpt.contains("random")));
    }

    #[test]
    fn fixture_wall_clock_is_caught() {
        assert_eq!(
            rules_of(
                "crates/fake/src/lib.rs",
                include_str!("../fixtures/wall_clock.rs")
            ),
            ["wall-clock", "wall-clock"]
        );
    }

    #[test]
    fn fixture_unordered_iter_is_caught_only_near_serialization() {
        let source = include_str!("../fixtures/unordered_iter.rs");
        // The fixture mentions `to_json`, so it is serialization-adjacent.
        assert_eq!(
            rules_of("crates/fake/src/lib.rs", source),
            ["unordered-iter", "unordered-iter"]
        );
        // A HashMap in a file with no serialization surface is fine.
        let plain = "use std::collections::HashMap;\nfn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n";
        assert!(rules_of("crates/fake/src/lib.rs", plain).is_empty());
        // ... but in the experiments crate the rule applies everywhere.
        assert_eq!(rules_of("crates/experiments/src/lib.rs", plain).len(), 3);
    }

    #[test]
    fn fixture_float_accumulation_is_caught_in_stats_only() {
        let source = include_str!("../fixtures/float_accum.rs");
        assert_eq!(
            rules_of("crates/sim/src/stats.rs", source),
            ["float-accumulation", "float-accumulation"]
        );
        assert!(rules_of("crates/sim/src/metrics.rs", source).is_empty());
    }

    #[test]
    fn fixture_bare_unwrap_is_caught_in_core_only() {
        let source = include_str!("../fixtures/bare_unwrap.rs");
        assert_eq!(
            rules_of("crates/core/src/engine.rs", source),
            ["bare-unwrap", "bare-unwrap"]
        );
        assert!(rules_of("crates/workload/src/lib.rs", source).is_empty());
    }

    #[test]
    fn fixture_obs_bypass_is_caught_in_core_only() {
        let source = include_str!("../fixtures/obs_bypass.rs");
        let findings = scan_source("crates/core/src/engine.rs", source);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["obs-bypass", "obs-bypass", "obs-bypass"]);
        // One print of each stream plus the shadow-counter struct —
        // and none of the decoys.
        assert!(findings[0].excerpt.contains("println!"));
        assert!(findings[1].excerpt.contains("eprintln!"));
        assert!(findings[2].excerpt.contains("ShadowCounters"));
        // Outside the engine crate the rule does not apply (the obs
        // crate itself defines the blessed `EngineCounters`).
        assert!(rules_of("crates/obs/src/counters.rs", source).is_empty());
    }

    #[test]
    fn obs_bypass_requires_the_counters_suffix() {
        let source = "struct Countersign { field: u8 }\nstruct Counters { a: u64 }\n";
        assert_eq!(
            rules_of("crates/core/src/engine.rs", source),
            ["obs-bypass"]
        );
    }

    #[test]
    fn fixture_clean_file_produces_no_findings() {
        assert!(rules_of(
            "crates/core/src/engine.rs",
            include_str!("../fixtures/clean.rs")
        )
        .is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let source = r##"
// thread_rng in a comment is fine
/* Instant::now in /* a nested */ block comment */
fn f() -> &'static str {
    let _lifetime: &'static str = "thread_rng and SystemTime in a string";
    let _raw = r#"rand::random() in a raw string"#;
    let _ch = '"';
    "done"
}
"##;
        assert!(rules_of("crates/core/src/engine.rs", source).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let source = "
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u8> = None;
        x.unwrap();
        let _t = std::time::SystemTime::now();
    }
}
";
        assert!(rules_of("crates/core/src/engine.rs", source).is_empty());
    }

    #[test]
    fn non_test_code_after_a_test_module_is_still_scanned() {
        let source = "
#[cfg(test)]
mod tests { fn t() { } }
fn late() { let x: Option<u8> = None; x.unwrap(); }
";
        assert_eq!(
            rules_of("crates/core/src/engine.rs", source),
            ["bare-unwrap"]
        );
    }

    #[test]
    fn empty_expect_is_flagged_but_messages_pass() {
        let source = "fn f() { let x: Option<u8> = None; x.expect(\"\"); }\n";
        assert_eq!(
            rules_of("crates/core/src/overlay.rs", source),
            ["bare-unwrap"]
        );
        let with_msg = "fn f() { let x: Option<u8> = None; x.expect(\"invariant: filled\"); }\n";
        assert!(rules_of("crates/core/src/overlay.rs", with_msg).is_empty());
    }

    #[test]
    fn identifier_boundaries_are_respected() {
        // `my_thread_rng_helper` and `.summary()` must not match.
        let source = "fn my_thread_rng_helper() {}\n";
        assert!(rules_of("crates/core/src/engine.rs", source).is_empty());
        let stats = "fn f(s: &S) { s.summary(); }\n";
        assert!(rules_of("crates/sim/src/stats.rs", stats).is_empty());
    }

    #[test]
    fn line_numbers_survive_stripping() {
        let source = "// comment\n\nfn f() {\n    let t = std::time::SystemTime::now();\n}\n";
        let findings = scan_source("crates/sim/src/clock.rs", source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].excerpt.contains("SystemTime"));
    }

    #[test]
    fn real_workspace_sources_lint_clean_modulo_allowlist() {
        // The end-to-end property `cargo xtask lint` enforces, run
        // in-process: every finding in the real tree is allowlisted.
        let root = crate::workspace_root();
        let allow_text =
            std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("allowlist readable");
        let allow = crate::allowlist::parse(&allow_text).expect("allowlist parses");
        assert!(allow.len() <= MAX_ALLOW_ENTRIES);
        for file in workspace_sources(&root) {
            let source = std::fs::read_to_string(&file).expect("source readable");
            let rel = rel_path(&root, &file);
            for finding in scan_source(&rel, &source) {
                assert!(
                    allow.iter().any(|a| a.matches(&finding.path, finding.rule)),
                    "unallowlisted violation: {}:{} [{}] {}",
                    finding.path,
                    finding.line,
                    finding.rule,
                    finding.excerpt
                );
            }
        }
    }
}
