//! Property test: the registry's `events.*` counters are exactly a
//! fold over the raw journal. When the journal capacity covers the
//! whole stream, `Registry::sample` and `Journal::counts_by_kind`
//! agree on every [`EventKind`], so neither surface can silently lose
//! or double-count events.

use lagover_obs::{DetachCause, Event, EventKind, Journal, Node, Registry};
use proptest::prelude::*;

fn node() -> impl Strategy<Value = Node> {
    prop_oneof![Just(Node::Source), (0u32..64).prop_map(Node::Peer)]
}

fn cause() -> impl Strategy<Value = DetachCause> {
    (0usize..DetachCause::ALL.len()).prop_map(|i| DetachCause::ALL[i])
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u64..100, 0u32..64, node()).prop_map(|(round, child, parent)| Event::Attach {
            round,
            child,
            parent
        }),
        (0u64..100, 0u32..64, node(), cause()).prop_map(|(round, child, parent, cause)| {
            Event::Detach {
                round,
                child,
                parent,
                cause,
            }
        }),
        (0u64..100, 0u32..64, 0u32..64).prop_map(|(round, peer, target)| Event::OracleHit {
            round,
            peer,
            target
        }),
        (0u64..100, 0u32..64).prop_map(|(round, peer)| Event::OracleMiss { round, peer }),
        (0u64..100, 0u32..64).prop_map(|(round, peer)| Event::OracleOutage { round, peer }),
        (0u64..100, 0u32..64).prop_map(|(round, peer)| Event::SourceContact { round, peer }),
        (0u64..100, 0u32..64, 0u32..8).prop_map(|(round, peer, remaining)| Event::Backoff {
            round,
            peer,
            remaining
        }),
        (0u64..100, 0u32..64).prop_map(|(round, peer)| Event::MessageLost { round, peer }),
        (0u64..100, 0u32..64).prop_map(|(round, peer)| Event::Crash { round, peer }),
        (0u64..100, 0u32..64, 0u32..64).prop_map(|(round, peer, parent)| Event::FaultDetected {
            round,
            peer,
            parent
        }),
        (0u64..100, 0u32..64, 0u32..12).prop_map(|(round, peer, depth)| Event::Delivery {
            round,
            peer,
            depth,
            chunk: if depth % 2 == 0 {
                None
            } else {
                Some(u64::from(depth))
            }
        }),
        (0u64..100, 0u32..64, 0u64..32).prop_map(|(round, peer, chunk)| Event::ChunkStalled {
            round,
            peer,
            chunk
        }),
        (0u64..100, 0u32..64, 0u64..32).prop_map(|(round, peer, chunk)| Event::ChunkDropped {
            round,
            peer,
            chunk
        }),
    ]
}

proptest! {
    #[test]
    fn registry_sample_is_a_fold_over_the_journal(
        events in proptest::collection::vec(event(), 0..200),
    ) {
        let mut journal = Journal::new(events.len().max(1));
        let mut registry = Registry::new();
        for e in &events {
            journal.push(*e);
            registry.record_event(e);
        }
        prop_assert_eq!(journal.dropped(), 0, "capacity covers the stream");

        let scrape = registry.sample(0);
        for kind in EventKind::ALL {
            let folded = journal.iter().filter(|e| e.kind() == kind).count() as u64;
            prop_assert_eq!(
                scrape.counter(&format!("events.{}", kind.name())),
                folded,
                "kind {}",
                kind.name()
            );
        }
        // The journal's own rollup must agree with the same fold.
        for (kind, count) in journal.counts_by_kind() {
            let folded = journal.iter().filter(|e| e.kind() == kind).count() as u64;
            prop_assert_eq!(count, folded, "counts_by_kind {}", kind.name());
        }
    }

    #[test]
    fn a_bounded_journal_never_undercounts_the_registry(
        events in proptest::collection::vec(event(), 1..200),
        capacity in 1usize..64,
    ) {
        // With a ring smaller than the stream, the registry keeps exact
        // totals while the journal keeps the newest `capacity` events
        // and reports the overflow in `dropped()`.
        let mut journal = Journal::new(capacity);
        let mut registry = Registry::new();
        for e in &events {
            journal.push(*e);
            registry.record_event(e);
        }
        let scrape = registry.sample(0);
        let registry_total: u64 = EventKind::ALL
            .into_iter()
            .map(|kind| scrape.counter(&format!("events.{}", kind.name())))
            .sum();
        prop_assert_eq!(registry_total, events.len() as u64);
        prop_assert_eq!(journal.len() as u64 + journal.dropped(), events.len() as u64);
    }
}
