//! The unified event taxonomy: one enum for everything the simulator
//! can tell the telemetry pipeline.
//!
//! Before this crate existed the repo had three disconnected event
//! surfaces (structural trace events, metric counters, ad-hoc engine
//! counters). [`Event`] subsumes the structural events and adds the
//! protocol-level ones — oracle contacts, retry backoff, fault
//! detection, content delivery — so a single journal tells the whole
//! story of a run.
//!
//! Events refer to peers by their raw `u32` id (and to the source via
//! [`Node::Source`]) so this crate stays below `lagover-core` in the
//! dependency order.

use std::fmt;

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// A dissemination-tree member as the journal sees it: the source, or a
/// peer by raw id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// The content source (root of every tree).
    Source,
    /// A peer, by id.
    Peer(u32),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Source => f.write_str("source"),
            Node::Peer(id) => write!(f, "peer {id}"),
        }
    }
}

impl ToJson for Node {
    fn to_json(&self) -> Json {
        match self {
            Node::Source => Json::Str("source".into()),
            Node::Peer(id) => Json::U64(u64::from(*id)),
        }
    }
}

impl FromJson for Node {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) if s == "source" => Ok(Node::Source),
            _ => Ok(Node::Peer(u32::from_json(value)?)),
        }
    }
}

/// Why a peer lost its parent.
///
/// Lives here (rather than in `lagover-core`, where it originated) so
/// the journal can record detaches without depending on the engine;
/// `lagover_core::trace` re-exports it for existing consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetachCause {
    /// The maintenance rule fired (`DelayAt > l` while rooted).
    Maintenance,
    /// Displaced by another peer's reconfiguration.
    Displaced,
    /// Discarded by its own parent to make room during a swap.
    Discarded,
    /// The peer (or its parent) churned offline.
    Churn,
    /// A crash-stop failure was detected after `detection_timeout`
    /// silent rounds (either a child giving up on a dead parent, or the
    /// engine reclaiming a detected crash victim's remaining edges).
    Failure,
}

impl DetachCause {
    /// Every cause, in a fixed order (used by report rollups).
    pub const ALL: [DetachCause; 5] = [
        DetachCause::Maintenance,
        DetachCause::Displaced,
        DetachCause::Discarded,
        DetachCause::Churn,
        DetachCause::Failure,
    ];

    /// Stable lower-case name (also the JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            DetachCause::Maintenance => "maintenance",
            DetachCause::Displaced => "displaced",
            DetachCause::Discarded => "discarded",
            DetachCause::Churn => "churn",
            DetachCause::Failure => "failure",
        }
    }

    /// Parses [`DetachCause::name`] back.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        DetachCause::ALL
            .into_iter()
            .find(|c| c.name() == text)
            .ok_or_else(|| JsonError(format!("unknown detach cause {text:?}")))
    }
}

impl fmt::Display for DetachCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for DetachCause {
    fn to_json(&self) -> Json {
        Json::Str(self.name().into())
    }
}

impl FromJson for DetachCause {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        DetachCause::parse(&String::from_json(value)?)
    }
}

/// What a peer's local self-stabilization check found wrong with its
/// cached chain state (the detection taxonomy of the `stabilize` rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InconsistencyCause {
    /// The peer's parent pointer named the peer itself.
    SelfParent,
    /// Walking the parent chain revisited the peer (or exceeded the
    /// population bound) — a parent cycle.
    Cycle,
    /// The recorded parent does not list the peer as a child.
    BrokenBacklink,
    /// The cached `root`/`hops` disagree with the parent's reply.
    CacheMismatch,
    /// A parentless peer still carried a rooted (or foreign) cached
    /// [`ChainRoot`] entry.
    StaleRoot,
    /// The peer served more children than its advertised fanout.
    FanoutOverflow,
    /// A child entry whose own parent pointer names someone else.
    ForeignChild,
}

impl InconsistencyCause {
    /// Every cause, in a fixed order (used by report rollups).
    pub const ALL: [InconsistencyCause; 7] = [
        InconsistencyCause::SelfParent,
        InconsistencyCause::Cycle,
        InconsistencyCause::BrokenBacklink,
        InconsistencyCause::CacheMismatch,
        InconsistencyCause::StaleRoot,
        InconsistencyCause::FanoutOverflow,
        InconsistencyCause::ForeignChild,
    ];

    /// Stable lower-case name (also the JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            InconsistencyCause::SelfParent => "self_parent",
            InconsistencyCause::Cycle => "cycle",
            InconsistencyCause::BrokenBacklink => "broken_backlink",
            InconsistencyCause::CacheMismatch => "cache_mismatch",
            InconsistencyCause::StaleRoot => "stale_root",
            InconsistencyCause::FanoutOverflow => "fanout_overflow",
            InconsistencyCause::ForeignChild => "foreign_child",
        }
    }

    /// Parses [`InconsistencyCause::name`] back.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        InconsistencyCause::ALL
            .into_iter()
            .find(|c| c.name() == text)
            .ok_or_else(|| JsonError(format!("unknown inconsistency cause {text:?}")))
    }
}

impl fmt::Display for InconsistencyCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for InconsistencyCause {
    fn to_json(&self) -> Json {
        Json::Str(self.name().into())
    }
}

impl FromJson for InconsistencyCause {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        InconsistencyCause::parse(&String::from_json(value)?)
    }
}

/// How a detected inconsistency was repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairKind {
    /// The corrupt parent link was severed (re-attachment follows via
    /// the normal construction ladder).
    Detach,
    /// The cached `root`/`hops` were rewritten from the parent's truth.
    CacheRewrite,
    /// A foreign or overflow child entry was evicted.
    ChildEvict,
    /// A forged fanout advertisement was restored from the population.
    FanoutRestore,
    /// Edges a corruption re-granted to a detected corpse were
    /// reclaimed.
    Reclaim,
}

impl RepairKind {
    /// Every kind, in a fixed order (used by report rollups).
    pub const ALL: [RepairKind; 5] = [
        RepairKind::Detach,
        RepairKind::CacheRewrite,
        RepairKind::ChildEvict,
        RepairKind::FanoutRestore,
        RepairKind::Reclaim,
    ];

    /// Stable lower-case name (also the JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            RepairKind::Detach => "detach",
            RepairKind::CacheRewrite => "cache_rewrite",
            RepairKind::ChildEvict => "child_evict",
            RepairKind::FanoutRestore => "fanout_restore",
            RepairKind::Reclaim => "reclaim",
        }
    }

    /// Parses [`RepairKind::name`] back.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        RepairKind::ALL
            .into_iter()
            .find(|c| c.name() == text)
            .ok_or_else(|| JsonError(format!("unknown repair kind {text:?}")))
    }
}

impl fmt::Display for RepairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for RepairKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().into())
    }
}

impl FromJson for RepairKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        RepairKind::parse(&String::from_json(value)?)
    }
}

/// The kind of an [`Event`], for counting and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// [`Event::Attach`].
    Attach,
    /// [`Event::Detach`].
    Detach,
    /// [`Event::OracleHit`].
    OracleHit,
    /// [`Event::OracleMiss`].
    OracleMiss,
    /// [`Event::OracleOutage`].
    OracleOutage,
    /// [`Event::SourceContact`].
    SourceContact,
    /// [`Event::Backoff`].
    Backoff,
    /// [`Event::MessageLost`].
    MessageLost,
    /// [`Event::Crash`].
    Crash,
    /// [`Event::FaultDetected`].
    FaultDetected,
    /// [`Event::Delivery`].
    Delivery,
    /// [`Event::InconsistencyDetected`].
    InconsistencyDetected,
    /// [`Event::RepairAction`].
    RepairAction,
    /// [`Event::ChunkStalled`].
    ChunkStalled,
    /// [`Event::ChunkDropped`].
    ChunkDropped,
}

impl EventKind {
    /// Every kind, in the fixed order the registry enumerates counters.
    pub const ALL: [EventKind; 15] = [
        EventKind::Attach,
        EventKind::Detach,
        EventKind::OracleHit,
        EventKind::OracleMiss,
        EventKind::OracleOutage,
        EventKind::SourceContact,
        EventKind::Backoff,
        EventKind::MessageLost,
        EventKind::Crash,
        EventKind::FaultDetected,
        EventKind::Delivery,
        EventKind::InconsistencyDetected,
        EventKind::RepairAction,
        EventKind::ChunkStalled,
        EventKind::ChunkDropped,
    ];

    /// Stable snake-case name (also the JSON `"type"` tag).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Attach => "attach",
            EventKind::Detach => "detach",
            EventKind::OracleHit => "oracle_hit",
            EventKind::OracleMiss => "oracle_miss",
            EventKind::OracleOutage => "oracle_outage",
            EventKind::SourceContact => "source_contact",
            EventKind::Backoff => "backoff",
            EventKind::MessageLost => "message_lost",
            EventKind::Crash => "crash",
            EventKind::FaultDetected => "fault_detected",
            EventKind::Delivery => "delivery",
            EventKind::InconsistencyDetected => "inconsistency_detected",
            EventKind::RepairAction => "repair_action",
            EventKind::ChunkStalled => "chunk_stalled",
            EventKind::ChunkDropped => "chunk_dropped",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observable occurrence in a run, stamped with its round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// `child` gained `parent`.
    Attach {
        /// Round of the event.
        round: u64,
        /// The new child.
        child: u32,
        /// Its new parent.
        parent: Node,
    },
    /// `child` lost `parent`.
    Detach {
        /// Round of the event.
        round: u64,
        /// The detached peer.
        child: u32,
        /// The parent it lost.
        parent: Node,
        /// Why.
        cause: DetachCause,
    },
    /// An oracle query returned candidate `target`.
    OracleHit {
        /// Round of the query.
        round: u64,
        /// The querying peer.
        peer: u32,
        /// The candidate returned.
        target: u32,
    },
    /// An oracle query found no usable candidate (the peer waits).
    OracleMiss {
        /// Round of the query.
        round: u64,
        /// The querying peer.
        peer: u32,
    },
    /// An oracle query fell into a blackout window and went unanswered.
    OracleOutage {
        /// Round of the query.
        round: u64,
        /// The querying peer.
        peer: u32,
    },
    /// A parent-less peer contacted the source directly (timeout
    /// fallback or referral).
    SourceContact {
        /// Round of the contact.
        round: u64,
        /// The contacting peer.
        peer: u32,
    },
    /// The peer sat out one round of its retry backoff.
    Backoff {
        /// Round spent waiting.
        round: u64,
        /// The waiting peer.
        peer: u32,
        /// Rounds still to wait after this one.
        remaining: u32,
    },
    /// The peer's selected interaction was lost in flight.
    MessageLost {
        /// Round of the loss.
        round: u64,
        /// The sending peer.
        peer: u32,
    },
    /// A crash-stop failure was injected.
    Crash {
        /// Round of the crash.
        round: u64,
        /// The victim.
        peer: u32,
    },
    /// `peer` declared its parent crashed after `detection_timeout`
    /// silent rounds.
    FaultDetected {
        /// Round of the detection.
        round: u64,
        /// The detecting child.
        peer: u32,
        /// The parent it declared dead.
        parent: u32,
    },
    /// One content item reached `peer`.
    Delivery {
        /// Round of the receipt.
        round: u64,
        /// The consumer.
        peer: u32,
        /// The consumer's tree depth at delivery time.
        depth: u32,
        /// Stream chunk id, when the item is one chunk of a striped
        /// stream (`None` for single-item feed deliveries).
        chunk: Option<u64>,
    },
    /// `peer`'s self-stabilization check found its cached chain state
    /// inconsistent with its neighbours.
    InconsistencyDetected {
        /// Round of the detection.
        round: u64,
        /// The detecting peer.
        peer: u32,
        /// What was wrong.
        cause: InconsistencyCause,
    },
    /// `peer` repaired a detected inconsistency.
    RepairAction {
        /// Round of the repair.
        round: u64,
        /// The repairing peer.
        peer: u32,
        /// How it was repaired.
        action: RepairKind,
    },
    /// A stream chunk owed to `peer` was deferred this round because
    /// its parent edge's in-flight window (or the parent's upload
    /// budget) was exhausted — backpressure, retried next round.
    ChunkStalled {
        /// Round of the stall.
        round: u64,
        /// The waiting consumer.
        peer: u32,
        /// The deferred chunk.
        chunk: u64,
    },
    /// A stream chunk owed to `peer` outlived its retry TTL and was
    /// abandoned — the consumer permanently misses the chunk.
    ChunkDropped {
        /// Round of the drop.
        round: u64,
        /// The consumer that misses the chunk.
        peer: u32,
        /// The abandoned chunk.
        chunk: u64,
    },
}

impl Event {
    /// The round the event happened in.
    pub fn round(&self) -> u64 {
        match *self {
            Event::Attach { round, .. }
            | Event::Detach { round, .. }
            | Event::OracleHit { round, .. }
            | Event::OracleMiss { round, .. }
            | Event::OracleOutage { round, .. }
            | Event::SourceContact { round, .. }
            | Event::Backoff { round, .. }
            | Event::MessageLost { round, .. }
            | Event::Crash { round, .. }
            | Event::FaultDetected { round, .. }
            | Event::Delivery { round, .. }
            | Event::InconsistencyDetected { round, .. }
            | Event::RepairAction { round, .. }
            | Event::ChunkStalled { round, .. }
            | Event::ChunkDropped { round, .. } => round,
        }
    }

    /// The peer the event is about (the child for structural events).
    pub fn peer(&self) -> u32 {
        match *self {
            Event::Attach { child, .. } | Event::Detach { child, .. } => child,
            Event::OracleHit { peer, .. }
            | Event::OracleMiss { peer, .. }
            | Event::OracleOutage { peer, .. }
            | Event::SourceContact { peer, .. }
            | Event::Backoff { peer, .. }
            | Event::MessageLost { peer, .. }
            | Event::Crash { peer, .. }
            | Event::FaultDetected { peer, .. }
            | Event::Delivery { peer, .. }
            | Event::InconsistencyDetected { peer, .. }
            | Event::RepairAction { peer, .. }
            | Event::ChunkStalled { peer, .. }
            | Event::ChunkDropped { peer, .. } => peer,
        }
    }

    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Attach { .. } => EventKind::Attach,
            Event::Detach { .. } => EventKind::Detach,
            Event::OracleHit { .. } => EventKind::OracleHit,
            Event::OracleMiss { .. } => EventKind::OracleMiss,
            Event::OracleOutage { .. } => EventKind::OracleOutage,
            Event::SourceContact { .. } => EventKind::SourceContact,
            Event::Backoff { .. } => EventKind::Backoff,
            Event::MessageLost { .. } => EventKind::MessageLost,
            Event::Crash { .. } => EventKind::Crash,
            Event::FaultDetected { .. } => EventKind::FaultDetected,
            Event::Delivery { .. } => EventKind::Delivery,
            Event::InconsistencyDetected { .. } => EventKind::InconsistencyDetected,
            Event::RepairAction { .. } => EventKind::RepairAction,
            Event::ChunkStalled { .. } => EventKind::ChunkStalled,
            Event::ChunkDropped { .. } => EventKind::ChunkDropped,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Attach {
                round,
                child,
                parent,
            } => write!(f, "r{round}: peer {child} <- {parent}"),
            Event::Detach {
                round,
                child,
                parent,
                cause,
            } => write!(f, "r{round}: peer {child} !<- {parent} ({cause})"),
            Event::OracleHit {
                round,
                peer,
                target,
            } => write!(f, "r{round}: peer {peer} oracle -> peer {target}"),
            Event::OracleMiss { round, peer } => write!(f, "r{round}: peer {peer} oracle miss"),
            Event::OracleOutage { round, peer } => {
                write!(f, "r{round}: peer {peer} oracle outage")
            }
            Event::SourceContact { round, peer } => {
                write!(f, "r{round}: peer {peer} contacts source")
            }
            Event::Backoff {
                round,
                peer,
                remaining,
            } => write!(f, "r{round}: peer {peer} backs off ({remaining} left)"),
            Event::MessageLost { round, peer } => {
                write!(f, "r{round}: peer {peer} message lost")
            }
            Event::Crash { round, peer } => write!(f, "r{round}: peer {peer} crashed"),
            Event::FaultDetected {
                round,
                peer,
                parent,
            } => write!(f, "r{round}: peer {peer} detects crash of peer {parent}"),
            Event::Delivery {
                round,
                peer,
                depth,
                chunk,
            } => match chunk {
                None => write!(f, "r{round}: peer {peer} delivered at depth {depth}"),
                Some(c) => write!(
                    f,
                    "r{round}: peer {peer} delivered chunk {c} at depth {depth}"
                ),
            },
            Event::InconsistencyDetected { round, peer, cause } => {
                write!(f, "r{round}: peer {peer} inconsistent ({cause})")
            }
            Event::RepairAction {
                round,
                peer,
                action,
            } => write!(f, "r{round}: peer {peer} repairs ({action})"),
            Event::ChunkStalled { round, peer, chunk } => {
                write!(f, "r{round}: peer {peer} chunk {chunk} stalled")
            }
            Event::ChunkDropped { round, peer, chunk } => {
                write!(f, "r{round}: peer {peer} chunk {chunk} dropped")
            }
        }
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let tag = ("type", Json::Str(self.kind().name().into()));
        match *self {
            Event::Attach {
                round,
                child,
                parent,
            } => object(vec![
                tag,
                ("round", round.to_json()),
                ("child", child.to_json()),
                ("parent", parent.to_json()),
            ]),
            Event::Detach {
                round,
                child,
                parent,
                cause,
            } => object(vec![
                tag,
                ("round", round.to_json()),
                ("child", child.to_json()),
                ("parent", parent.to_json()),
                ("cause", cause.to_json()),
            ]),
            Event::OracleHit {
                round,
                peer,
                target,
            } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
                ("target", target.to_json()),
            ]),
            Event::OracleMiss { round, peer }
            | Event::OracleOutage { round, peer }
            | Event::SourceContact { round, peer }
            | Event::MessageLost { round, peer }
            | Event::Crash { round, peer } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
            ]),
            Event::Backoff {
                round,
                peer,
                remaining,
            } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
                ("remaining", remaining.to_json()),
            ]),
            Event::FaultDetected {
                round,
                peer,
                parent,
            } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
                ("parent", parent.to_json()),
            ]),
            Event::Delivery {
                round,
                peer,
                depth,
                chunk,
            } => {
                // `chunk` is serialized only when present so single-item
                // feed deliveries keep their pre-streaming byte layout.
                let mut fields = vec![
                    tag,
                    ("round", round.to_json()),
                    ("peer", peer.to_json()),
                    ("depth", depth.to_json()),
                ];
                if let Some(c) = chunk {
                    fields.push(("chunk", c.to_json()));
                }
                object(fields)
            }
            Event::InconsistencyDetected { round, peer, cause } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
                ("cause", cause.to_json()),
            ]),
            Event::RepairAction {
                round,
                peer,
                action,
            } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
                ("action", action.to_json()),
            ]),
            Event::ChunkStalled { round, peer, chunk }
            | Event::ChunkDropped { round, peer, chunk } => object(vec![
                tag,
                ("round", round.to_json()),
                ("peer", peer.to_json()),
                ("chunk", chunk.to_json()),
            ]),
        }
    }
}

impl FromJson for Event {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let tag = String::from_json(value.get("type")?)?;
        let round = u64::from_json(value.get("round")?)?;
        let peer = |key: &str| -> Result<u32, JsonError> { u32::from_json(value.get(key)?) };
        Ok(match tag.as_str() {
            "attach" => Event::Attach {
                round,
                child: peer("child")?,
                parent: Node::from_json(value.get("parent")?)?,
            },
            "detach" => Event::Detach {
                round,
                child: peer("child")?,
                parent: Node::from_json(value.get("parent")?)?,
                cause: DetachCause::from_json(value.get("cause")?)?,
            },
            "oracle_hit" => Event::OracleHit {
                round,
                peer: peer("peer")?,
                target: peer("target")?,
            },
            "oracle_miss" => Event::OracleMiss {
                round,
                peer: peer("peer")?,
            },
            "oracle_outage" => Event::OracleOutage {
                round,
                peer: peer("peer")?,
            },
            "source_contact" => Event::SourceContact {
                round,
                peer: peer("peer")?,
            },
            "backoff" => Event::Backoff {
                round,
                peer: peer("peer")?,
                remaining: peer("remaining")?,
            },
            "message_lost" => Event::MessageLost {
                round,
                peer: peer("peer")?,
            },
            "crash" => Event::Crash {
                round,
                peer: peer("peer")?,
            },
            "fault_detected" => Event::FaultDetected {
                round,
                peer: peer("peer")?,
                parent: peer("parent")?,
            },
            "delivery" => Event::Delivery {
                round,
                peer: peer("peer")?,
                depth: peer("depth")?,
                chunk: match value.get_opt("chunk")? {
                    Some(v) => Some(u64::from_json(v)?),
                    None => None,
                },
            },
            "inconsistency_detected" => Event::InconsistencyDetected {
                round,
                peer: peer("peer")?,
                cause: InconsistencyCause::from_json(value.get("cause")?)?,
            },
            "repair_action" => Event::RepairAction {
                round,
                peer: peer("peer")?,
                action: RepairKind::from_json(value.get("action")?)?,
            },
            "chunk_stalled" => Event::ChunkStalled {
                round,
                peer: peer("peer")?,
                chunk: u64::from_json(value.get("chunk")?)?,
            },
            "chunk_dropped" => Event::ChunkDropped {
                round,
                peer: peer("peer")?,
                chunk: u64::from_json(value.get("chunk")?)?,
            },
            other => return Err(JsonError(format!("unknown event type {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: Event) {
        let json = lagover_jsonio::to_string(&event);
        let back: Event = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, event, "{json}");
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        let samples = [
            Event::Attach {
                round: 1,
                child: 2,
                parent: Node::Source,
            },
            Event::Detach {
                round: 2,
                child: 3,
                parent: Node::Peer(4),
                cause: DetachCause::Displaced,
            },
            Event::OracleHit {
                round: 3,
                peer: 5,
                target: 6,
            },
            Event::OracleMiss { round: 4, peer: 7 },
            Event::OracleOutage { round: 5, peer: 8 },
            Event::SourceContact { round: 6, peer: 9 },
            Event::Backoff {
                round: 7,
                peer: 10,
                remaining: 3,
            },
            Event::MessageLost { round: 8, peer: 11 },
            Event::Crash { round: 9, peer: 12 },
            Event::FaultDetected {
                round: 10,
                peer: 13,
                parent: 14,
            },
            Event::Delivery {
                round: 11,
                peer: 15,
                depth: 2,
                chunk: None,
            },
            Event::InconsistencyDetected {
                round: 12,
                peer: 16,
                cause: InconsistencyCause::Cycle,
            },
            Event::RepairAction {
                round: 13,
                peer: 17,
                action: RepairKind::CacheRewrite,
            },
            Event::ChunkStalled {
                round: 14,
                peer: 18,
                chunk: 41,
            },
            Event::ChunkDropped {
                round: 15,
                peer: 19,
                chunk: 42,
            },
        ];
        assert_eq!(samples.len(), EventKind::ALL.len());
        for (event, kind) in samples.into_iter().zip(EventKind::ALL) {
            assert_eq!(event.kind(), kind, "sample order matches ALL");
            round_trip(event);
        }
    }

    #[test]
    fn display_formats() {
        let attach = Event::Attach {
            round: 3,
            child: 7,
            parent: Node::Source,
        };
        assert_eq!(attach.to_string(), "r3: peer 7 <- source");
        let detach = Event::Detach {
            round: 4,
            child: 2,
            parent: Node::Peer(9),
            cause: DetachCause::Displaced,
        };
        assert_eq!(detach.to_string(), "r4: peer 2 !<- peer 9 (displaced)");
        let hit = Event::OracleHit {
            round: 5,
            peer: 1,
            target: 8,
        };
        assert_eq!(hit.to_string(), "r5: peer 1 oracle -> peer 8");
    }

    #[test]
    fn accessors_agree_with_payload() {
        let e = Event::FaultDetected {
            round: 12,
            peer: 3,
            parent: 4,
        };
        assert_eq!(e.round(), 12);
        assert_eq!(e.peer(), 3);
        assert_eq!(e.kind(), EventKind::FaultDetected);
        assert_eq!(e.kind().name(), "fault_detected");
    }

    #[test]
    fn delivery_chunk_field_is_optional_and_round_trips() {
        // A chunk-less delivery serializes exactly as it did before the
        // streaming layer existed — old journals stay parseable and
        // byte-stable.
        let plain = Event::Delivery {
            round: 3,
            peer: 7,
            depth: 2,
            chunk: None,
        };
        let json = lagover_jsonio::to_string(&plain);
        assert_eq!(
            json,
            "{\"type\":\"delivery\",\"round\":3,\"peer\":7,\"depth\":2}"
        );
        round_trip(plain);

        let chunked = Event::Delivery {
            round: 3,
            peer: 7,
            depth: 2,
            chunk: Some(9),
        };
        let json = lagover_jsonio::to_string(&chunked);
        assert!(json.contains("\"chunk\":9"), "{json}");
        round_trip(chunked);
        assert_eq!(
            chunked.to_string(),
            "r3: peer 7 delivered chunk 9 at depth 2"
        );
        assert_eq!(
            Event::ChunkStalled {
                round: 4,
                peer: 1,
                chunk: 5
            }
            .to_string(),
            "r4: peer 1 chunk 5 stalled"
        );
        assert_eq!(
            Event::ChunkDropped {
                round: 4,
                peer: 1,
                chunk: 5
            }
            .to_string(),
            "r4: peer 1 chunk 5 dropped"
        );
    }

    #[test]
    fn detach_cause_parse_rejects_unknown() {
        assert!(DetachCause::parse("maintenance").is_ok());
        assert!(DetachCause::parse("gravity").is_err());
    }

    #[test]
    fn stabilization_taxonomies_round_trip() {
        for cause in InconsistencyCause::ALL {
            assert_eq!(InconsistencyCause::parse(cause.name()).unwrap(), cause);
            assert_eq!(cause.to_string(), cause.name());
        }
        for action in RepairKind::ALL {
            assert_eq!(RepairKind::parse(action.name()).unwrap(), action);
            assert_eq!(action.to_string(), action.name());
        }
        assert!(InconsistencyCause::parse("entropy").is_err());
        assert!(RepairKind::parse("reboot").is_err());
        let e = Event::InconsistencyDetected {
            round: 9,
            peer: 4,
            cause: InconsistencyCause::SelfParent,
        };
        assert_eq!(e.to_string(), "r9: peer 4 inconsistent (self_parent)");
        let r = Event::RepairAction {
            round: 9,
            peer: 4,
            action: RepairKind::Detach,
        };
        assert_eq!(r.to_string(), "r9: peer 4 repairs (detach)");
    }
}
