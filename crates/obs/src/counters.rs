//! The engine's cumulative event counters.
//!
//! Moved here from `lagover-core` (which re-exports it unchanged) so
//! the whole counter surface lives behind the observability facade:
//! the `xtask lint` `obs-bypass` rule keeps new ad-hoc counter structs
//! from growing back inside the engine.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// Event counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Pairwise interactions performed.
    pub interactions: u64,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// Oracle queries that found no candidate (the peer waited).
    pub oracle_misses: u64,
    /// Successful attach operations.
    pub attaches: u64,
    /// Detach operations (all causes).
    pub detaches: u64,
    /// Displacement / replace-and-adopt reconfigurations.
    pub displacements: u64,
    /// Direct contacts with the source (timeout or referral).
    pub source_contacts: u64,
    /// Detaches triggered by the maintenance rule.
    pub maintenance_detaches: u64,
    /// Peers lost to churn over the run.
    pub churn_departures: u64,
    /// Peers (re)joining over the run.
    pub churn_arrivals: u64,
    /// Crash-stop failures injected over the run.
    pub crashes: u64,
    /// Children that declared their parent crashed after
    /// `detection_timeout` silent rounds.
    pub failure_detections: u64,
    /// Interactions lost in flight by the fault plan.
    pub messages_lost: u64,
    /// Oracle queries that hit a blackout window.
    pub oracle_outages: u64,
    /// Own-actions spent waiting out a retry backoff.
    pub backoff_rounds: u64,
    /// Snapshot corruptions applied (one per mutated peer state).
    pub corruptions_injected: u64,
    /// Local self-stabilization checks that found cached chain state
    /// inconsistent with a neighbour.
    pub inconsistencies_detected: u64,
    /// Repairs performed by the stabilize rule.
    pub repair_actions: u64,
}

impl EngineCounters {
    /// Every counter as a `(name, value)` pair, in the serialization
    /// order — the registry's absorption path and the report renderer
    /// both consume this.
    pub fn to_named(&self) -> [(&'static str, u64); 18] {
        [
            ("interactions", self.interactions),
            ("oracle_queries", self.oracle_queries),
            ("oracle_misses", self.oracle_misses),
            ("attaches", self.attaches),
            ("detaches", self.detaches),
            ("displacements", self.displacements),
            ("source_contacts", self.source_contacts),
            ("maintenance_detaches", self.maintenance_detaches),
            ("churn_departures", self.churn_departures),
            ("churn_arrivals", self.churn_arrivals),
            ("crashes", self.crashes),
            ("failure_detections", self.failure_detections),
            ("messages_lost", self.messages_lost),
            ("oracle_outages", self.oracle_outages),
            ("backoff_rounds", self.backoff_rounds),
            ("corruptions_injected", self.corruptions_injected),
            ("inconsistencies_detected", self.inconsistencies_detected),
            ("repair_actions", self.repair_actions),
        ]
    }

    /// Field-wise sum (used when aggregating multi-run reports).
    pub fn merge(&mut self, other: &EngineCounters) {
        self.interactions += other.interactions;
        self.oracle_queries += other.oracle_queries;
        self.oracle_misses += other.oracle_misses;
        self.attaches += other.attaches;
        self.detaches += other.detaches;
        self.displacements += other.displacements;
        self.source_contacts += other.source_contacts;
        self.maintenance_detaches += other.maintenance_detaches;
        self.churn_departures += other.churn_departures;
        self.churn_arrivals += other.churn_arrivals;
        self.crashes += other.crashes;
        self.failure_detections += other.failure_detections;
        self.messages_lost += other.messages_lost;
        self.oracle_outages += other.oracle_outages;
        self.backoff_rounds += other.backoff_rounds;
        self.corruptions_injected += other.corruptions_injected;
        self.inconsistencies_detected += other.inconsistencies_detected;
        self.repair_actions += other.repair_actions;
    }
}

impl ToJson for EngineCounters {
    fn to_json(&self) -> Json {
        object(
            self.to_named()
                .into_iter()
                .map(|(name, value)| (name, value.to_json()))
                .collect(),
        )
    }
}

impl FromJson for EngineCounters {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(EngineCounters {
            interactions: u64::from_json(value.get("interactions")?)?,
            oracle_queries: u64::from_json(value.get("oracle_queries")?)?,
            oracle_misses: u64::from_json(value.get("oracle_misses")?)?,
            attaches: u64::from_json(value.get("attaches")?)?,
            detaches: u64::from_json(value.get("detaches")?)?,
            displacements: u64::from_json(value.get("displacements")?)?,
            source_contacts: u64::from_json(value.get("source_contacts")?)?,
            maintenance_detaches: u64::from_json(value.get("maintenance_detaches")?)?,
            churn_departures: u64::from_json(value.get("churn_departures")?)?,
            churn_arrivals: u64::from_json(value.get("churn_arrivals")?)?,
            // Absent in counters serialized before the fault subsystem.
            crashes: match value.get_opt("crashes")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            failure_detections: match value.get_opt("failure_detections")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            messages_lost: match value.get_opt("messages_lost")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            oracle_outages: match value.get_opt("oracle_outages")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            backoff_rounds: match value.get_opt("backoff_rounds")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            // Absent in counters serialized before the stabilization
            // subsystem.
            corruptions_injected: match value.get_opt("corruptions_injected")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            inconsistencies_detected: match value.get_opt("inconsistencies_detected")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            repair_actions: match value.get_opt("repair_actions")? {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_view_matches_serialization_order() {
        let counters = EngineCounters {
            interactions: 1,
            oracle_queries: 2,
            ..Default::default()
        };
        let json = counters.to_json();
        for (name, value) in counters.to_named() {
            assert_eq!(
                u64::from_json(json.get(name).expect("key present")).unwrap(),
                value
            );
        }
    }

    #[test]
    fn merge_is_field_wise_addition() {
        let mut a = EngineCounters {
            attaches: 3,
            crashes: 1,
            ..Default::default()
        };
        let b = EngineCounters {
            attaches: 4,
            backoff_rounds: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.attaches, 7);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.backoff_rounds, 2);
    }

    #[test]
    fn legacy_json_without_fault_fields_parses() {
        let json = r#"{"interactions":1,"oracle_queries":2,"oracle_misses":0,
            "attaches":1,"detaches":0,"displacements":0,"source_contacts":0,
            "maintenance_detaches":0,"churn_departures":0,"churn_arrivals":0}"#;
        let counters: EngineCounters = lagover_jsonio::from_str(json).expect("parses");
        assert_eq!(counters.interactions, 1);
        assert_eq!(counters.crashes, 0);
    }
}
