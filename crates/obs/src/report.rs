//! The observability report: one document tying the journal, the
//! registry scrapes, the health timeline, and the cost profile
//! together.
//!
//! Reports are built per run and merged across seeds (`lagover obs
//! --runs R`); the merged report is what the CI `obs-report` job
//! byte-compares across thread counts, so everything here serializes
//! deterministically and `render` uses only fixed-width formatting.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

use crate::counters::EngineCounters;
use crate::health::HealthSample;
use crate::journal::Journal;
use crate::profiler::Profiler;
use crate::registry::Scrape;

/// Everything observed about one run (or, after [`ObsReport::merge`],
/// several runs of the same configuration).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// What was observed (e.g. `"fig2 n=200"`).
    pub label: String,
    /// Population size.
    pub peers: u64,
    /// Runs aggregated into this report.
    pub runs: u64,
    /// Seed of the first aggregated run.
    pub seed: u64,
    /// Rounds executed, summed over runs.
    pub rounds: u64,
    /// Runs that converged.
    pub converged: u64,
    /// Convergence round, summed over converged runs (divide by
    /// `converged` for the mean).
    pub converged_rounds: u64,
    /// Engine counters, summed over runs.
    pub counters: EngineCounters,
    /// Cost profile, phases summed over runs.
    pub profile: Profiler,
    /// Registry scrapes from the *first* run (a representative
    /// timeline; summing timelines across seeds has no meaning).
    pub scrapes: Vec<Scrape>,
    /// Health probe timeline from the first run.
    pub health: Vec<HealthSample>,
    /// Event journal from the first run, when journaling was enabled.
    pub journal: Option<Journal>,
}

impl ObsReport {
    /// Mean convergence round over the runs that converged.
    pub fn mean_converged_round(&self) -> Option<f64> {
        (self.converged > 0).then(|| self.converged_rounds as f64 / self.converged as f64)
    }

    /// Folds another run's report into this one. Counters, the
    /// profile, and convergence tallies are summed; the timeline
    /// (scrapes, health, journal) keeps the first run's view.
    pub fn merge(&mut self, other: &ObsReport) {
        self.runs += other.runs;
        self.rounds += other.rounds;
        self.converged += other.converged;
        self.converged_rounds += other.converged_rounds;
        self.counters.merge(&other.counters);
        self.profile.merge(&other.profile);
        if self.scrapes.is_empty() {
            self.scrapes = other.scrapes.clone();
        }
        if self.health.is_empty() {
            self.health = other.health.clone();
        }
        if self.journal.is_none() {
            self.journal = other.journal.clone();
        }
    }

    /// Renders the full text report: summary, counters, cost profile,
    /// health timeline, and the tail of the journal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("observability report: {}\n", self.label));
        out.push_str(&format!(
            "peers {} | runs {} | first seed {} | rounds {}\n",
            self.peers, self.runs, self.seed, self.rounds
        ));
        match self.mean_converged_round() {
            Some(mean) => out.push_str(&format!(
                "converged {}/{} runs, mean round {mean:.2}\n",
                self.converged, self.runs
            )),
            None => out.push_str(&format!("converged 0/{} runs\n", self.runs)),
        }

        out.push_str("\nengine counters (summed over runs)\n");
        for (name, value) in self.counters.to_named() {
            out.push_str(&format!("  {name:<22} {value:>10}\n"));
        }

        if !self.profile.phases().is_empty() {
            out.push_str("\ncost profile (work units, summed over runs)\n");
            for line in self.profile.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }

        if !self.health.is_empty() {
            out.push_str("\nhealth timeline (first run)\n");
            out.push_str("  ");
            out.push_str(&HealthSample::render_header());
            out.push('\n');
            for sample in &self.health {
                out.push_str("  ");
                out.push_str(&sample.render_row());
                out.push('\n');
            }
        }

        if let Some(journal) = &self.journal {
            out.push_str(&format!(
                "\njournal (first run): {} events retained, {} dropped\n",
                journal.len(),
                journal.dropped()
            ));
            for (kind, count) in journal.counts_by_kind() {
                if count > 0 {
                    out.push_str(&format!("  {:<16} {count:>10}\n", kind.name()));
                }
            }
            let tail: Vec<_> = journal.iter().collect();
            let shown = tail.len().min(JOURNAL_TAIL);
            if shown > 0 {
                out.push_str(&format!("  last {shown} events:\n"));
                for event in &tail[tail.len() - shown..] {
                    out.push_str(&format!("    {event}\n"));
                }
            }
        }
        out
    }
}

/// Journal tail length shown in the rendered report.
const JOURNAL_TAIL: usize = 12;

impl ToJson for ObsReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("label", self.label.to_json()),
            ("peers", self.peers.to_json()),
            ("runs", self.runs.to_json()),
            ("seed", self.seed.to_json()),
            ("rounds", self.rounds.to_json()),
            ("converged", self.converged.to_json()),
            ("converged_rounds", self.converged_rounds.to_json()),
            ("counters", self.counters.to_json()),
            ("profile", self.profile.to_json()),
            (
                "scrapes",
                Json::Array(self.scrapes.iter().map(ToJson::to_json).collect()),
            ),
            (
                "health",
                Json::Array(self.health.iter().map(ToJson::to_json).collect()),
            ),
        ];
        if let Some(journal) = &self.journal {
            fields.push(("journal", journal.to_json()));
        }
        object(fields)
    }
}

impl FromJson for ObsReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ObsReport {
            label: String::from_json(value.get("label")?)?,
            peers: u64::from_json(value.get("peers")?)?,
            runs: u64::from_json(value.get("runs")?)?,
            seed: u64::from_json(value.get("seed")?)?,
            rounds: u64::from_json(value.get("rounds")?)?,
            converged: u64::from_json(value.get("converged")?)?,
            converged_rounds: u64::from_json(value.get("converged_rounds")?)?,
            counters: EngineCounters::from_json(value.get("counters")?)?,
            profile: Profiler::from_json(value.get("profile")?)?,
            scrapes: Vec::from_json(value.get("scrapes")?)?,
            health: Vec::from_json(value.get("health")?)?,
            journal: match value.get_opt("journal")? {
                Some(v) => Some(Journal::from_json(v)?),
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Node};
    use crate::profiler::{wall_mark, Work};

    fn single_run_report(seed: u64, converged_at: Option<u64>) -> ObsReport {
        let mut journal = Journal::new(8);
        journal.push(Event::Attach {
            round: 0,
            child: 1,
            parent: Node::Source,
        });
        let mut profile = Profiler::new();
        profile.record(
            "construction",
            Work {
                actions: 5,
                ..Default::default()
            },
            wall_mark(),
        );
        ObsReport {
            label: "test".into(),
            peers: 4,
            runs: 1,
            seed,
            rounds: 10,
            converged: converged_at.is_some() as u64,
            converged_rounds: converged_at.unwrap_or(0),
            counters: EngineCounters {
                attaches: 1,
                ..Default::default()
            },
            profile,
            scrapes: Vec::new(),
            health: vec![HealthSample {
                round: 10,
                online: 4,
                ..Default::default()
            }],
            journal: Some(journal),
        }
    }

    #[test]
    fn merge_sums_tallies_and_keeps_first_timeline() {
        let mut merged = single_run_report(1, Some(6));
        merged.merge(&single_run_report(2, Some(8)));
        merged.merge(&single_run_report(3, None));
        assert_eq!(merged.runs, 3);
        assert_eq!(merged.rounds, 30);
        assert_eq!(merged.counters.attaches, 3);
        assert_eq!(merged.profile.total().actions, 15);
        assert_eq!(merged.mean_converged_round(), Some(7.0));
        assert_eq!(merged.health.len(), 1, "first run's timeline kept");
        assert_eq!(merged.seed, 1, "first seed kept");
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let report = single_run_report(9, Some(4));
        let json = lagover_jsonio::to_string_pretty(&report);
        let back: ObsReport = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, report);
        assert_eq!(lagover_jsonio::to_string_pretty(&back), json);
    }

    #[test]
    fn json_omits_journal_when_absent() {
        let mut report = single_run_report(9, None);
        report.journal = None;
        let json = lagover_jsonio::to_string(&report);
        assert!(!json.contains("\"journal\""));
        let back: ObsReport = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back.journal, None);
    }

    #[test]
    fn render_covers_every_section() {
        let report = single_run_report(7, Some(5));
        let text = report.render();
        assert!(text.contains("observability report: test"));
        assert!(text.contains("engine counters"));
        assert!(text.contains("cost profile"));
        assert!(text.contains("health timeline"));
        assert!(text.contains("journal (first run)"));
        assert!(text.contains("r0: peer 1 <- source"));
    }
}
