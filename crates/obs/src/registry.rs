//! The metrics registry: named counters, gauges, and histograms with a
//! per-round scrape.
//!
//! Absorbs the `lagover-sim` metric primitives (re-exported from the
//! crate root) and the engine's [`EngineCounters`] into one named,
//! insertion-ordered surface. Everything is `Vec`-backed — no hash
//! maps — so iteration order, and therefore every serialized scrape,
//! is deterministic.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use lagover_sim::Histogram;
use serde::{Deserialize, Serialize};

use crate::counters::EngineCounters;
use crate::event::Event;

/// Prefix for counters derived from journal events.
const EVENT_PREFIX: &str = "events.";
/// Prefix for counters absorbed from [`EngineCounters`].
const ENGINE_PREFIX: &str = "engine.";

/// A named, insertion-ordered metrics store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `by` to the counter `name`, creating it at zero first if
    /// needed.
    pub fn add(&mut self, name: &str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, value)) => *value += by,
            None => self.counters.push((name.to_string(), by)),
        }
    }

    /// Sets the counter `name` to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = value,
            None => self.counters.push((name.to_string(), value)),
        }
    }

    /// Current value of the counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = value,
            None => self.gauges.push((name.to_string(), value)),
        }
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram `name`, created empty on first use.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        if let Some(at) = self.histograms.iter().position(|h| h.name() == name) {
            return &mut self.histograms[at];
        }
        self.histograms.push(Histogram::new(name));
        self.histograms.last_mut().expect("just pushed")
    }

    /// The registered histograms, in insertion order.
    pub fn histograms(&self) -> &[Histogram] {
        &self.histograms
    }

    /// Counts one journal event into the `events.<kind>` counter. The
    /// pipeline calls this for every recorded event, so these counters
    /// equal a fold over the journal whenever the journal dropped
    /// nothing.
    pub fn record_event(&mut self, event: &Event) {
        // One allocation per *kind*, not per event: the counter name is
        // created on first sight and found by scan afterwards.
        let kind = event.kind().name();
        if let Some((_, value)) = self
            .counters
            .iter_mut()
            .find(|(n, _)| n.strip_prefix(EVENT_PREFIX) == Some(kind))
        {
            *value += 1;
            return;
        }
        self.counters.push((format!("{EVENT_PREFIX}{kind}"), 1));
    }

    /// Count of recorded events of `kind` (by [`crate::EventKind::name`]).
    pub fn event_count(&self, kind: &str) -> u64 {
        self.counter(&format!("{EVENT_PREFIX}{kind}"))
    }

    /// Absorbs the engine's cumulative counters as `engine.<field>`
    /// counters (absolute values, overwritten on every scrape).
    pub fn absorb_engine_counters(&mut self, counters: &EngineCounters) {
        for (name, value) in counters.to_named() {
            self.set_counter(&format!("{ENGINE_PREFIX}{name}"), value);
        }
    }

    /// Scrapes the current counter and gauge values, stamped with the
    /// round.
    pub fn sample(&self, round: u64) -> Scrape {
        Scrape {
            round,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        }
    }
}

/// One point-in-time scrape of the registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scrape {
    /// The round the scrape was taken at.
    pub round: u64,
    /// Counter values, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, in registration order.
    pub gauges: Vec<(String, f64)>,
}

impl Scrape {
    /// Value of the counter `name` in this scrape (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of the gauge `name` in this scrape.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The scrape as flat `(name, value)` pairs — the round stamp
    /// followed by every counter in registration order. Gauges are
    /// deliberately excluded: this is the exact-compare export surface
    /// the perf baseline commits, and only integer metrics diff
    /// byte-exactly across toolchains.
    pub fn to_named(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(1 + self.counters.len());
        out.push(("round".to_string(), self.round));
        out.extend(self.counters.iter().cloned());
        out
    }
}

fn pairs_to_json<V: ToJson>(pairs: &[(String, V)]) -> Json {
    Json::Object(
        pairs
            .iter()
            .map(|(name, value)| (name.clone(), value.to_json()))
            .collect(),
    )
}

fn pairs_from_json<V: FromJson>(value: &Json) -> Result<Vec<(String, V)>, JsonError> {
    match value {
        Json::Object(entries) => entries
            .iter()
            .map(|(name, v)| Ok((name.clone(), V::from_json(v)?)))
            .collect(),
        _ => Err(JsonError("expected an object of named values".into())),
    }
}

impl ToJson for Scrape {
    fn to_json(&self) -> Json {
        object(vec![
            ("round", self.round.to_json()),
            ("counters", pairs_to_json(&self.counters)),
            ("gauges", pairs_to_json(&self.gauges)),
        ])
    }
}

impl FromJson for Scrape {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Scrape {
            round: u64::from_json(value.get("round")?)?,
            counters: pairs_from_json(value.get("counters")?)?,
            gauges: pairs_from_json(value.get("gauges")?)?,
        })
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        object(vec![
            ("counters", pairs_to_json(&self.counters)),
            ("gauges", pairs_to_json(&self.gauges)),
            (
                "histograms",
                Json::Array(self.histograms.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Registry {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Registry {
            counters: pairs_from_json(value.get("counters")?)?,
            gauges: pairs_from_json(value.get("gauges")?)?,
            histograms: Vec::from_json(value.get("histograms")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Node;

    #[test]
    fn counters_accumulate_in_insertion_order() {
        let mut registry = Registry::new();
        registry.add("b", 2);
        registry.add("a", 1);
        registry.add("b", 3);
        assert_eq!(registry.counter("b"), 5);
        let scrape = registry.sample(7);
        assert_eq!(scrape.round, 7);
        assert_eq!(scrape.counters[0].0, "b", "insertion order kept");
        assert_eq!(scrape.counter("a"), 1);
        assert_eq!(scrape.counter("missing"), 0);
    }

    #[test]
    fn event_recording_counts_by_kind() {
        let mut registry = Registry::new();
        registry.record_event(&Event::Attach {
            round: 0,
            child: 1,
            parent: Node::Source,
        });
        registry.record_event(&Event::OracleMiss { round: 1, peer: 2 });
        registry.record_event(&Event::Attach {
            round: 1,
            child: 2,
            parent: Node::Peer(1),
        });
        assert_eq!(registry.event_count("attach"), 2);
        assert_eq!(registry.event_count("oracle_miss"), 1);
        assert_eq!(registry.event_count("crash"), 0);
    }

    #[test]
    fn engine_counters_absorb_as_absolute_values() {
        let mut registry = Registry::new();
        let mut counters = EngineCounters {
            attaches: 3,
            ..Default::default()
        };
        registry.absorb_engine_counters(&counters);
        assert_eq!(registry.counter("engine.attaches"), 3);
        counters.attaches = 10;
        registry.absorb_engine_counters(&counters);
        assert_eq!(registry.counter("engine.attaches"), 10, "set, not added");
    }

    #[test]
    fn gauges_and_histograms() {
        let mut registry = Registry::new();
        registry.set_gauge("satisfied_fraction", 0.5);
        registry.set_gauge("satisfied_fraction", 0.75);
        assert_eq!(registry.gauge("satisfied_fraction"), Some(0.75));
        registry.histogram_mut("depth").record(3);
        registry.histogram_mut("depth").record(1);
        assert_eq!(registry.histograms()[0].count(), 2);
        assert_eq!(registry.histograms().len(), 1, "found, not duplicated");
    }

    #[test]
    fn scrape_named_export_keeps_round_and_counter_order() {
        let mut registry = Registry::new();
        registry.add("events.attach", 4);
        registry.add("events.detach", 1);
        registry.set_gauge("orphans", 2.0);
        let named = registry.sample(12).to_named();
        assert_eq!(named[0], ("round".to_string(), 12));
        assert_eq!(named[1], ("events.attach".to_string(), 4));
        assert_eq!(named[2], ("events.detach".to_string(), 1));
        assert_eq!(named.len(), 3, "gauges stay out of the exact export");
    }

    #[test]
    fn scrape_json_round_trips() {
        let mut registry = Registry::new();
        registry.add("events.attach", 4);
        registry.set_gauge("orphans", 2.0);
        let scrape = registry.sample(12);
        let json = lagover_jsonio::to_string(&scrape);
        let back: Scrape = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, scrape);
        assert_eq!(lagover_jsonio::to_string(&back), json);
    }

    #[test]
    fn registry_json_round_trips() {
        let mut registry = Registry::new();
        registry.add("events.detach", 1);
        registry.set_gauge("stale", 0.0);
        registry.histogram_mut("depth").record(2);
        let json = lagover_jsonio::to_string(&registry);
        let back: Registry = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(lagover_jsonio::to_string(&back), json);
    }
}
