//! `lagover-obs`: deterministic observability for the LagOver
//! reproduction.
//!
//! One subsystem unifies what used to be scattered across the engine
//! and the experiment harness:
//!
//! - **[`Event`] / [`Journal`]** — a structured, bounded event journal
//!   covering the full taxonomy (attach/detach, oracle contacts,
//!   backoff, message loss, crashes, fault detection, feed delivery).
//! - **[`Registry`] / [`Scrape`]** — named counters, gauges, and
//!   histograms with per-round scrapes; absorbs [`EngineCounters`] and
//!   the `lagover-sim` metric primitives (re-exported below).
//! - **[`HealthSample`]** — the per-round overlay health probe (depth
//!   histogram, slack distribution, orphans, fanout utilization, stale
//!   chains, oracle load).
//! - **[`Profiler`]** — the deterministic cost-model profiler: work
//!   counters instead of wall clocks, so profiles are byte-stable and
//!   replay-diffable. Wall time is an opt-in `wall-clock` cargo
//!   feature and never reaches JSON artifacts.
//! - **[`ObsReport`]** — the report generator behind `lagover obs`.
//!
//! Everything funnels through [`Pipeline`], the engine-facing facade.
//! A disabled pipeline ([`Pipeline::disabled`]) stores nothing and
//! costs a branch per call site, so instrumented code runs
//! byte-identically — including RNG draw counts — with observability
//! off.

#![forbid(unsafe_code)]

pub mod counters;
pub mod event;
pub mod health;
pub mod journal;
pub mod profiler;
pub mod registry;
pub mod report;

pub use counters::EngineCounters;
pub use event::{DetachCause, Event, EventKind, InconsistencyCause, Node, RepairKind};
pub use health::HealthSample;
pub use journal::Journal;
pub use profiler::{wall_mark, PhaseStats, Profiler, WallMark, Work};
pub use registry::{Registry, Scrape};
pub use report::ObsReport;

// The metric primitives the registry is built from, re-exported so
// downstream crates take them from the observability facade.
pub use lagover_sim::{Counter, Histogram, TimeSeries};

use serde::{Deserialize, Serialize};

/// The engine-facing observability facade: an optional journal,
/// registry, and profiler behind one `record` surface.
///
/// Each component is independently enabled. The pipeline deliberately
/// has no global "sample rate" or filtering — determinism is easier to
/// audit when a pipeline either records everything or nothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    journal: Option<Journal>,
    registry: Option<Registry>,
    profiler: Option<Profiler>,
}

impl Pipeline {
    /// A pipeline with every component off: records nothing, allocates
    /// nothing.
    pub const fn disabled() -> Self {
        Pipeline {
            journal: None,
            registry: None,
            profiler: None,
        }
    }

    /// A fully-enabled pipeline: journal (bounded by `capacity`),
    /// registry, and profiler.
    pub fn enabled(capacity: usize) -> Self {
        Pipeline {
            journal: Some(Journal::new(capacity)),
            registry: Some(Registry::new()),
            profiler: Some(Profiler::new()),
        }
    }

    /// Enables the event journal with the given capacity (replacing any
    /// existing journal).
    pub fn enable_journal(&mut self, capacity: usize) -> &mut Self {
        self.journal = Some(Journal::new(capacity));
        self
    }

    /// Enables the metrics registry.
    pub fn enable_registry(&mut self) -> &mut Self {
        self.registry = Some(Registry::new());
        self
    }

    /// Enables the cost-model profiler.
    pub fn enable_profiler(&mut self) -> &mut Self {
        self.profiler = Some(Profiler::new());
        self
    }

    /// Whether any component is enabled (instrumented code gates event
    /// construction on this).
    pub fn is_enabled(&self) -> bool {
        self.journal.is_some() || self.registry.is_some() || self.profiler.is_some()
    }

    /// Whether the profiler is enabled (phase accounting gates on this
    /// so disabled runs skip the delta bookkeeping entirely).
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Records one event into the registry (counter by kind) and the
    /// journal, whichever are enabled.
    pub fn record(&mut self, event: Event) {
        if let Some(registry) = &mut self.registry {
            registry.record_event(&event);
        }
        if let Some(journal) = &mut self.journal {
            journal.push(event);
        }
    }

    /// Attributes `work` since `mark` to the profiler phase `name`
    /// (no-op unless profiling).
    pub fn record_phase(&mut self, name: &str, work: Work, mark: WallMark) {
        if let Some(profiler) = &mut self.profiler {
            profiler.record(name, work, mark);
        }
    }

    /// The journal, if enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// The registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Mutable registry access (scrape paths set gauges directly).
    pub fn registry_mut(&mut self) -> Option<&mut Registry> {
        self.registry.as_mut()
    }

    /// The profiler, if enabled.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Takes the journal out of the pipeline, disabling journaling.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attach(round: u64) -> Event {
        Event::Attach {
            round,
            child: 1,
            parent: Node::Source,
        }
    }

    #[test]
    fn disabled_pipeline_records_nothing() {
        let mut pipeline = Pipeline::disabled();
        assert!(!pipeline.is_enabled());
        assert!(!pipeline.profiling());
        pipeline.record(attach(0));
        pipeline.record_phase("construction", Work::default(), wall_mark());
        assert!(pipeline.journal().is_none());
        assert!(pipeline.registry().is_none());
        assert!(pipeline.profiler().is_none());
    }

    #[test]
    fn record_feeds_journal_and_registry_together() {
        let mut pipeline = Pipeline::enabled(16);
        pipeline.record(attach(0));
        pipeline.record(attach(1));
        pipeline.record(Event::OracleMiss { round: 1, peer: 2 });
        assert_eq!(pipeline.journal().unwrap().len(), 3);
        assert_eq!(pipeline.registry().unwrap().event_count("attach"), 2);
        assert_eq!(pipeline.registry().unwrap().event_count("oracle_miss"), 1);
    }

    #[test]
    fn components_enable_independently() {
        let mut pipeline = Pipeline::disabled();
        pipeline.enable_journal(4);
        assert!(pipeline.is_enabled());
        assert!(!pipeline.profiling());
        pipeline.record(attach(0));
        assert_eq!(pipeline.journal().unwrap().len(), 1);
        assert!(pipeline.registry().is_none());
        pipeline.enable_profiler();
        assert!(pipeline.profiling());
        pipeline.record_phase(
            "schedule",
            Work {
                rng_draws: 2,
                ..Default::default()
            },
            wall_mark(),
        );
        assert_eq!(pipeline.profiler().unwrap().total().rng_draws, 2);
    }

    #[test]
    fn take_journal_disables_journaling() {
        let mut pipeline = Pipeline::enabled(4);
        pipeline.record(attach(0));
        let journal = pipeline.take_journal().expect("journal was enabled");
        assert_eq!(journal.len(), 1);
        assert!(pipeline.journal().is_none());
        pipeline.record(attach(1));
        assert!(pipeline.journal().is_none(), "journaling stays off");
        assert_eq!(pipeline.registry().unwrap().event_count("attach"), 2);
    }
}
