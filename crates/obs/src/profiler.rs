//! The deterministic cost-model profiler.
//!
//! Wall clocks are nondeterministic, so profiles built on them can
//! never be byte-compared across runs — and byte comparison is how
//! this repo audits everything (`cargo xtask replay-diff`). The
//! profiler therefore measures *work*, not time: per-phase counts of
//! oracle contacts, pairwise interactions, structural operations, lost
//! messages, and RNG draws. Two runs of the same seed produce the
//! same profile, bit for bit, on any machine.
//!
//! The opt-in `wall-clock` cargo feature adds elapsed wall time per
//! phase for local investigation. Wall times appear in the *rendered*
//! report only; they are always excluded from the JSON form, so replay
//! artifacts stay byte-stable even when the feature is enabled.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// Work performed during some span of a run — the profiler's unit of
/// account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Work {
    /// Peer actions taken (construction or maintenance steps).
    pub actions: u64,
    /// RNG draws consumed (`SimRng::draws` delta).
    pub rng_draws: u64,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// Pairwise interactions performed.
    pub interactions: u64,
    /// Attach operations.
    pub attaches: u64,
    /// Detach operations.
    pub detaches: u64,
    /// Interactions lost in flight.
    pub messages_lost: u64,
}

impl Work {
    /// Every field as a `(name, value)` pair, in the serialization
    /// order — the perf-baseline exporter and the report renderer both
    /// consume this.
    pub fn to_named(&self) -> [(&'static str, u64); 7] {
        [
            ("actions", self.actions),
            ("rng_draws", self.rng_draws),
            ("oracle_queries", self.oracle_queries),
            ("interactions", self.interactions),
            ("attaches", self.attaches),
            ("detaches", self.detaches),
            ("messages_lost", self.messages_lost),
        ]
    }

    /// Field-wise sum.
    pub fn add(&mut self, other: Work) {
        self.actions += other.actions;
        self.rng_draws += other.rng_draws;
        self.oracle_queries += other.oracle_queries;
        self.interactions += other.interactions;
        self.attaches += other.attaches;
        self.detaches += other.detaches;
        self.messages_lost += other.messages_lost;
    }
}

/// Accumulated work for one named phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name (e.g. `"construction"`).
    pub name: String,
    /// Total work attributed to the phase.
    pub work: Work,
    /// Elapsed wall time, only measured under the `wall-clock`
    /// feature. Never serialized: replay artifacts must not depend on
    /// the machine.
    #[cfg(feature = "wall-clock")]
    #[serde(skip)]
    pub wall_nanos: u64,
}

// Equality deliberately ignores `wall_nanos`: wall time is a local
// diagnostic, and two profiles that did the same work are the same
// profile (matching the serialized form, which omits it).
impl PartialEq for PhaseStats {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.work == other.work
    }
}

impl Eq for PhaseStats {}

/// An opaque wall-clock mark. Zero-sized (and free) unless the
/// `wall-clock` feature is enabled, so instrumented code can take
/// marks unconditionally without dragging `std::time` into replayed
/// paths.
#[derive(Debug, Clone, Copy)]
pub struct WallMark {
    #[cfg(feature = "wall-clock")]
    at: std::time::Instant,
}

/// Takes a wall-clock mark (a no-op without the `wall-clock` feature).
pub fn wall_mark() -> WallMark {
    WallMark {
        #[cfg(feature = "wall-clock")]
        at: std::time::Instant::now(),
    }
}

/// Per-phase work accounting for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    phases: Vec<PhaseStats>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    fn phase_slot(&mut self, name: &str) -> &mut PhaseStats {
        if let Some(at) = self.phases.iter().position(|p| p.name == name) {
            return &mut self.phases[at];
        }
        self.phases.push(PhaseStats {
            name: name.to_string(),
            ..Default::default()
        });
        self.phases.last_mut().expect("just pushed")
    }

    /// Attributes `work` (and, under the `wall-clock` feature, the time
    /// since `mark`) to the phase `name`.
    pub fn record(&mut self, name: &str, work: Work, mark: WallMark) {
        let slot = self.phase_slot(name);
        slot.work.add(work);
        #[cfg(feature = "wall-clock")]
        {
            slot.wall_nanos += mark.at.elapsed().as_nanos() as u64;
        }
        #[cfg(not(feature = "wall-clock"))]
        let _ = mark;
    }

    /// The phases, in first-recorded order.
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// Stats for the phase `name`, if it was ever recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total work across all phases.
    pub fn total(&self) -> Work {
        let mut total = Work::default();
        for phase in &self.phases {
            total.add(phase.work);
        }
        total
    }

    /// Flattens the per-phase work counters into `(name, value)` pairs
    /// — `"<phase>.<field>"`, phases in first-recorded order — the
    /// export surface the perf baseline (`lagover-perf`) commits and
    /// `cargo xtask bench-gate` diffs.
    pub fn to_named(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.phases.len() * 7);
        for phase in &self.phases {
            for (field, value) in phase.work.to_named() {
                out.push((format!("{}.{field}", phase.name), value));
            }
        }
        out
    }

    /// Merges another profiler's phases into this one (multi-run
    /// aggregation; phase order follows first sight).
    pub fn merge(&mut self, other: &Profiler) {
        for phase in &other.phases {
            let slot = self.phase_slot(&phase.name);
            slot.work.add(phase.work);
            #[cfg(feature = "wall-clock")]
            {
                slot.wall_nanos += phase.wall_nanos;
            }
        }
    }

    /// Renders the per-phase table. Wall times are appended only when
    /// the `wall-clock` feature measured them.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>9} {:>9} {:>8} {:>9} {:>8} {:>8} {:>7}",
            "phase", "actions", "draws", "oracle", "interact", "attach", "detach", "lost"
        );
        #[cfg(feature = "wall-clock")]
        out.push_str(&format!(" {:>10}", "wall_ms"));
        for phase in &self.phases {
            let w = &phase.work;
            out.push('\n');
            out.push_str(&format!(
                "{:<14} {:>9} {:>9} {:>8} {:>9} {:>8} {:>8} {:>7}",
                phase.name,
                w.actions,
                w.rng_draws,
                w.oracle_queries,
                w.interactions,
                w.attaches,
                w.detaches,
                w.messages_lost
            ));
            #[cfg(feature = "wall-clock")]
            out.push_str(&format!(" {:>10.3}", phase.wall_nanos as f64 / 1_000_000.0));
        }
        out
    }
}

impl ToJson for Work {
    fn to_json(&self) -> Json {
        object(vec![
            ("actions", self.actions.to_json()),
            ("rng_draws", self.rng_draws.to_json()),
            ("oracle_queries", self.oracle_queries.to_json()),
            ("interactions", self.interactions.to_json()),
            ("attaches", self.attaches.to_json()),
            ("detaches", self.detaches.to_json()),
            ("messages_lost", self.messages_lost.to_json()),
        ])
    }
}

impl FromJson for Work {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Work {
            actions: u64::from_json(value.get("actions")?)?,
            rng_draws: u64::from_json(value.get("rng_draws")?)?,
            oracle_queries: u64::from_json(value.get("oracle_queries")?)?,
            interactions: u64::from_json(value.get("interactions")?)?,
            attaches: u64::from_json(value.get("attaches")?)?,
            detaches: u64::from_json(value.get("detaches")?)?,
            messages_lost: u64::from_json(value.get("messages_lost")?)?,
        })
    }
}

impl ToJson for PhaseStats {
    fn to_json(&self) -> Json {
        // wall_nanos is intentionally absent: JSON profiles are replay
        // artifacts and must be machine-independent.
        object(vec![
            ("name", self.name.to_json()),
            ("work", self.work.to_json()),
        ])
    }
}

impl FromJson for PhaseStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(PhaseStats {
            name: String::from_json(value.get("name")?)?,
            work: Work::from_json(value.get("work")?)?,
            #[cfg(feature = "wall-clock")]
            wall_nanos: 0,
        })
    }
}

impl ToJson for Profiler {
    fn to_json(&self) -> Json {
        object(vec![(
            "phases",
            Json::Array(self.phases.iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for Profiler {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Profiler {
            phases: Vec::from_json(value.get("phases")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(actions: u64, draws: u64) -> Work {
        Work {
            actions,
            rng_draws: draws,
            ..Default::default()
        }
    }

    #[test]
    fn phases_accumulate_in_first_sight_order() {
        let mut profiler = Profiler::new();
        profiler.record("construction", work(1, 2), wall_mark());
        profiler.record("maintenance", work(1, 0), wall_mark());
        profiler.record("construction", work(1, 3), wall_mark());
        assert_eq!(profiler.phases().len(), 2);
        assert_eq!(profiler.phases()[0].name, "construction");
        assert_eq!(profiler.phase("construction").unwrap().work.rng_draws, 5);
        assert_eq!(profiler.total().actions, 3);
    }

    #[test]
    fn merge_sums_matching_phases() {
        let mut a = Profiler::new();
        a.record("schedule", work(0, 10), wall_mark());
        let mut b = Profiler::new();
        b.record("schedule", work(0, 5), wall_mark());
        b.record("churn", work(0, 1), wall_mark());
        a.merge(&b);
        assert_eq!(a.phase("schedule").unwrap().work.rng_draws, 15);
        assert_eq!(a.phase("churn").unwrap().work.rng_draws, 1);
    }

    #[test]
    fn json_round_trip_is_byte_stable_and_wall_free() {
        let mut profiler = Profiler::new();
        profiler.record("construction", work(4, 7), wall_mark());
        let json = lagover_jsonio::to_string(&profiler);
        assert!(!json.contains("wall"), "wall time must stay out of JSON");
        let back: Profiler = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(lagover_jsonio::to_string(&back), json);
    }

    #[test]
    fn named_export_flattens_phases_in_first_sight_order() {
        let mut profiler = Profiler::new();
        profiler.record("construction", work(4, 7), wall_mark());
        profiler.record("maintenance", work(1, 0), wall_mark());
        let named = profiler.to_named();
        assert_eq!(named.len(), 14, "7 work fields per phase");
        assert_eq!(named[0], ("construction.actions".to_string(), 4));
        assert_eq!(named[1], ("construction.rng_draws".to_string(), 7));
        assert_eq!(named[7], ("maintenance.actions".to_string(), 1));
        let total = profiler.total();
        assert_eq!(total.to_named()[0], ("actions", 5));
    }

    #[test]
    fn render_lists_every_phase() {
        let mut profiler = Profiler::new();
        profiler.record("construction", work(1, 1), wall_mark());
        profiler.record("detection", work(0, 0), wall_mark());
        let text = profiler.render();
        assert!(text.contains("construction"));
        assert!(text.contains("detection"));
    }
}
