//! Per-round overlay health: the dashboard quantities a deployment
//! would watch, in one plain-data sample.
//!
//! The sample is *computed* by `lagover_core::Engine::health_sample`
//! (which owns the overlay caches and the O(N) analysis passes); this
//! crate only defines the data shape, its serialization, and its
//! rendering, so the probe composes with the journal and the registry
//! without the engine depending on any of them.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// One per-round health probe of an overlay under construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSample {
    /// The round the sample was taken at.
    pub round: u64,
    /// Online peers.
    pub online: u64,
    /// Online peers without a parent (fragment roots).
    pub orphans: u64,
    /// Peers not reachable from the source (includes offline ones).
    pub unrooted: u64,
    /// Online peers whose ancestor chain crosses a crashed peer.
    pub stale_chains: u64,
    /// Fraction of online peers currently satisfied.
    pub satisfied_fraction: f64,
    /// `depth_counts[d]` = rooted peers at delay `d` (index 0 unused).
    pub depth_counts: Vec<u64>,
    /// Maximum observed delay.
    pub max_depth: u32,
    /// Mean delay over rooted peers (0.0 when none).
    pub mean_depth: f64,
    /// Rooted peers with negative slack (`DelayAt > l`).
    pub violated: u64,
    /// Rooted peers with exactly zero slack.
    pub tight: u64,
    /// Rooted peers with positive slack.
    pub slackful: u64,
    /// Minimum slack over rooted peers (`None` when nobody is rooted).
    pub min_slack: Option<i64>,
    /// Mean slack over rooted peers.
    pub mean_slack: f64,
    /// Child slots in use across the source and all rooted peers.
    pub fanout_used: u64,
    /// Child slots offered across the source and all rooted peers.
    pub fanout_capacity: u64,
    /// Cumulative oracle queries at sample time (the oracle's load).
    pub oracle_load: u64,
}

impl HealthSample {
    /// Fanout utilization in `[0, 1]` (`None` if no capacity is
    /// offered).
    pub fn fanout_utilization(&self) -> Option<f64> {
        (self.fanout_capacity > 0).then(|| self.fanout_used as f64 / self.fanout_capacity as f64)
    }

    /// One fixed-width timeline row (pairs with [`HealthSample::render_header`]).
    pub fn render_row(&self) -> String {
        format!(
            "{:>6} {:>7} {:>7} {:>6} {:>9.3} {:>9.2} {:>9.2} {:>8}",
            self.round,
            self.orphans,
            self.stale_chains,
            self.violated,
            self.satisfied_fraction,
            self.mean_depth,
            self.mean_slack,
            self.oracle_load,
        )
    }

    /// Column header for [`HealthSample::render_row`].
    pub fn render_header() -> String {
        format!(
            "{:>6} {:>7} {:>7} {:>6} {:>9} {:>9} {:>9} {:>8}",
            "round", "orphans", "stale", "viol", "satisfied", "depth", "slack", "oracle"
        )
    }
}

impl ToJson for HealthSample {
    fn to_json(&self) -> Json {
        object(vec![
            ("round", self.round.to_json()),
            ("online", self.online.to_json()),
            ("orphans", self.orphans.to_json()),
            ("unrooted", self.unrooted.to_json()),
            ("stale_chains", self.stale_chains.to_json()),
            ("satisfied_fraction", self.satisfied_fraction.to_json()),
            ("depth_counts", self.depth_counts.to_json()),
            ("max_depth", self.max_depth.to_json()),
            ("mean_depth", self.mean_depth.to_json()),
            ("violated", self.violated.to_json()),
            ("tight", self.tight.to_json()),
            ("slackful", self.slackful.to_json()),
            ("min_slack", self.min_slack.to_json()),
            ("mean_slack", self.mean_slack.to_json()),
            ("fanout_used", self.fanout_used.to_json()),
            ("fanout_capacity", self.fanout_capacity.to_json()),
            ("oracle_load", self.oracle_load.to_json()),
        ])
    }
}

impl FromJson for HealthSample {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(HealthSample {
            round: u64::from_json(value.get("round")?)?,
            online: u64::from_json(value.get("online")?)?,
            orphans: u64::from_json(value.get("orphans")?)?,
            unrooted: u64::from_json(value.get("unrooted")?)?,
            stale_chains: u64::from_json(value.get("stale_chains")?)?,
            satisfied_fraction: f64::from_json(value.get("satisfied_fraction")?)?,
            depth_counts: Vec::from_json(value.get("depth_counts")?)?,
            max_depth: u32::from_json(value.get("max_depth")?)?,
            mean_depth: f64::from_json(value.get("mean_depth")?)?,
            violated: u64::from_json(value.get("violated")?)?,
            tight: u64::from_json(value.get("tight")?)?,
            slackful: u64::from_json(value.get("slackful")?)?,
            min_slack: Option::from_json(value.get("min_slack")?)?,
            mean_slack: f64::from_json(value.get("mean_slack")?)?,
            fanout_used: u64::from_json(value.get("fanout_used")?)?,
            fanout_capacity: u64::from_json(value.get("fanout_capacity")?)?,
            oracle_load: u64::from_json(value.get("oracle_load")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthSample {
        HealthSample {
            round: 5,
            online: 10,
            orphans: 2,
            unrooted: 3,
            stale_chains: 1,
            satisfied_fraction: 0.7,
            depth_counts: vec![0, 3, 4],
            max_depth: 2,
            mean_depth: 1.5,
            violated: 0,
            tight: 2,
            slackful: 5,
            min_slack: Some(0),
            mean_slack: 1.25,
            fanout_used: 7,
            fanout_capacity: 14,
            oracle_load: 42,
        }
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let s = sample();
        let json = lagover_jsonio::to_string(&s);
        let back: HealthSample = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, s);
        assert_eq!(lagover_jsonio::to_string(&back), json);
    }

    #[test]
    fn utilization_handles_zero_capacity() {
        let mut s = sample();
        assert_eq!(s.fanout_utilization(), Some(0.5));
        s.fanout_capacity = 0;
        assert_eq!(s.fanout_utilization(), None);
    }

    #[test]
    fn rows_align_with_header() {
        assert_eq!(
            HealthSample::render_header().len(),
            sample().render_row().len()
        );
    }
}
