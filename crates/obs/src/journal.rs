//! The bounded event journal: a ring buffer of [`Event`]s.
//!
//! Generalizes the old `core::trace::TraceLog` from structural events
//! to the full taxonomy. When the capacity is reached the *oldest*
//! events are dropped, so long runs keep the recent history that
//! matters for debugging, and the drop count is carried in the
//! serialized form so a truncated journal is never mistaken for a
//! complete one.

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// A bounded in-memory event journal (ring buffer, oldest dropped
/// first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Journal {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
    start: usize,
}

impl Journal {
    /// Creates a journal keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            events: Vec::new(),
            capacity,
            dropped: 0,
            start: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events[self.start..]
            .iter()
            .chain(self.events[..self.start].iter())
    }

    /// Retained events concerning one peer, oldest first.
    pub fn for_peer(&self, peer: u32) -> Vec<&Event> {
        self.iter().filter(|e| e.peer() == peer).collect()
    }

    /// Retained events per kind, in [`EventKind::ALL`] order — the fold
    /// the registry's counters must agree with when nothing was
    /// dropped.
    pub fn counts_by_kind(&self) -> Vec<(EventKind, u64)> {
        let mut counts = vec![0u64; EventKind::ALL.len()];
        for event in self.iter() {
            let slot = EventKind::ALL
                .iter()
                .position(|k| *k == event.kind())
                .expect("kind is in ALL");
            counts[slot] += 1;
        }
        EventKind::ALL.into_iter().zip(counts).collect()
    }
}

impl ToJson for Journal {
    fn to_json(&self) -> Json {
        object(vec![
            ("capacity", self.capacity.to_json()),
            ("dropped", self.dropped.to_json()),
            (
                "events",
                Json::Array(self.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Journal {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let capacity = usize::from_json(value.get("capacity")?)?;
        let events: Vec<Event> = Vec::from_json(value.get("events")?)?;
        if capacity == 0 || events.len() > capacity {
            return Err(JsonError(format!(
                "journal holds {} events but claims capacity {capacity}",
                events.len()
            )));
        }
        Ok(Journal {
            events,
            capacity,
            dropped: u64::from_json(value.get("dropped")?)?,
            start: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Node;

    fn attach(round: u64, child: u32) -> Event {
        Event::Attach {
            round,
            child,
            parent: Node::Source,
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut journal = Journal::new(10);
        for r in 0..5 {
            journal.push(attach(r, r as u32));
        }
        let rounds: Vec<u64> = journal.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![0, 1, 2, 3, 4]);
        assert_eq!(journal.len(), 5);
        assert_eq!(journal.dropped(), 0);
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut journal = Journal::new(3);
        for r in 0..7 {
            journal.push(attach(r, 0));
        }
        let rounds: Vec<u64> = journal.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![4, 5, 6]);
        assert_eq!(journal.dropped(), 4);
        assert_eq!(journal.len(), 3);
    }

    #[test]
    fn per_peer_filter_and_kind_counts() {
        let mut journal = Journal::new(10);
        journal.push(attach(0, 1));
        journal.push(attach(1, 2));
        journal.push(Event::OracleMiss { round: 2, peer: 1 });
        assert_eq!(journal.for_peer(1).len(), 2);
        let counts = journal.counts_by_kind();
        assert_eq!(counts[0], (EventKind::Attach, 2));
        assert_eq!(counts[3], (EventKind::OracleMiss, 1));
    }

    #[test]
    fn json_round_trip_preserves_order_after_wrap() {
        let mut journal = Journal::new(4);
        for r in 0..9 {
            journal.push(attach(r, r as u32));
        }
        let json = lagover_jsonio::to_string(&journal);
        let back: Journal = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back.dropped(), journal.dropped());
        assert_eq!(
            back.iter().copied().collect::<Vec<_>>(),
            journal.iter().copied().collect::<Vec<_>>()
        );
        // Re-serializing the parsed journal is byte-stable.
        assert_eq!(lagover_jsonio::to_string(&back), json);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Journal::new(0);
    }
}
