//! Forest carving: k interior-disjoint dissemination trees over one
//! constructed LagOver.
//!
//! "Deterministic Near-Optimal P2P Streaming" stripes a sustained
//! stream across multiple trees such that every node is **interior**
//! (has children) in at most one tree and a **leaf** in all others; a
//! node's whole upload budget then concentrates on the single tree it
//! forwards, and the per-tree capacities add up to near-optimal
//! throughput. This module carves such a forest out of an existing
//! overlay:
//!
//! * rooted peers are ordered by their base-overlay delay (ties by id)
//!   so low-latency peers land near each tree's root,
//! * the ordered peers are dealt round-robin into k disjoint *interior
//!   groups* — group i supplies the interior of tree i and nothing
//!   else, which makes interior-disjointness true by construction,
//! * each tree is then built breadth-first: the source first (it is
//!   interior in every tree), then group i's members in delay order,
//!   then everyone else as leaves.
//!
//! Capacities generalize the paper's fanout constraint into a
//! bandwidth budget `b_v` (chunks per round a node can upload). With a
//! publish rate of `rate` chunks per round striped over k trees, an
//! interior node of tree i forwards `rate / k` chunks per round to
//! each child, so it can serve `⌊b_v · k / rate⌋` children; the
//! source, interior everywhere, splits its budget evenly and serves
//! `⌊b_src / rate⌋` direct children per tree.
//!
//! Carving is **pure**: it reads the overlay and never mutates it, and
//! it draws no randomness — the same overlay, budgets, and k always
//! yield the same forest, byte for byte.

use crate::node::{Member, PeerId, Population};
use crate::overlay::Overlay;

use std::collections::VecDeque;
use std::fmt;

/// Per-node upload budgets, in chunks per round.
///
/// The streaming generalization of the paper's fanout constraint: a
/// fanout of `f` at one item per round is exactly a budget of `f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamBudgets {
    /// Chunks per round the source can upload (split across all trees).
    pub source: u64,
    /// Chunks per round each peer can upload, indexed by peer id.
    pub peers: Vec<u64>,
}

impl StreamBudgets {
    /// Budgets derived from the population's fanout constraints scaled
    /// by `per_unit` — fanout `f` becomes budget `f · per_unit`, and
    /// the source fanout likewise. `per_unit = rate` reproduces the
    /// single-tree feed regime exactly.
    pub fn from_fanouts(population: &Population, per_unit: u64) -> Self {
        StreamBudgets {
            source: u64::from(population.source_fanout()) * per_unit,
            peers: population
                .fanouts()
                .iter()
                .map(|&f| u64::from(f) * per_unit)
                .collect(),
        }
    }

    /// A uniform budget: every peer uploads at most `per_peer`, the
    /// source at most `source`.
    pub fn uniform(n: usize, per_peer: u64, source: u64) -> Self {
        StreamBudgets {
            source,
            peers: vec![per_peer; n],
        }
    }
}

/// Why a forest could not be carved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CarveError {
    /// `k == 0` — a forest needs at least one tree.
    ZeroTrees,
    /// `rate == 0` — a stream needs at least one chunk per round.
    ZeroRate,
    /// Tree `tree`'s interior group (plus the source) cannot seat every
    /// rooted peer: `capacity` child slots for `required` peers.
    Infeasible {
        /// The tree that cannot be built.
        tree: usize,
        /// Child slots its interior group and the source provide.
        capacity: u64,
        /// Rooted peers that each need a slot.
        required: u64,
    },
}

impl fmt::Display for CarveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarveError::ZeroTrees => f.write_str("cannot carve a forest of zero trees"),
            CarveError::ZeroRate => f.write_str("cannot stripe a stream of zero chunks per round"),
            CarveError::Infeasible {
                tree,
                capacity,
                required,
            } => write!(
                f,
                "tree {tree} infeasible: {capacity} child slots for {required} peers"
            ),
        }
    }
}

/// One carved tree: a parent/children view over the shared peer set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePlan {
    /// Parent per peer index (`None` for peers unrooted in the base
    /// overlay, which take part in no tree).
    pub parent: Vec<Option<Member>>,
    /// Depth per peer index (0 is the source; meaningful only where
    /// `parent` is `Some`).
    pub depth: Vec<u32>,
    /// Children per peer index.
    pub children: Vec<Vec<PeerId>>,
    /// The source's direct children in this tree.
    pub source_children: Vec<PeerId>,
    /// This tree's interior group (the only peers allowed children
    /// here), in attach order.
    pub interior: Vec<PeerId>,
}

impl TreePlan {
    fn empty(n: usize) -> Self {
        TreePlan {
            parent: vec![None; n],
            depth: vec![0; n],
            children: vec![Vec::new(); n],
            source_children: Vec::new(),
            interior: Vec::new(),
        }
    }

    /// Children of `m` in this tree.
    pub fn children_of(&self, m: Member) -> &[PeerId] {
        match m.peer() {
            None => &self.source_children,
            Some(p) => &self.children[p.index()],
        }
    }

    /// Peers that actually have children in this tree — must be a
    /// subset of `interior` (and of no other tree's interior).
    pub fn interior_peers(&self) -> Vec<PeerId> {
        (0..self.children.len())
            .filter(|&i| !self.children[i].is_empty())
            .map(|i| PeerId::new(i as u32))
            .collect()
    }
}

/// The carved forest: k interior-disjoint trees plus the group map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestPlan {
    /// Number of trees.
    pub k: usize,
    /// The trees, index i striping chunks `c` with `c % k == i`.
    pub trees: Vec<TreePlan>,
    /// The tree in whose interior each peer serves (`None` for peers
    /// that are leaves everywhere or unrooted).
    pub group: Vec<Option<usize>>,
    /// Rooted peers, in the (base delay, id) order the carve used.
    pub rooted: Vec<PeerId>,
    /// Per-tree source child capacity the budgets allowed.
    pub source_capacity: u64,
}

impl ForestPlan {
    /// Maximum depth across all trees (the worst single-tree path).
    pub fn max_depth(&self) -> u32 {
        self.trees
            .iter()
            .flat_map(|t| {
                t.parent
                    .iter()
                    .zip(&t.depth)
                    .filter_map(|(p, d)| p.map(|_| *d))
            })
            .max()
            .unwrap_or(0)
    }
}

/// Per-tree child capacity of peer `p`: its whole budget serves the
/// one tree it is interior in, forwarding `rate / k` chunks per round
/// per child.
fn peer_capacity(budget: u64, k: usize, rate: u64) -> u64 {
    budget.saturating_mul(k as u64) / rate
}

/// Carves `k` interior-disjoint trees over `overlay`'s rooted peers.
///
/// `rate` is the source publish rate in chunks per round; chunk `c`
/// travels tree `c % k`. The overlay is only read — construction,
/// carving, and streaming compose without interference — and no
/// randomness is drawn.
pub fn carve(
    overlay: &Overlay,
    population: &Population,
    budgets: &StreamBudgets,
    k: usize,
    rate: u64,
) -> Result<ForestPlan, CarveError> {
    if k == 0 {
        return Err(CarveError::ZeroTrees);
    }
    if rate == 0 {
        return Err(CarveError::ZeroRate);
    }
    let n = population.len();

    // Rooted peers by (base-overlay delay, id): the delay gradation the
    // LagOver construction earned orders who sits near each root.
    let mut order: Vec<(u32, PeerId)> = population
        .peer_ids()
        .filter_map(|p| overlay.delay(p).map(|d| (d, p)))
        .collect();
    order.sort_unstable_by_key(|&(d, p)| (d, p.get()));
    let rooted: Vec<PeerId> = order.iter().map(|&(_, p)| p).collect();
    let required = rooted.len() as u64;

    // Deal the ordered peers round-robin into k interior groups, so
    // every tree's interior spans the full latency gradient.
    let mut group: Vec<Option<usize>> = vec![None; n];
    for (j, &p) in rooted.iter().enumerate() {
        group[p.index()] = Some(j % k);
    }

    let source_capacity = budgets.source / rate;
    let mut trees = Vec::with_capacity(k);
    for tree_idx in 0..k {
        // Interior candidates: group members whose budget seats at
        // least one child. Everyone else (other groups, zero-budget
        // group members) attaches as a leaf.
        let interior: Vec<PeerId> = rooted
            .iter()
            .copied()
            .filter(|p| {
                group[p.index()] == Some(tree_idx)
                    && peer_capacity(budgets.peers[p.index()], k, rate) > 0
            })
            .collect();

        let capacity: u64 = source_capacity
            + interior
                .iter()
                .map(|p| peer_capacity(budgets.peers[p.index()], k, rate))
                .sum::<u64>();
        if capacity < required {
            return Err(CarveError::Infeasible {
                tree: tree_idx,
                capacity,
                required,
            });
        }

        let mut tree = TreePlan::empty(n);
        tree.interior = interior.clone();

        // Breadth-first seating: a queue of open (node, remaining
        // slots) pairs. Interior members attach first — in delay order
        // — so their capacity opens near the root; leaves fill in
        // after.
        let mut open: VecDeque<(Member, u64)> = VecDeque::new();
        if source_capacity > 0 {
            open.push_back((Member::Source, source_capacity));
        }
        let is_interior = |p: PeerId| {
            group[p.index()] == Some(tree_idx)
                && peer_capacity(budgets.peers[p.index()], k, rate) > 0
        };
        let seating: Vec<PeerId> = rooted
            .iter()
            .copied()
            .filter(|&p| is_interior(p))
            .chain(rooted.iter().copied().filter(|&p| !is_interior(p)))
            .collect();
        for p in seating {
            let (slot, remaining) = match open.front_mut() {
                Some(&mut (m, ref mut r)) => {
                    *r -= 1;
                    (m, *r)
                }
                // Unreachable given the capacity check above, but keep
                // the carve total rather than panicking.
                None => {
                    return Err(CarveError::Infeasible {
                        tree: tree_idx,
                        capacity,
                        required,
                    })
                }
            };
            if remaining == 0 {
                open.pop_front();
            }
            tree.parent[p.index()] = Some(slot);
            tree.depth[p.index()] = match slot.peer() {
                None => 1,
                Some(parent) => tree.depth[parent.index()] + 1,
            };
            match slot.peer() {
                None => tree.source_children.push(p),
                Some(parent) => tree.children[parent.index()].push(p),
            }
            if is_interior(p) {
                let cap = peer_capacity(budgets.peers[p.index()], k, rate);
                open.push_back((Member::Peer(p), cap));
            }
        }
        trees.push(tree);
    }

    Ok(ForestPlan {
        k,
        trees,
        group,
        rooted,
        source_capacity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::engine::Engine;
    use crate::node::Constraints;
    use crate::oracle::OracleKind;

    fn population(n: usize) -> Population {
        let peers = (0..n)
            .map(|i| Constraints::new(2 + (i % 3) as u32, 2 + (i % 5) as u32))
            .collect();
        Population::new(4, peers)
    }

    fn built_overlay(n: usize, seed: u64) -> (Population, Overlay) {
        let population = population(n);
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let mut engine = Engine::new(&population, &config, seed);
        while !engine.is_converged() && engine.round().get() < 5_000 {
            engine.step();
        }
        assert!(engine.is_converged(), "fixture must converge");
        let overlay = engine.overlay().clone();
        (population, overlay)
    }

    #[test]
    fn carve_is_interior_disjoint_and_total() {
        let (population, overlay) = built_overlay(60, 11);
        let budgets = StreamBudgets::uniform(60, 8, 16);
        for k in [1usize, 2, 4] {
            let plan = carve(&overlay, &population, &budgets, k, 4).expect("feasible");
            assert_eq!(plan.trees.len(), k);
            let rooted = plan.rooted.len();
            let mut interior_in: Vec<Option<usize>> = vec![None; 60];
            for (i, tree) in plan.trees.iter().enumerate() {
                // Every rooted peer is seated exactly once per tree.
                let seated = tree.parent.iter().filter(|p| p.is_some()).count();
                assert_eq!(seated, rooted, "tree {i} seats all rooted peers");
                for p in tree.interior_peers() {
                    assert_eq!(
                        interior_in[p.index()].replace(i),
                        None,
                        "peer {} interior in two trees",
                        p.get()
                    );
                    assert_eq!(plan.group[p.index()], Some(i));
                }
            }
        }
    }

    #[test]
    fn carve_respects_budget_capacities() {
        let (population, overlay) = built_overlay(40, 7);
        let budgets = StreamBudgets::uniform(40, 6, 12);
        let (k, rate) = (2usize, 4u64);
        let plan = carve(&overlay, &population, &budgets, k, rate).expect("feasible");
        for tree in &plan.trees {
            assert!(tree.source_children.len() as u64 <= budgets.source / rate);
            for p in tree.interior_peers() {
                let cap = budgets.peers[p.index()] * k as u64 / rate;
                assert!(tree.children[p.index()].len() as u64 <= cap);
            }
        }
    }

    #[test]
    fn depths_are_parent_plus_one() {
        let (population, overlay) = built_overlay(50, 3);
        let budgets = StreamBudgets::uniform(50, 8, 8);
        let plan = carve(&overlay, &population, &budgets, 4, 4).expect("feasible");
        for tree in &plan.trees {
            for p in &plan.rooted {
                match tree.parent[p.index()].expect("seated") {
                    Member::Source => assert_eq!(tree.depth[p.index()], 1),
                    Member::Peer(q) => {
                        assert_eq!(tree.depth[p.index()], tree.depth[q.index()] + 1)
                    }
                }
            }
        }
        assert!(plan.max_depth() >= 1);
    }

    #[test]
    fn infeasible_budgets_are_rejected_with_the_gap() {
        let (population, overlay) = built_overlay(30, 5);
        // rate 8 over k=2 trees: per-peer budget 1 gives capacity
        // 1*2/8 = 0 children — only the source can serve, and it can't
        // seat 30 peers alone.
        let budgets = StreamBudgets::uniform(30, 1, 16);
        match carve(&overlay, &population, &budgets, 2, 8) {
            Err(CarveError::Infeasible {
                tree,
                capacity,
                required,
            }) => {
                assert_eq!(tree, 0);
                assert_eq!(capacity, 2);
                assert_eq!(required, 30);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let (population, overlay) = built_overlay(10, 1);
        let budgets = StreamBudgets::uniform(10, 4, 4);
        assert_eq!(
            carve(&overlay, &population, &budgets, 0, 4),
            Err(CarveError::ZeroTrees)
        );
        assert_eq!(
            carve(&overlay, &population, &budgets, 2, 0),
            Err(CarveError::ZeroRate)
        );
    }

    #[test]
    fn carve_does_not_mutate_the_overlay() {
        let (population, overlay) = built_overlay(40, 9);
        let before: Vec<_> = population
            .peer_ids()
            .map(|p| (overlay.parent(p), overlay.delay(p)))
            .collect();
        let budgets = StreamBudgets::uniform(40, 8, 8);
        let _ = carve(&overlay, &population, &budgets, 4, 4).expect("feasible");
        let after: Vec<_> = population
            .peer_ids()
            .map(|p| (overlay.parent(p), overlay.delay(p)))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn budgets_from_fanouts_match_the_feed_regime() {
        let population = population(12);
        let budgets = StreamBudgets::from_fanouts(&population, 4);
        assert_eq!(budgets.source, u64::from(population.source_fanout()) * 4);
        for p in population.peer_ids() {
            assert_eq!(
                budgets.peers[p.index()],
                u64::from(population.fanout(p)) * 4
            );
        }
    }
}
