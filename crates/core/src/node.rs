//! Node identities, per-node constraints, and populations.
//!
//! The paper writes a consumer as `i_f^l` — node `i` with maximum fanout
//! `f` and delay constraint `l` (Table 1). The feed source is *node 0*;
//! here it is the distinguished [`Member::Source`] variant rather than
//! index 0, so peer indices stay dense and the type system rules out
//! "source used as a consumer" bugs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a consumer peer (dense index into the population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(u32);

impl PeerId {
    /// Creates a peer id from a dense index.
    pub fn new(index: u32) -> Self {
        PeerId(index)
    }

    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id value.
    pub fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer {}", self.0)
    }
}

/// A participant in the overlay: the feed source (the paper's node 0) or
/// a consumer peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Member {
    /// The feed source.
    Source,
    /// A consumer.
    Peer(PeerId),
}

impl Member {
    /// The peer id if this member is a consumer.
    pub fn peer(self) -> Option<PeerId> {
        match self {
            Member::Source => None,
            Member::Peer(p) => Some(p),
        }
    }

    /// Whether this member is the source.
    pub fn is_source(self) -> bool {
        matches!(self, Member::Source)
    }
}

impl From<PeerId> for Member {
    fn from(p: PeerId) -> Self {
        Member::Peer(p)
    }
}

impl fmt::Display for Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Member::Source => write!(f, "source"),
            Member::Peer(p) => write!(f, "{p}"),
        }
    }
}

/// A consumer's declared constraints: the paper's `(f_i, l_i)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constraints {
    /// Maximum number of children this peer will serve (`f_i`, may be 0).
    pub fanout: u32,
    /// Maximum tolerated delay in time units / overlay hops (`l_i` ≥ 1).
    pub latency: u32,
}

impl Constraints {
    /// Creates a constraint pair.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`: a node one hop from the source already
    /// observes delay 1, so `l = 0` is unsatisfiable by definition.
    pub fn new(fanout: u32, latency: u32) -> Self {
        assert!(latency >= 1, "latency constraint must be at least 1");
        Constraints { fanout, latency }
    }
}

impl fmt::Display for Constraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f={} l={}", self.fanout, self.latency)
    }
}

/// The consumer population plus the source's own fanout budget.
///
/// # Example
///
/// ```
/// use lagover_core::node::{Constraints, Population};
///
/// let pop = Population::new(3, vec![
///     Constraints::new(3, 1),
///     Constraints::new(2, 2),
/// ]);
/// assert_eq!(pop.len(), 2);
/// assert_eq!(pop.source_fanout(), 3);
/// assert_eq!(pop.constraints(lagover_core::node::PeerId::new(1)).latency, 2);
/// ```
/// Stored struct-of-arrays: the engine's hot loops read latency and
/// fanout in independent streaks over dense `PeerId` indices, so each
/// constraint lives in its own parallel array rather than a
/// `Vec<Constraints>` of interleaved pairs (DESIGN.md §13).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Population {
    source_fanout: u32,
    fanout: Vec<u32>,
    latency: Vec<u32>,
}

impl Population {
    /// Creates a population.
    ///
    /// # Panics
    ///
    /// Panics if `source_fanout == 0` (the source must serve someone) or
    /// the population is empty.
    pub fn new(source_fanout: u32, peers: Vec<Constraints>) -> Self {
        assert!(source_fanout >= 1, "source fanout must be at least 1");
        assert!(!peers.is_empty(), "population must be non-empty");
        Population {
            source_fanout,
            fanout: peers.iter().map(|c| c.fanout).collect(),
            latency: peers.iter().map(|c| c.latency).collect(),
        }
    }

    /// Number of consumers.
    pub fn len(&self) -> usize {
        self.latency.len()
    }

    /// Whether there are no consumers (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.latency.is_empty()
    }

    /// The source's fanout budget (`f_0`).
    pub fn source_fanout(&self) -> u32 {
        self.source_fanout
    }

    /// Constraints of one peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer id is out of range.
    pub fn constraints(&self, p: PeerId) -> Constraints {
        Constraints {
            fanout: self.fanout[p.index()],
            latency: self.latency[p.index()],
        }
    }

    /// Latency constraint `l_p`.
    pub fn latency(&self, p: PeerId) -> u32 {
        self.latency[p.index()]
    }

    /// Fanout constraint `f_p`.
    pub fn fanout(&self, p: PeerId) -> u32 {
        self.fanout[p.index()]
    }

    /// The latency column, indexed by `PeerId`.
    pub fn latencies(&self) -> &[u32] {
        &self.latency
    }

    /// The fanout column, indexed by `PeerId`.
    pub fn fanouts(&self) -> &[u32] {
        &self.fanout
    }

    /// Iterates over `(PeerId, Constraints)`.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, Constraints)> + '_ {
        self.fanout
            .iter()
            .zip(&self.latency)
            .enumerate()
            .map(|(i, (&fanout, &latency))| {
                (PeerId::new(i as u32), Constraints { fanout, latency })
            })
    }

    /// All peer ids.
    pub fn peer_ids(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.latency.len() as u32).map(PeerId::new)
    }

    /// The largest latency constraint present.
    pub fn max_latency(&self) -> u32 {
        self.latency.iter().copied().max().unwrap_or(0)
    }

    /// Total consumer-side fanout capacity.
    pub fn total_fanout(&self) -> u64 {
        self.fanout.iter().map(|&f| u64::from(f)).sum()
    }
}

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};

impl ToJson for PeerId {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(self.0))
    }
}

impl FromJson for PeerId {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(PeerId(u32::from_json(value)?))
    }
}

impl ToJson for Member {
    fn to_json(&self) -> Json {
        match self {
            Member::Source => Json::Str("source".to_string()),
            Member::Peer(p) => p.to_json(),
        }
    }
}

impl FromJson for Member {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) if s == "source" => Ok(Member::Source),
            other => Ok(Member::Peer(PeerId::from_json(other)?)),
        }
    }
}

impl ToJson for Constraints {
    fn to_json(&self) -> Json {
        object(vec![
            ("fanout", self.fanout.to_json()),
            ("latency", self.latency.to_json()),
        ])
    }
}

impl FromJson for Constraints {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let fanout = u32::from_json(value.get("fanout")?)?;
        let latency = u32::from_json(value.get("latency")?)?;
        if latency == 0 {
            return Err(JsonError("latency constraint must be at least 1".into()));
        }
        Ok(Constraints { fanout, latency })
    }
}

impl ToJson for Population {
    fn to_json(&self) -> Json {
        // The wire shape stays the AoS `peers` list from before the SoA
        // split, so committed documents and snapshots are unaffected.
        let peers: Vec<Constraints> = self.iter().map(|(_, c)| c).collect();
        object(vec![
            ("source_fanout", self.source_fanout.to_json()),
            ("peers", peers.to_json()),
        ])
    }
}

impl FromJson for Population {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let source_fanout = u32::from_json(value.get("source_fanout")?)?;
        let peers = Vec::<Constraints>::from_json(value.get("peers")?)?;
        if source_fanout == 0 {
            return Err(JsonError("source_fanout must be positive".into()));
        }
        if peers.is_empty() {
            return Err(JsonError("population must not be empty".into()));
        }
        Ok(Population::new(source_fanout, peers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_round_trips() {
        let p = PeerId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.get(), 7);
        assert_eq!(p.to_string(), "peer 7");
    }

    #[test]
    fn member_conversions() {
        let p = PeerId::new(3);
        let m: Member = p.into();
        assert_eq!(m.peer(), Some(p));
        assert!(!m.is_source());
        assert!(Member::Source.is_source());
        assert_eq!(Member::Source.peer(), None);
        assert_eq!(Member::Source.to_string(), "source");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_latency_rejected() {
        Constraints::new(1, 0);
    }

    #[test]
    fn population_accessors() {
        let pop = Population::new(
            2,
            vec![
                Constraints::new(3, 1),
                Constraints::new(0, 4),
                Constraints::new(1, 2),
            ],
        );
        assert_eq!(pop.len(), 3);
        assert_eq!(pop.latency(PeerId::new(1)), 4);
        assert_eq!(pop.fanout(PeerId::new(1)), 0);
        assert_eq!(pop.max_latency(), 4);
        assert_eq!(pop.total_fanout(), 4);
        assert_eq!(pop.peer_ids().count(), 3);
        let collected: Vec<_> = pop.iter().collect();
        assert_eq!(collected[2].0, PeerId::new(2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_rejected() {
        Population::new(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "source fanout")]
    fn zero_source_fanout_rejected() {
        Population::new(0, vec![Constraints::new(1, 1)]);
    }
}
