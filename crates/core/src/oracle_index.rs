//! Incremental sampling index for the four reference oracles.
//!
//! The naive oracle path answers every query with an O(n) scan; one
//! construction round issues O(n) queries, so rounds cost O(n²) — the
//! wall that kept the reproduction at 10⁴ peers. This index answers the
//! same queries in O(log n) by maintaining, under the engine's delta
//! feed (DESIGN.md §13):
//!
//! * a Fenwick tree over the online bitmap (O1),
//! * a Fenwick tree over "online with unused fanout" (O2a),
//! * per-delay sorted id sets of online rooted peers (O3), plus the
//!   free-fanout subset of each (O2b).
//!
//! # Draw-order contract
//!
//! Every sampler consumes **exactly** the RNG stream of the naive
//! reference path: one `rng.index(count)` draw when any candidate
//! exists, none otherwise. O1/O2a enumerate candidates in id order —
//! the historical order — so they are bit-compatible with the original
//! scan. O3/O2b enumerate in *(delay asc, id asc)* order, the only
//! order the bucketed index can serve in O(log n); the naive
//! implementations in [`crate::oracle`] use the same order, so indexed
//! and unindexed runs stay bit-identical (the distribution is uniform
//! over the same candidate set either way).
//!
//! All mirror updates are idempotent — the index recomputes each peer's
//! target membership from its mirrored online bit, so replaying stale
//! deltas after an online transition converges to the current overlay
//! state.

use lagover_sim::SimRng;

use crate::node::{Member, PeerId, Population};
use crate::overlay::Overlay;

/// Packed "not in any delay bucket" sentinel (offline or unrooted).
const DELAY_NONE: u32 = u32::MAX;

/// Target size of one [`IdSet`] block; blocks split at twice this.
const BLOCK: usize = 512;

/// A Fenwick (binary indexed) tree over 0/1 slot occupancy, supporting
/// O(log n) point update, prefix count, and k-th-member selection.
#[derive(Debug, Clone)]
struct Fenwick {
    /// 1-based tree; `tree[0]` unused.
    tree: Vec<u32>,
    total: u32,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
            total: 0,
        }
    }

    /// Adds `delta` (±1) to slot `i` (0-based).
    fn add(&mut self, i: usize, delta: i32) {
        self.total = (i64::from(self.total) + i64::from(delta)) as u32;
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (i64::from(self.tree[i]) + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of set slots with index `< i`.
    fn prefix(&self, i: usize) -> u32 {
        let mut sum = 0;
        let mut i = i;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// 0-based index of the `(k+1)`-th set slot (`k < total`).
    fn select(&self, mut k: u32) -> usize {
        debug_assert!(k < self.total);
        let mut pos = 0usize;
        let mut mask = (self.tree.len() - 1).next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] <= k {
                pos = next;
                k -= self.tree[next];
            }
            mask >>= 1;
        }
        pos
    }
}

/// A sorted set of peer ids stored as a list of bounded sorted blocks:
/// O(√n)-ish insert/remove, O(blocks) select and rank. Block count
/// stays small because bucket populations are a fraction of n.
#[derive(Debug, Clone, Default)]
struct IdSet {
    blocks: Vec<Vec<u32>>,
    len: usize,
}

impl IdSet {
    fn len(&self) -> usize {
        self.len
    }

    /// Index of the block that holds (or should hold) `id`.
    fn block_for(&self, id: u32) -> usize {
        self.blocks
            .partition_point(|b| *b.last().expect("blocks are never empty") < id)
            .min(self.blocks.len().saturating_sub(1))
    }

    fn insert(&mut self, id: u32) {
        self.len += 1;
        if self.blocks.is_empty() {
            self.blocks.push(vec![id]);
            return;
        }
        let bi = self.block_for(id);
        let block = &mut self.blocks[bi];
        let pos = block.partition_point(|&x| x < id);
        debug_assert!(pos >= block.len() || block[pos] != id, "duplicate insert");
        block.insert(pos, id);
        if block.len() > 2 * BLOCK {
            let tail = block.split_off(BLOCK);
            self.blocks.insert(bi + 1, tail);
        }
    }

    fn remove(&mut self, id: u32) {
        let bi = self.block_for(id);
        let block = &mut self.blocks[bi];
        let pos = block.partition_point(|&x| x < id);
        debug_assert!(pos < block.len() && block[pos] == id, "remove of absent id");
        block.remove(pos);
        if block.is_empty() {
            self.blocks.remove(bi);
        }
        self.len -= 1;
    }

    /// The `(k+1)`-th smallest member (`k < len`).
    fn select(&self, mut k: usize) -> u32 {
        for block in &self.blocks {
            if k < block.len() {
                return block[k];
            }
            k -= block.len();
        }
        unreachable!("select index out of range")
    }

    /// Number of members `< id`.
    fn rank(&self, id: u32) -> usize {
        let mut rank = 0;
        for block in &self.blocks {
            if *block.last().expect("blocks are never empty") < id {
                rank += block.len();
            } else {
                return rank + block.partition_point(|&x| x < id);
            }
        }
        rank
    }
}

/// The engine-owned sampling index. Rebuilt in O(n log n) from any
/// overlay/online state ([`OracleIndex::build`]); kept current through
/// [`OracleIndex::note_delay`] / [`OracleIndex::note_free_fanout`]
/// (fed by the overlay's delta records) and
/// [`OracleIndex::set_online`] / [`OracleIndex::set_offline`] (called
/// at membership transitions).
#[derive(Debug, Clone)]
pub(crate) struct OracleIndex {
    /// Online peers, by id (O1's candidate set).
    online_fw: Fenwick,
    /// Online peers with unused fanout, by id (O2a's candidate set).
    free_fw: Fenwick,
    /// Online rooted peers bucketed by `DelayAt` (O3's candidate set).
    by_delay: Vec<IdSet>,
    /// The unused-fanout subset of each delay bucket (O2b).
    free_by_delay: Vec<IdSet>,
    /// Mirror of the engine's online bitmap.
    online: Vec<bool>,
    /// Whether the peer is currently a member of `free_fw`.
    in_free: Vec<bool>,
    /// The delay bucket each peer currently occupies ([`DELAY_NONE`]
    /// when in none).
    delay: Vec<u32>,
}

impl OracleIndex {
    /// Builds the index from scratch for the given state.
    pub(crate) fn build(overlay: &Overlay, population: &Population, online: &[bool]) -> Self {
        let n = population.len();
        let mut index = OracleIndex {
            online_fw: Fenwick::new(n),
            free_fw: Fenwick::new(n),
            by_delay: Vec::new(),
            free_by_delay: Vec::new(),
            online: vec![false; n],
            in_free: vec![false; n],
            delay: vec![DELAY_NONE; n],
        };
        for (i, &on) in online.iter().enumerate() {
            if on {
                index.set_online(PeerId::new(i as u32), overlay);
            }
        }
        index
    }

    /// Marks `p` online, pulling its free-fanout and delay state from
    /// the (current) overlay.
    pub(crate) fn set_online(&mut self, p: PeerId, overlay: &Overlay) {
        if !self.online[p.index()] {
            self.online[p.index()] = true;
            self.online_fw.add(p.index(), 1);
        }
        self.note_free_fanout(p, overlay.has_free_fanout(Member::Peer(p)));
        self.note_delay(p, overlay.delay(p));
    }

    /// Marks `p` offline, removing it from every candidate set.
    pub(crate) fn set_offline(&mut self, p: PeerId) {
        if self.online[p.index()] {
            self.online[p.index()] = false;
            self.online_fw.add(p.index(), -1);
        }
        // With the online mirror cleared, both target memberships
        // resolve to "absent" regardless of the hint arguments.
        self.note_free_fanout(p, false);
        self.note_delay(p, None);
    }

    /// Applies a free-fanout change: `has_free` is the overlay's
    /// current answer for `p`.
    pub(crate) fn note_free_fanout(&mut self, p: PeerId, has_free: bool) {
        let i = p.index();
        let target = self.online[i] && has_free;
        if self.in_free[i] == target {
            return;
        }
        self.in_free[i] = target;
        self.free_fw.add(i, if target { 1 } else { -1 });
        let d = self.delay[i];
        if d != DELAY_NONE {
            if target {
                self.free_by_delay[d as usize].insert(p.get());
            } else {
                self.free_by_delay[d as usize].remove(p.get());
            }
        }
    }

    /// Applies a delay-cache change: `new` is the overlay's current
    /// `DelayAt(p)`.
    pub(crate) fn note_delay(&mut self, p: PeerId, new: Option<u32>) {
        let i = p.index();
        let target = if self.online[i] {
            new.unwrap_or(DELAY_NONE)
        } else {
            DELAY_NONE
        };
        let old = self.delay[i];
        if old == target {
            return;
        }
        if old != DELAY_NONE {
            self.by_delay[old as usize].remove(p.get());
            if self.in_free[i] {
                self.free_by_delay[old as usize].remove(p.get());
            }
        }
        if target != DELAY_NONE {
            let d = target as usize;
            if d >= self.by_delay.len() {
                self.by_delay.resize_with(d + 1, IdSet::default);
                self.free_by_delay.resize_with(d + 1, IdSet::default);
            }
            self.by_delay[d].insert(p.get());
            if self.in_free[i] {
                self.free_by_delay[d].insert(p.get());
            }
        }
        self.delay[i] = target;
    }

    /// O1: uniform over online peers other than the enquirer.
    pub(crate) fn sample_uniform(&self, enquirer: PeerId, rng: &mut SimRng) -> Option<PeerId> {
        self.sample_fenwick(
            &self.online_fw,
            self.online[enquirer.index()],
            enquirer,
            rng,
        )
    }

    /// O2a: uniform over online peers with unused fanout.
    pub(crate) fn sample_free_capacity(
        &self,
        enquirer: PeerId,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        self.sample_fenwick(&self.free_fw, self.in_free[enquirer.index()], enquirer, rng)
    }

    /// O3: uniform over online rooted peers with `DelayAt < l`.
    pub(crate) fn sample_delay_below(
        &self,
        enquirer: PeerId,
        l: u32,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        // `DELAY_NONE` is `u32::MAX`, so `delay < l` also implies the
        // enquirer occupies a bucket.
        let enq_in = self.delay[enquirer.index()] < l;
        self.sample_buckets(&self.by_delay, enq_in, enquirer, l, rng)
    }

    /// O2b: O3 restricted to peers with unused fanout.
    pub(crate) fn sample_delay_below_free(
        &self,
        enquirer: PeerId,
        l: u32,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        let enq_in = self.delay[enquirer.index()] < l && self.in_free[enquirer.index()];
        self.sample_buckets(&self.free_by_delay, enq_in, enquirer, l, rng)
    }

    /// One draw over a Fenwick candidate set, skipping the enquirer —
    /// candidates enumerated in id order, matching the naive scan.
    fn sample_fenwick(
        &self,
        fw: &Fenwick,
        enq_in: bool,
        enquirer: PeerId,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        let mut count = fw.total as usize;
        if enq_in {
            count -= 1;
        }
        if count == 0 {
            return None;
        }
        let mut k = rng.index(count) as u32;
        if enq_in && k >= fw.prefix(enquirer.index()) {
            // The k-th non-enquirer candidate sits one past the
            // enquirer's own slot.
            k += 1;
        }
        Some(PeerId::new(fw.select(k) as u32))
    }

    /// One draw over the first `l` delay buckets, skipping the
    /// enquirer — candidates enumerated in (delay asc, id asc) order.
    fn sample_buckets(
        &self,
        buckets: &[IdSet],
        enq_in: bool,
        enquirer: PeerId,
        l: u32,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        let lim = (l as usize).min(buckets.len());
        let mut count: usize = buckets[..lim].iter().map(IdSet::len).sum();
        if enq_in {
            count -= 1;
        }
        if count == 0 {
            return None;
        }
        let mut k = rng.index(count);
        if enq_in {
            let ed = self.delay[enquirer.index()] as usize;
            let rank = buckets[..ed].iter().map(IdSet::len).sum::<usize>()
                + buckets[ed].rank(enquirer.get());
            if k >= rank {
                k += 1;
            }
        }
        for set in &buckets[..lim] {
            if k < set.len() {
                return Some(PeerId::new(set.select(k)));
            }
            k -= set.len();
        }
        unreachable!("count covers the scanned buckets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_add_prefix_select_agree_with_a_bitmap() {
        let n = 67;
        let mut fw = Fenwick::new(n);
        let mut bits = vec![false; n];
        // Deterministic pseudo-random membership churn.
        let mut x = 9u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % n;
            if bits[i] {
                bits[i] = false;
                fw.add(i, -1);
            } else {
                bits[i] = true;
                fw.add(i, 1);
            }
            let total = bits.iter().filter(|&&b| b).count();
            assert_eq!(fw.total as usize, total);
            for probe in [0, 1, n / 2, n] {
                let expect = bits[..probe].iter().filter(|&&b| b).count();
                assert_eq!(fw.prefix(probe) as usize, expect, "prefix({probe})");
            }
            let members: Vec<usize> = (0..n).filter(|&i| bits[i]).collect();
            for (k, &m) in members.iter().enumerate() {
                assert_eq!(fw.select(k as u32), m, "select({k})");
            }
        }
    }

    #[test]
    fn idset_tracks_a_sorted_vec_through_churn() {
        let mut set = IdSet::default();
        let mut reference: Vec<u32> = Vec::new();
        let mut x = 3u64;
        for _ in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (x >> 40) as u32 % 2_048;
            match reference.binary_search(&id) {
                Ok(pos) => {
                    reference.remove(pos);
                    set.remove(id);
                }
                Err(pos) => {
                    reference.insert(pos, id);
                    set.insert(id);
                }
            }
        }
        assert_eq!(set.len(), reference.len());
        for (k, &id) in reference.iter().enumerate() {
            assert_eq!(set.select(k), id);
            assert_eq!(set.rank(id), k);
        }
        // Rank of an absent id is its insertion point.
        assert_eq!(set.rank(u32::MAX), reference.len());
    }

    #[test]
    fn idset_splits_oversized_blocks() {
        let mut set = IdSet::default();
        for id in 0..(3 * BLOCK as u32) {
            set.insert(id);
        }
        assert!(set.blocks.len() >= 2, "grown past one block");
        assert!(set.blocks.iter().all(|b| b.len() <= 2 * BLOCK));
        for id in 0..(3 * BLOCK as u32) {
            assert_eq!(set.select(id as usize), id);
        }
    }
}
