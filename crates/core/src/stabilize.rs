//! Self-stabilization from arbitrary corrupted state.
//!
//! Two halves of one robustness story:
//!
//! * **Injection** — [`apply_corruption`] interprets a
//!   `lagover_sim::CorruptionPlan` against a live engine, mutating the
//!   overlay's raw state (parent pointers, child lists, cached chain
//!   roots, advertised fanouts) into shapes [`Overlay::validate`]
//!   rejects: parent cycles, forged caches, dangling pointers, fanout
//!   overflows, orphaned-subtree grafts, stale `ChainRoot` entries.
//! * **Detection and repair** — [`verify`] runs at the top of every
//!   peer action (the `stabilize` maintenance rule): the peer checks
//!   its own cached chain state against its parent's actual reply and
//!   its child list against each child's actual pointer. On a valid
//!   overlay every check is a pure comparison — no RNG draw, no
//!   counter, no event — so corruption-free runs are byte-identical to
//!   builds without the rule. On an inconsistency the peer emits
//!   `InconsistencyDetected` (with a cause from the
//!   [`InconsistencyCause`] taxonomy), repairs with the *least*
//!   destructive local action — cache rewrite, child eviction, fanout
//!   restoration — and falls back to the detach/re-attach ladder
//!   (`RepairKind::Detach`) only when the edge itself is the lie.
//!
//! Convergence (proved as a property test at n ∈ {16, 120, 1000}; the
//! bound is argued in DESIGN.md §15): every forged cache is rewritten
//! the first time its owner acts; any parent cycle contains at least
//! one edge violating `hops(p) == hops(parent) + 1` (hops cannot
//! strictly increase around a cycle), so some member detects a
//! mismatch, and its bounded [`Overlay::checked_walk`] names the cycle
//! and detaches it; one-sided edges are detected from both ends
//! (`BrokenBacklink` by the child, `ForeignChild` by the parent), and
//! either repair alone restores consistency. Each round strictly
//! shrinks the set of inconsistent local states, and the ordinary
//! construction protocol re-attaches the detached remainder.

use lagover_obs::{InconsistencyCause, RepairKind};
use lagover_sim::{CorruptionClass, CorruptionPlan};

use crate::engine::Engine;
use crate::node::{Member, PeerId};
use crate::overlay::ChainRoot;

/// Applies a corruption plan to the engine's current overlay as a
/// one-shot snapshot mutation, returning the number of peer states
/// mutated. Victim choice and payloads come entirely from the plan's
/// own seeded streams — the engine's RNG is never touched, so a plan
/// with no effect leaves the run byte-identical.
///
/// A non-zero application flips the engine into stabilizing mode
/// (suspending the round-end invariant assertions that corrupted state
/// is *supposed* to fail) and rebuilds the oracle index, since cached
/// delays may have been forged wholesale.
pub fn apply_corruption(engine: &mut Engine, plan: &CorruptionPlan) -> u64 {
    if plan.is_empty() {
        return 0;
    }
    let n = engine.population().len();
    let mut injected = 0u64;
    for &class in plan.classes() {
        for v in plan.victims(class, n) {
            if corrupt_one(engine, plan, class, PeerId::new(v)) {
                injected += 1;
            }
        }
    }
    if injected > 0 {
        engine.counters.corruptions_injected += injected;
        engine.begin_stabilizing();
    }
    injected
}

/// Applies one corruption of `class` to peer `p`. Returns whether any
/// state actually changed (a victim with no children cannot overflow a
/// fanout, for example).
fn corrupt_one(
    engine: &mut Engine,
    plan: &CorruptionPlan,
    class: CorruptionClass,
    p: PeerId,
) -> bool {
    let n = engine.population().len() as u64;
    let payload = plan.payload(class, p.get());
    let overlay = &mut engine.overlay;
    match class {
        CorruptionClass::ParentCycle => {
            let old_parent = overlay.parent(p);
            let kids = overlay.children(p);
            if let Some(&c) = kids.get((payload % kids.len().max(1) as u64) as usize) {
                // Splice p under its own child: a genuine cycle, with
                // the backlink added when a slot is free so the only
                // local evidence is the hops contradiction.
                if let Some(parent) = old_parent {
                    overlay.evict_child(parent, p);
                }
                overlay.raw_set_parent(p, Some(Member::Peer(c)));
                overlay.raw_add_child(c, p);
            } else {
                // Childless victim: the degenerate one-node cycle.
                if let Some(parent) = old_parent {
                    overlay.evict_child(parent, p);
                }
                overlay.raw_set_parent(p, Some(Member::Peer(p)));
                overlay.raw_add_child(p, p);
            }
            true
        }
        CorruptionClass::ForgedCache => {
            let hops = (payload % (n + 1)) as u32;
            let root = if payload & 1 == 1 {
                ChainRoot::Source
            } else {
                ChainRoot::Fragment(p)
            };
            // Guarantee an actual change.
            let hops = if root == overlay.root(p) && hops == overlay.hops_to_root(p) {
                hops.wrapping_add(1)
            } else {
                hops
            };
            overlay.raw_set_cache(p, root, hops);
            true
        }
        CorruptionClass::DanglingParent => {
            if n < 2 {
                return false;
            }
            let mut target = (payload % n) as u32;
            if target == p.get() {
                target = (target + 1) % n as u32;
            }
            // One-sided overwrite: the old parent keeps listing p
            // (ForeignChild there) and the new target never agreed to
            // serve p (BrokenBacklink here).
            overlay.raw_set_parent(p, Some(Member::Peer(PeerId::new(target))));
            true
        }
        CorruptionClass::FanoutOverflow => {
            let kids = overlay.children(p).len() as u64;
            if kids == 0 {
                return false;
            }
            // Forge the advertised fanout strictly below the live child
            // count (children physically cannot exceed the build-time
            // capacity, so overflow can only be forged downward).
            overlay.raw_set_fanout(p, (payload % kids) as u32);
            true
        }
        CorruptionClass::OrphanGraft => {
            // Graft p into a child list that never adopted it; index n
            // selects the source, whose list is unbounded and therefore
            // also models fanout overflow at the root.
            let t = payload % (n + 1);
            if t == n || t == u64::from(p.get()) {
                overlay.raw_push_source_child(p);
                true
            } else {
                overlay.raw_add_child(PeerId::new(t as u32), p) || {
                    overlay.raw_push_source_child(p);
                    true
                }
            }
        }
        CorruptionClass::StaleRoot => {
            match overlay.parent(p) {
                None => {
                    // Already a fragment root: forge its cache to claim
                    // the chain reaches the source.
                    overlay.raw_set_cache(p, ChainRoot::Source, (payload % n) as u32 + 1);
                }
                Some(parent) => {
                    // Cut p loose one-sidedly, leaving its whole
                    // subtree's caches claiming the old root.
                    overlay.evict_child(parent, p);
                    overlay.raw_set_parent(p, None);
                }
            }
            true
        }
    }
}

/// The detect-and-repair half of the stabilize rule: one bounded local
/// verification for `p`, run at the top of its per-round action.
/// Returns whether an inconsistency was found (in which case the repair
/// consumed `p`'s action for this round).
///
/// On a valid overlay every branch reduces to equality checks on cached
/// state — no RNG, no counters, no allocation — which is what keeps
/// corruption-free runs byte-identical.
pub(crate) fn verify(engine: &mut Engine, p: PeerId) -> bool {
    let parent = engine.overlay.parent(p);

    // A peer listing itself as its own parent can never receive the
    // feed; break the degenerate cycle immediately.
    if parent == Some(Member::Peer(p)) {
        engine.note_inconsistency(p, InconsistencyCause::SelfParent);
        engine.overlay.heal_self_parent(p);
        engine.proto[p.index()].reset();
        engine.note_repair(p, RepairKind::Detach);
        return true;
    }

    // Children are polled every round anyway; a listed child whose own
    // pointer disagrees is a grafted or half-spliced entry. A child
    // listed *twice* is a ghost: a stale entry left behind by a
    // one-sided corruption that the victim later re-attached over, so
    // both entries carry a consistent backlink and only the duplicate
    // scan can see it. Ghosts silently pin a child slot, shrinking the
    // overlay's usable capacity below the sufficiency bound.
    let kids = engine.overlay.children(p);
    let foreign = kids
        .iter()
        .enumerate()
        .find(|&(k, &c)| {
            engine.overlay.parent(c) != Some(Member::Peer(p)) || kids[..k].contains(&c)
        })
        .map(|(_, &c)| c);
    if let Some(c) = foreign {
        engine.note_inconsistency(p, InconsistencyCause::ForeignChild);
        engine.overlay.evict_child(Member::Peer(p), c);
        engine.note_repair(p, RepairKind::ChildEvict);
        return true;
    }

    // An advertised fanout that disagrees with the build-time capacity
    // was forged — too high overflows the child list, too low silently
    // hides capacity the overlay needs (a detached peer advertising 0
    // can never adopt a displacement victim, deadlocking repair).
    // Restoring the constraint the peer itself knows is always correct.
    if engine.overlay.advertised_fanout(p) != engine.overlay.child_capacity(p) {
        engine.note_inconsistency(p, InconsistencyCause::FanoutOverflow);
        engine.overlay.restore_fanout(p);
        engine.note_repair(p, RepairKind::FanoutRestore);
        return true;
    }

    match parent {
        None => {
            // A fragment root's cache must say so; anything else is a
            // stale ChainRoot entry that would fool `DelayAt`.
            if engine.overlay.root(p) != ChainRoot::Fragment(p)
                || engine.overlay.hops_to_root(p) != 0
            {
                engine.note_inconsistency(p, InconsistencyCause::StaleRoot);
                engine.overlay.raw_set_cache(p, ChainRoot::Fragment(p), 0);
                engine.note_repair(p, RepairKind::CacheRewrite);
                return true;
            }
        }
        Some(parent) => {
            // The parent's reply to the round's liveness probe carries
            // its child list; a parent that does not list p never
            // agreed to serve it.
            let listed = match parent {
                Member::Source => engine.overlay.source_children().contains(&p),
                Member::Peer(q) => engine.overlay.children(q).contains(&p),
            };
            if !listed {
                engine.note_inconsistency(p, InconsistencyCause::BrokenBacklink);
                engine.stabilize_detach(p);
                return true;
            }
            // The same reply carries the parent's cached (root, hops);
            // p's cache must sit exactly one hop below it.
            let (parent_root, parent_hops) = match parent {
                Member::Source => (ChainRoot::Source, 0),
                Member::Peer(q) => (engine.overlay.root(q), engine.overlay.hops_to_root(q)),
            };
            if engine.overlay.root(p) != parent_root
                || engine.overlay.hops_to_root(p) != parent_hops + 1
            {
                // A local mismatch either means a stale cache somewhere
                // on the chain or a genuine cycle; the bounded walk
                // distinguishes the two.
                match engine.overlay.checked_walk(p) {
                    Err(_) => {
                        engine.note_inconsistency(p, InconsistencyCause::Cycle);
                        engine.stabilize_detach(p);
                    }
                    Ok((true_root, true_hops)) => {
                        engine.note_inconsistency(p, InconsistencyCause::CacheMismatch);
                        if engine.overlay.root(p) != true_root
                            || engine.overlay.hops_to_root(p) != true_hops
                        {
                            engine.overlay.raw_set_cache(p, true_root, true_hops);
                            engine.note_repair(p, RepairKind::CacheRewrite);
                        }
                        // Otherwise p's cache already matches the chain
                        // walk — the *parent's* cache is the forged one,
                        // and its own verification rewrites it.
                    }
                }
                return true;
            }
        }
    }
    false
}

/// The engine-side stabilization sweep, run once per round while the
/// engine is in stabilizing mode. Covers the two inconsistencies no
/// peer action can reach:
///
/// * the **source's** child list (the source never runs `act_on`) —
///   foreign and duplicate entries are evicted, which also clears any
///   grafted overflow of the source fanout;
/// * **detected crash victims** — a corpse never acts, so edges a
///   corruption re-created on it (a dangling parent pointer, grafted
///   children) are reclaimed here, exactly like the original
///   post-detection reclaim.
pub(crate) fn sweep(engine: &mut Engine) {
    // Source list: entry c is legitimate iff c's own pointer says
    // source *and* this is its first occurrence.
    loop {
        let stale = engine
            .overlay
            .source_children()
            .iter()
            .enumerate()
            .find(|&(i, &c)| {
                engine.overlay.parent(c) != Some(Member::Source)
                    || engine.overlay.source_children()[..i].contains(&c)
            })
            .map(|(_, &c)| c);
        let Some(c) = stale else { break };
        engine.note_inconsistency(c, InconsistencyCause::ForeignChild);
        engine.overlay.evict_child(Member::Source, c);
        engine.note_repair(c, RepairKind::ChildEvict);
    }

    // Fully-detected corpses must stay edge-free.
    for i in 0..engine.online.len() {
        if !engine.crashed[i] || engine.crash_silent[i] < engine.config.detection_timeout {
            continue;
        }
        let p = PeerId::new(i as u32);
        if engine.overlay.parent(p).is_some() || !engine.overlay.children(p).is_empty() {
            engine.note_inconsistency(p, InconsistencyCause::BrokenBacklink);
            let orphans = engine.overlay.remove_peer(p);
            for orphan in orphans {
                engine.proto[orphan.index()].reset();
            }
            engine.note_repair(p, RepairKind::Reclaim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::node::{Constraints, Population};
    use crate::oracle::OracleKind;
    use lagover_sim::FaultPlan;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    /// Source feeds 2; enough slack for any single-peer damage.
    fn population() -> Population {
        Population::new(
            2,
            vec![
                Constraints::new(3, 1),
                Constraints::new(3, 2),
                Constraints::new(1, 3),
                Constraints::new(1, 3),
                Constraints::new(0, 4),
                Constraints::new(0, 4),
            ],
        )
    }

    fn converged_engine(seed: u64) -> Engine {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(3_000);
        let mut engine = Engine::new(&population(), &config, seed);
        engine.run_to_convergence().expect("converges");
        engine
    }

    fn heal(engine: &mut Engine, horizon: u64) -> Option<u64> {
        for round in 1..=horizon {
            engine.step();
            if engine.overlay().validate().is_ok()
                && engine.is_converged()
                && engine.stale_chain_count() == 0
            {
                engine.set_stabilizing(false);
                return Some(round);
            }
        }
        None
    }

    #[test]
    fn every_class_applies_and_heals() {
        for class in CorruptionClass::ALL {
            let mut engine = converged_engine(11);
            let plan = CorruptionPlan::new(7).with_class(class).with_severity(0.5);
            let injected = apply_corruption(&mut engine, &plan);
            assert!(injected > 0, "{class}: nothing injected");
            assert!(engine.stabilizing());
            let healed = heal(&mut engine, 600);
            assert!(healed.is_some(), "{class}: did not re-stabilize");
            assert!(engine.counters().inconsistencies_detected > 0, "{class}");
            assert_eq!(engine.counters().corruptions_injected, injected);
        }
    }

    #[test]
    fn structural_classes_break_validation() {
        for class in [
            CorruptionClass::ParentCycle,
            CorruptionClass::DanglingParent,
            CorruptionClass::OrphanGraft,
            CorruptionClass::FanoutOverflow,
        ] {
            let mut engine = converged_engine(13);
            let plan = CorruptionPlan::new(3).with_class(class).with_severity(0.5);
            assert!(apply_corruption(&mut engine, &plan) > 0);
            assert!(
                engine.overlay().validate().is_err(),
                "{class}: snapshot still validates"
            );
        }
    }

    #[test]
    fn empty_plan_is_a_strict_no_op() {
        let mut a = converged_engine(17);
        let b = converged_engine(17);
        assert_eq!(apply_corruption(&mut a, &CorruptionPlan::new(9)), 0);
        assert!(!a.stabilizing());
        assert_eq!(
            a.snapshot().to_json_string(),
            b.snapshot().to_json_string(),
            "an empty plan must not perturb the engine"
        );
    }

    #[test]
    fn self_parent_loop_is_healed_in_one_action() {
        let mut engine = converged_engine(19);
        let victim = p(2);
        if let Some(parent) = engine.overlay().parent(victim) {
            engine.overlay.evict_child(parent, victim);
        }
        engine
            .overlay
            .raw_set_parent(victim, Some(Member::Peer(victim)));
        engine.overlay.raw_add_child(victim, victim);
        engine.begin_stabilizing();
        assert!(engine.overlay().validate().is_err());
        assert!(verify(&mut engine, victim), "self-parent detected");
        assert_eq!(engine.overlay().parent(victim), None);
        assert!(!engine.overlay().children(victim).contains(&victim));
        assert!(heal(&mut engine, 400).is_some());
    }

    #[test]
    fn two_node_cycle_is_detected_and_broken() {
        let mut engine = converged_engine(23);
        // Find a parent-child pair of real peers and splice the parent
        // under the child.
        let (a, b) = population()
            .peer_ids()
            .find_map(|q| match engine.overlay().parent(q) {
                Some(Member::Peer(parent)) => Some((parent, q)),
                _ => None,
            })
            .expect("a converged tree on 6 peers has a peer-peer edge");
        if let Some(grand) = engine.overlay().parent(a) {
            engine.overlay.evict_child(grand, a);
        }
        engine.overlay.raw_set_parent(a, Some(Member::Peer(b)));
        engine.overlay.raw_add_child(b, a);
        engine.begin_stabilizing();
        assert!(engine.overlay().validate().is_err());
        assert!(
            heal(&mut engine, 600).is_some(),
            "cycle broken and re-converged"
        );
        assert!(engine.counters().inconsistencies_detected > 0);
    }

    #[test]
    fn ghost_duplicate_child_entry_is_evicted() {
        // A one-sided corruption leaves a stale entry at the old
        // parent; if the victim detaches and re-attaches to that same
        // parent before the stale entry is evicted, the list holds the
        // child twice with a consistent backlink — invisible to the
        // foreign-child rule alone, and silently pinning a child slot
        // the sufficiency bound counts on.
        let pop = Population::new(
            1,
            vec![
                Constraints::new(3, 1),
                Constraints::new(0, 2),
                Constraints::new(0, 9),
            ],
        );
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
        let mut engine = Engine::new(&pop, &config, 1);
        engine.overlay.attach(p(0), Member::Source).unwrap();
        engine.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        // Dangling-parent corruption: p1's pointer forged to p2, while
        // p0 keeps listing p1.
        engine
            .overlay
            .raw_set_parent(p(1), Some(Member::Peer(p(2))));
        engine.begin_stabilizing();
        // p1 verifies first: p2 never agreed to serve it.
        assert!(verify(&mut engine, p(1)), "broken backlink detected");
        assert_eq!(engine.overlay.parent(p(1)), None);
        // p1 re-attaches to p0 before p0 acts: a second, fully
        // consistent entry lands next to the stale one.
        engine.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        assert_eq!(
            engine
                .overlay
                .children(p(0))
                .iter()
                .filter(|&&c| c == p(1))
                .count(),
            2,
            "the stale entry plus the re-attach make a ghost"
        );
        // p0's own verification names the ghost and evicts exactly one
        // occurrence; the surviving edge stays consistent.
        assert!(verify(&mut engine, p(0)), "ghost detected");
        assert_eq!(engine.overlay.children(p(0)), &[p(1)]);
        assert_eq!(engine.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert!(!verify(&mut engine, p(0)), "clean after one eviction");
        assert!(!verify(&mut engine, p(1)), "backlink still consistent");
    }

    #[test]
    fn corruption_of_a_detected_corpse_is_reclaimed_by_the_sweep() {
        let mut engine = converged_engine(29);
        let victim = p(1);
        engine.inject_crash(victim);
        for _ in 0..=u64::from(engine.config().detection_timeout) {
            engine.step();
        }
        assert_eq!(engine.overlay().parent(victim), None, "already reclaimed");
        // The adversary re-wires the corpse: a dangling parent pointer
        // and a grafted child entry.
        let plan = CorruptionPlan::new(5)
            .with_class(CorruptionClass::DanglingParent)
            .with_severity(1.0);
        assert!(apply_corruption(&mut engine, &plan) > 0);
        assert!(
            heal(&mut engine, 600).is_some(),
            "corpse edges reclaimed and survivors re-converged"
        );
        assert_eq!(engine.overlay().parent(victim), None);
        assert!(engine.overlay().children(victim).is_empty());
    }

    #[test]
    fn corruption_during_an_oracle_blackout_still_heals() {
        let mut engine = converged_engine(31);
        let blackout_start = engine.round().get();
        engine.set_faults(FaultPlan::none().with_blackout(blackout_start, 30));
        let plan = CorruptionPlan::new(41)
            .with_all_classes()
            .with_severity(0.4);
        assert!(apply_corruption(&mut engine, &plan) > 0);
        assert!(
            heal(&mut engine, 1_200).is_some(),
            "the timeout ladder routes repairs around the outage"
        );
        assert!(
            engine.counters().oracle_outages > 0,
            "blackout was exercised"
        );
    }

    #[test]
    fn verification_is_silent_on_a_valid_overlay() {
        let mut engine = converged_engine(37);
        let draws = engine.rng_draws();
        for q in population().peer_ids() {
            assert!(!verify(&mut engine, q), "false positive at {q}");
        }
        assert_eq!(engine.rng_draws(), draws, "verification draws no RNG");
        assert_eq!(engine.counters().inconsistencies_detected, 0);
        assert_eq!(engine.counters().repair_actions, 0);
    }
}
