//! The overlay forest: parent/child links, delay and root queries, and
//! the invariant-checked mutation primitives every construction
//! algorithm is built from.
//!
//! During construction the overlay is a *forest*: fragments whose roots
//! are still looking for a parent, plus the tree rooted at the source.
//! The paper's local knowledge assumptions (§2.1.3) — every node knows
//! `Parent()`, `Children()`, `Root()` and `DelayAt()` of its chain — map
//! to the query methods here. `DelayAt` follows the worked example of
//! §3.2: a direct child of the source observes delay 1 (one pull
//! interval), and every further hop adds one time unit, i.e.
//! `DelayAt(i) = depth(i)`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::{Member, PeerId, Population};

/// Root of a peer's chain: either the source (the chain can actually
/// receive the feed) or the topmost parent-less peer of a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChainRoot {
    /// The chain reaches node 0; `DelayAt` is real.
    Source,
    /// The chain dangles from a fragment root still seeking a parent.
    Fragment(PeerId),
}

/// Why a mutation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayError {
    /// The child already has a parent (detach first).
    HasParent,
    /// The prospective parent has no unused fanout.
    ParentFull,
    /// The attachment would create a cycle (the parent is in the
    /// child's subtree).
    WouldCycle,
    /// A peer may not adopt itself.
    SelfParent,
    /// The peer has no parent to detach from.
    NoParent,
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            OverlayError::HasParent => "child already has a parent",
            OverlayError::ParentFull => "parent fanout is fully used",
            OverlayError::WouldCycle => "attachment would create a cycle",
            OverlayError::SelfParent => "a peer cannot be its own parent",
            OverlayError::NoParent => "peer has no parent",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for OverlayError {}

/// The dissemination forest over a fixed population.
///
/// # Example
///
/// ```
/// use lagover_core::node::{Constraints, Member, PeerId, Population};
/// use lagover_core::overlay::Overlay;
///
/// let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 2)]);
/// let mut overlay = Overlay::new(&pop);
/// let (a, b) = (PeerId::new(0), PeerId::new(1));
/// overlay.attach(a, Member::Source)?;
/// overlay.attach(b, Member::Peer(a))?;
/// assert_eq!(overlay.delay(b), Some(2));
/// # Ok::<(), lagover_core::overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Overlay {
    source_fanout: u32,
    fanout: Vec<u32>,
    parent: Vec<Option<Member>>,
    children: Vec<Vec<PeerId>>,
    source_children: Vec<PeerId>,
    /// Cached chain root per peer, maintained incrementally on every
    /// mutation so [`Overlay::root`] and friends are O(1) instead of
    /// O(depth). A parent-less peer is its own fragment root.
    root: Vec<ChainRoot>,
    /// Cached hops-to-root per peer (0 for a fragment root; depth for a
    /// peer rooted at the source), kept in lockstep with `root`.
    hops: Vec<u32>,
    /// Reusable traversal stack for subtree cache updates. Always left
    /// empty between calls, so the derived `PartialEq` stays purely
    /// structural and serialization carries no transient state.
    #[serde(skip)]
    scratch: Vec<PeerId>,
}

impl Overlay {
    /// Creates an empty forest (every peer parent-less) for a population.
    pub fn new(population: &Population) -> Self {
        let n = population.len();
        Overlay {
            source_fanout: population.source_fanout(),
            fanout: population.iter().map(|(_, c)| c.fanout).collect(),
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            source_children: Vec::new(),
            root: (0..n)
                .map(|i| ChainRoot::Fragment(PeerId::new(i as u32)))
                .collect(),
            hops: vec![0; n],
            scratch: Vec::new(),
        }
    }

    /// Rewrites the cached root and shifts the cached hop count by
    /// `delta` for every peer in the subtree of `top` (including `top`).
    /// O(subtree size); this is the *only* place the caches change.
    fn update_subtree_cache(&mut self, top: PeerId, new_root: ChainRoot, delta: i64) {
        let mut stack = std::mem::take(&mut self.scratch);
        debug_assert!(stack.is_empty());
        stack.push(top);
        while let Some(s) = stack.pop() {
            let i = s.index();
            self.root[i] = new_root;
            self.hops[i] = (i64::from(self.hops[i]) + delta) as u32;
            stack.extend(self.children[i].iter().copied());
        }
        self.scratch = stack; // drained by the loop; capacity retained
    }

    /// Number of peers the forest was sized for.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest tracks no peers.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// `Parent(p)`, if any.
    pub fn parent(&self, p: PeerId) -> Option<Member> {
        self.parent[p.index()]
    }

    /// `Children(p)`.
    pub fn children(&self, p: PeerId) -> &[PeerId] {
        &self.children[p.index()]
    }

    /// Children of the source.
    pub fn source_children(&self) -> &[PeerId] {
        &self.source_children
    }

    /// Unused fanout of a member.
    pub fn free_fanout(&self, m: Member) -> u32 {
        match m {
            Member::Source => self.source_fanout - self.source_children.len() as u32,
            Member::Peer(p) => self.fanout[p.index()] - self.children[p.index()].len() as u32,
        }
    }

    /// Whether a member has unused fanout.
    pub fn has_free_fanout(&self, m: Member) -> bool {
        self.free_fanout(m) > 0
    }

    /// `Root(p)`: the source or the fragment root of `p`'s chain. O(1)
    /// via the incrementally maintained cache.
    pub fn root(&self, p: PeerId) -> ChainRoot {
        self.root[p.index()]
    }

    /// Whether `p`'s chain reaches the source. O(1).
    pub fn is_rooted(&self, p: PeerId) -> bool {
        matches!(self.root[p.index()], ChainRoot::Source)
    }

    /// Number of edges between `p` and its chain root (0 when `p` *is*
    /// the fragment root; depth when rooted at the source). O(1).
    pub fn hops_to_root(&self, p: PeerId) -> u32 {
        self.hops[p.index()]
    }

    /// `DelayAt(p)`: the actual observed delay, defined only when the
    /// chain reaches the source. A direct child of the source observes
    /// delay 1 (§3.2 worked example); each hop adds one time unit. O(1).
    pub fn delay(&self, p: PeerId) -> Option<u32> {
        match self.root[p.index()] {
            ChainRoot::Source => Some(self.hops[p.index()]),
            ChainRoot::Fragment(_) => None,
        }
    }

    /// The delay `p` *would* observe if its fragment root attached
    /// directly to the source — the optimistic estimate peers use when
    /// negotiating inside unrooted fragments. Equals [`Overlay::delay`]
    /// for rooted peers. O(1).
    pub fn speculative_delay(&self, p: PeerId) -> u32 {
        match self.root[p.index()] {
            ChainRoot::Source => self.hops[p.index()],
            ChainRoot::Fragment(_) => self.hops[p.index()] + 1,
        }
    }

    /// [`Overlay::root`] recomputed by walking the parent chain —
    /// O(depth). The reference implementation the cache is checked
    /// against (see [`Overlay::validate`] and the cache-coherence
    /// proptests/benchmarks); production code wants [`Overlay::root`].
    pub fn walk_root(&self, p: PeerId) -> ChainRoot {
        let mut current = p;
        loop {
            match self.parent[current.index()] {
                Some(Member::Source) => return ChainRoot::Source,
                Some(Member::Peer(q)) => current = q,
                None => return ChainRoot::Fragment(current),
            }
        }
    }

    /// [`Overlay::hops_to_root`] recomputed by walking the parent chain —
    /// O(depth). Reference implementation for cache-coherence checks.
    pub fn walk_hops_to_root(&self, p: PeerId) -> u32 {
        let mut hops = 0;
        let mut current = p;
        loop {
            match self.parent[current.index()] {
                Some(Member::Source) => return hops + 1,
                Some(Member::Peer(q)) => {
                    hops += 1;
                    current = q;
                }
                None => return hops,
            }
        }
    }

    /// [`Overlay::delay`] recomputed by walking the parent chain —
    /// O(depth). Reference implementation for cache-coherence checks.
    pub fn walk_delay(&self, p: PeerId) -> Option<u32> {
        match self.walk_root(p) {
            ChainRoot::Source => Some(self.walk_hops_to_root(p)),
            ChainRoot::Fragment(_) => None,
        }
    }

    /// Attaches `child` under `parent`.
    ///
    /// The child's entire subtree comes along (its own children keep
    /// their links), so the cycle check walks *up* from the parent.
    ///
    /// # Errors
    ///
    /// [`OverlayError::HasParent`], [`OverlayError::ParentFull`],
    /// [`OverlayError::SelfParent`], or [`OverlayError::WouldCycle`].
    pub fn attach(&mut self, child: PeerId, parent: Member) -> Result<(), OverlayError> {
        if parent == Member::Peer(child) {
            return Err(OverlayError::SelfParent);
        }
        if self.parent[child.index()].is_some() {
            return Err(OverlayError::HasParent);
        }
        if !self.has_free_fanout(parent) {
            return Err(OverlayError::ParentFull);
        }
        // A parent-less child is the root of its own fragment, so the
        // prospective parent descends from it iff the parent's cached
        // chain root *is* the child — an O(1) cycle check.
        let (new_root, base) = match parent {
            Member::Source => (ChainRoot::Source, 1),
            Member::Peer(p) => {
                if self.root[p.index()] == ChainRoot::Fragment(child) {
                    return Err(OverlayError::WouldCycle);
                }
                (self.root[p.index()], self.hops[p.index()] + 1)
            }
        };
        self.parent[child.index()] = Some(parent);
        match parent {
            Member::Source => self.source_children.push(child),
            Member::Peer(p) => self.children[p.index()].push(child),
        }
        // The child was a fragment root (hops 0), so its whole subtree
        // shifts down by the child's new depth and adopts the new root.
        debug_assert_eq!(self.hops[child.index()], 0);
        self.update_subtree_cache(child, new_root, i64::from(base));
        Ok(())
    }

    /// Detaches `child` from its parent (the paper's `j ↚ i`). The
    /// child keeps its own subtree and becomes a fragment root.
    ///
    /// # Errors
    ///
    /// [`OverlayError::NoParent`] if the child has no parent.
    pub fn detach(&mut self, child: PeerId) -> Result<Member, OverlayError> {
        let parent = self.parent[child.index()].ok_or(OverlayError::NoParent)?;
        self.parent[child.index()] = None;
        let list = match parent {
            Member::Source => &mut self.source_children,
            Member::Peer(p) => &mut self.children[p.index()],
        };
        let pos = list
            .iter()
            .position(|&c| c == child)
            .expect("parent/child link consistency");
        list.swap_remove(pos);
        // The detached subtree keeps its internal shape: every member's
        // depth drops by the child's old depth, rooted at the child.
        let old_hops = self.hops[child.index()];
        self.update_subtree_cache(child, ChainRoot::Fragment(child), -i64::from(old_hops));
        Ok(parent)
    }

    /// Removes a departing peer from the overlay (churn): detaches it
    /// from its parent and orphans each of its children, which keep
    /// their own subtrees and become fragment roots (§3.2 argues this
    /// reuse of past structure matters).
    ///
    /// Returns the orphaned children.
    pub fn remove_peer(&mut self, p: PeerId) -> Vec<PeerId> {
        if self.parent[p.index()].is_some() {
            self.detach(p).expect("checked parent");
        }
        let orphans = std::mem::take(&mut self.children[p.index()]);
        for &c in &orphans {
            self.parent[c.index()] = None;
            // After the detach above `c` sits at depth 1 under the
            // fragment root `p`; it now becomes its own fragment root.
            debug_assert_eq!(self.hops[c.index()], 1);
            self.update_subtree_cache(c, ChainRoot::Fragment(c), -1);
        }
        orphans
    }

    /// Iterates over the subtree of `p` (including `p`), breadth-first.
    pub fn subtree(&self, p: PeerId) -> Vec<PeerId> {
        let mut out = vec![p];
        let mut i = 0;
        while i < out.len() {
            out.extend(self.children[out[i].index()].iter().copied());
            i += 1;
        }
        out
    }

    /// Number of peers currently attached (having any parent).
    pub fn attached_count(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// Exhaustively checks structural invariants; used by tests and
    /// debug assertions. Cheap enough (O(n + edges)) to run after every
    /// round in test builds.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.source_children.len() as u32 > self.source_fanout {
            return Err(format!(
                "source fanout exceeded: {} > {}",
                self.source_children.len(),
                self.source_fanout
            ));
        }
        for (i, kids) in self.children.iter().enumerate() {
            let p = PeerId::new(i as u32);
            if kids.len() as u32 > self.fanout[i] {
                return Err(format!("{p} fanout exceeded"));
            }
            for &c in kids {
                if self.parent[c.index()] != Some(Member::Peer(p)) {
                    return Err(format!("{c} not linked back to {p}"));
                }
            }
        }
        for &c in &self.source_children {
            if self.parent[c.index()] != Some(Member::Source) {
                return Err(format!("{c} not linked back to source"));
            }
        }
        for (i, par) in self.parent.iter().enumerate() {
            let p = PeerId::new(i as u32);
            match par {
                Some(Member::Source) if !self.source_children.contains(&p) => {
                    return Err(format!("{p} missing from source children"));
                }
                Some(Member::Peer(q)) if !self.children[q.index()].contains(&p) => {
                    return Err(format!("{p} missing from children of {q}"));
                }
                _ => {}
            }
            // Cycle check: walking up from p must terminate within n
            // steps.
            let mut cur = p;
            let mut steps = 0;
            while let Some(Member::Peer(q)) = self.parent[cur.index()] {
                cur = q;
                steps += 1;
                if steps > self.parent.len() {
                    return Err(format!("cycle through {p}"));
                }
            }
            // Cache coherence: the incrementally maintained root/hops
            // must match a fresh chain walk.
            if self.root[i] != self.walk_root(p) {
                return Err(format!(
                    "cached root of {p} is {:?}, walk says {:?}",
                    self.root[i],
                    self.walk_root(p)
                ));
            }
            if self.hops[i] != self.walk_hops_to_root(p) {
                return Err(format!(
                    "cached hops of {p} is {}, walk says {}",
                    self.hops[i],
                    self.walk_hops_to_root(p)
                ));
            }
        }
        Ok(())
    }

    /// Extends [`Overlay::validate`] with the crash-stop liveness
    /// invariant: once detection has completed for a peer (`detected`
    /// marks crash victims whose silence has outlasted the detection
    /// timeout), no node may reference it — a detected peer holds no
    /// parent, serves no children, and in particular no live node's
    /// parent is a detected corpse. The engine debug-asserts this after
    /// every fault sweep.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation, or
    /// of a `detected` slice whose length disagrees with the overlay.
    pub fn validate_liveness(&self, detected: &[bool]) -> Result<(), String> {
        if detected.len() != self.parent.len() {
            return Err(format!(
                "detected bitmap has {} entries for {} peers",
                detected.len(),
                self.parent.len()
            ));
        }
        for (i, &dead) in detected.iter().enumerate() {
            let p = PeerId::new(i as u32);
            if dead {
                if self.parent[i].is_some() {
                    return Err(format!("detected crash victim {p} still has a parent"));
                }
                if !self.children[i].is_empty() {
                    return Err(format!("detected crash victim {p} still serves children"));
                }
            }
            if let Some(Member::Peer(q)) = self.parent[i] {
                if detected[q.index()] {
                    return Err(format!("{p} references detected crash victim {q}"));
                }
            }
        }
        Ok(())
    }
}

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};

impl ToJson for ChainRoot {
    fn to_json(&self) -> Json {
        match self {
            ChainRoot::Source => Json::Str("source".to_string()),
            ChainRoot::Fragment(p) => p.to_json(),
        }
    }
}

impl FromJson for ChainRoot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) if s == "source" => Ok(ChainRoot::Source),
            other => Ok(ChainRoot::Fragment(PeerId::from_json(other)?)),
        }
    }
}

impl ToJson for Overlay {
    fn to_json(&self) -> Json {
        object(vec![
            ("source_fanout", self.source_fanout.to_json()),
            ("fanout", self.fanout.to_json()),
            ("parent", self.parent.to_json()),
            ("children", self.children.to_json()),
            ("source_children", self.source_children.to_json()),
            ("root", self.root.to_json()),
            ("hops", self.hops.to_json()),
        ])
    }
}

impl FromJson for Overlay {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let overlay = Overlay {
            source_fanout: u32::from_json(value.get("source_fanout")?)?,
            fanout: Vec::from_json(value.get("fanout")?)?,
            parent: Vec::from_json(value.get("parent")?)?,
            children: Vec::from_json(value.get("children")?)?,
            source_children: Vec::from_json(value.get("source_children")?)?,
            root: Vec::from_json(value.get("root")?)?,
            hops: Vec::from_json(value.get("hops")?)?,
            scratch: Vec::new(),
        };
        overlay.validate().map_err(JsonError)?;
        Ok(overlay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Constraints;

    fn pop(source_fanout: u32, specs: &[(u32, u32)]) -> Population {
        Population::new(
            source_fanout,
            specs.iter().map(|&(f, l)| Constraints::new(f, l)).collect(),
        )
    }

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    #[test]
    fn validate_liveness_flags_references_to_detected_peers() {
        let population = pop(2, &[(2, 5), (1, 5), (0, 5)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();

        let nobody = vec![false; 3];
        assert_eq!(o.validate_liveness(&nobody), Ok(()));

        // Declaring peer 1 detected while it still has edges violates
        // all three clauses.
        let dead1 = vec![false, true, false];
        assert!(o.validate_liveness(&dead1).is_err());

        // Removing it the way the engine's sweep does restores the
        // invariant.
        o.remove_peer(p(1));
        assert_eq!(o.validate_liveness(&dead1), Ok(()));

        // Length mismatch is rejected, not ignored.
        assert!(o.validate_liveness(&[false, true]).is_err());
    }

    #[test]
    fn attach_detach_round_trip() {
        let population = pop(2, &[(2, 1), (1, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();
        assert_eq!(o.delay(p(2)), Some(3));
        assert_eq!(o.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(o.children(p(0)), &[p(1)]);
        assert!(o.is_rooted(p(2)));
        o.validate().unwrap();

        let old_parent = o.detach(p(1)).unwrap();
        assert_eq!(old_parent, Member::Peer(p(0)));
        assert_eq!(o.delay(p(2)), None, "fragment has no actual delay");
        assert_eq!(o.root(p(2)), ChainRoot::Fragment(p(1)));
        assert_eq!(o.speculative_delay(p(2)), 2);
        o.validate().unwrap();
    }

    #[test]
    fn attach_rejects_full_parent() {
        let population = pop(1, &[(0, 1), (0, 1)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        assert_eq!(
            o.attach(p(1), Member::Source),
            Err(OverlayError::ParentFull)
        );
        assert_eq!(
            o.attach(p(1), Member::Peer(p(0))),
            Err(OverlayError::ParentFull)
        );
    }

    #[test]
    fn attach_rejects_double_parent_and_self() {
        let population = pop(2, &[(1, 1), (1, 2)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        assert_eq!(o.attach(p(0), Member::Source), Err(OverlayError::HasParent));
        assert_eq!(
            o.attach(p(1), Member::Peer(p(1))),
            Err(OverlayError::SelfParent)
        );
    }

    #[test]
    fn attach_rejects_cycle() {
        let population = pop(2, &[(1, 1), (1, 2), (1, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();
        // 0 under 2 would close the loop 0 -> 1 -> 2 -> 0.
        assert_eq!(
            o.attach(p(0), Member::Peer(p(2))),
            Err(OverlayError::WouldCycle)
        );
        o.validate().unwrap();
    }

    #[test]
    fn detach_without_parent_errors() {
        let population = pop(1, &[(1, 1)]);
        let mut o = Overlay::new(&population);
        assert_eq!(o.detach(p(0)), Err(OverlayError::NoParent));
    }

    #[test]
    fn remove_peer_orphans_children_with_subtrees() {
        let population = pop(1, &[(2, 1), (1, 2), (1, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(0))).unwrap();
        o.attach(p(3), Member::Peer(p(1))).unwrap();
        let orphans = o.remove_peer(p(0));
        assert_eq!(orphans.len(), 2);
        assert_eq!(o.parent(p(1)), None);
        // 3 stays under 1: the fragment is reusable (§3.2).
        assert_eq!(o.parent(p(3)), Some(Member::Peer(p(1))));
        assert_eq!(o.root(p(3)), ChainRoot::Fragment(p(1)));
        assert_eq!(o.source_children(), &[] as &[PeerId]);
        o.validate().unwrap();
    }

    #[test]
    fn free_fanout_accounting() {
        let population = pop(2, &[(3, 1), (0, 2)]);
        let mut o = Overlay::new(&population);
        assert_eq!(o.free_fanout(Member::Source), 2);
        assert_eq!(o.free_fanout(Member::Peer(p(0))), 3);
        assert!(!o.has_free_fanout(Member::Peer(p(1))));
        o.attach(p(0), Member::Source).unwrap();
        assert_eq!(o.free_fanout(Member::Source), 1);
    }

    #[test]
    fn subtree_is_breadth_first_closure() {
        let population = pop(1, &[(2, 1), (1, 2), (0, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(0))).unwrap();
        o.attach(p(3), Member::Peer(p(1))).unwrap();
        let sub = o.subtree(p(0));
        assert_eq!(sub, vec![p(0), p(1), p(2), p(3)]);
        assert_eq!(o.subtree(p(3)), vec![p(3)]);
    }

    #[test]
    fn speculative_delay_of_fragment_root() {
        let population = pop(1, &[(1, 1)]);
        let o = Overlay::new(&population);
        assert_eq!(o.speculative_delay(p(0)), 1);
        assert_eq!(o.hops_to_root(p(0)), 0);
    }

    #[test]
    fn attached_count_tracks_links() {
        let population = pop(2, &[(1, 1), (1, 2)]);
        let mut o = Overlay::new(&population);
        assert_eq!(o.attached_count(), 0);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        assert_eq!(o.attached_count(), 2);
        assert_eq!(o.len(), 2);
    }
}
