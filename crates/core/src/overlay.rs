//! The overlay forest: parent/child links, delay and root queries, and
//! the invariant-checked mutation primitives every construction
//! algorithm is built from.
//!
//! During construction the overlay is a *forest*: fragments whose roots
//! are still looking for a parent, plus the tree rooted at the source.
//! The paper's local knowledge assumptions (§2.1.3) — every node knows
//! `Parent()`, `Children()`, `Root()` and `DelayAt()` of its chain — map
//! to the query methods here. `DelayAt` follows the worked example of
//! §3.2: a direct child of the source observes delay 1 (one pull
//! interval), and every further hop adds one time unit, i.e.
//! `DelayAt(i) = depth(i)`.
//!
//! # Memory layout
//!
//! Storage is arena-backed struct-of-arrays (DESIGN.md §13): peers are
//! dense `PeerId` indices into parallel `parent`/`root`/`hops` arrays
//! (parent and root packed into `u32` sentinels), and all child lists
//! live in one shared pool, each peer owning the fixed slice
//! `child_pool[child_off[i] .. child_off[i] + fanout[i]]` of which the
//! first `child_cnt[i]` slots are live. Child insertion appends to the
//! slice; removal swap-removes within it — exactly the `Vec::push` /
//! `Vec::swap_remove` ordering of the previous per-peer `Vec` layout,
//! so iteration order (and therefore every RNG-visible choice built on
//! it) is unchanged.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::{Member, PeerId, Population};

/// Packed `parent` sentinel: no parent.
const NO_PARENT: u32 = u32::MAX;
/// Packed `parent` sentinel: the source.
const PARENT_SOURCE: u32 = u32::MAX - 1;
/// Packed `root` sentinel: the chain reaches the source.
const ROOT_SOURCE: u32 = u32::MAX;

/// Root of a peer's chain: either the source (the chain can actually
/// receive the feed) or the topmost parent-less peer of a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChainRoot {
    /// The chain reaches node 0; `DelayAt` is real.
    Source,
    /// The chain dangles from a fragment root still seeking a parent.
    Fragment(PeerId),
}

impl ChainRoot {
    #[inline]
    fn pack(self) -> u32 {
        match self {
            ChainRoot::Source => ROOT_SOURCE,
            ChainRoot::Fragment(p) => p.get(),
        }
    }

    #[inline]
    fn unpack(raw: u32) -> ChainRoot {
        if raw == ROOT_SOURCE {
            ChainRoot::Source
        } else {
            ChainRoot::Fragment(PeerId::new(raw))
        }
    }
}

#[inline]
fn pack_parent(m: Option<Member>) -> u32 {
    match m {
        None => NO_PARENT,
        Some(Member::Source) => PARENT_SOURCE,
        Some(Member::Peer(p)) => p.get(),
    }
}

#[inline]
fn unpack_parent(raw: u32) -> Option<Member> {
    match raw {
        NO_PARENT => None,
        PARENT_SOURCE => Some(Member::Source),
        id => Some(Member::Peer(PeerId::new(id))),
    }
}

/// Why a mutation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayError {
    /// The child already has a parent (detach first).
    HasParent,
    /// The prospective parent has no unused fanout.
    ParentFull,
    /// The attachment would create a cycle (the parent is in the
    /// child's subtree).
    WouldCycle,
    /// A peer may not adopt itself.
    SelfParent,
    /// The peer has no parent to detach from.
    NoParent,
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            OverlayError::HasParent => "child already has a parent",
            OverlayError::ParentFull => "parent fanout is fully used",
            OverlayError::WouldCycle => "attachment would create a cycle",
            OverlayError::SelfParent => "a peer cannot be its own parent",
            OverlayError::NoParent => "peer has no parent",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for OverlayError {}

/// The dissemination forest over a fixed population.
///
/// # Example
///
/// ```
/// use lagover_core::node::{Constraints, Member, PeerId, Population};
/// use lagover_core::overlay::Overlay;
///
/// let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 2)]);
/// let mut overlay = Overlay::new(&pop);
/// let (a, b) = (PeerId::new(0), PeerId::new(1));
/// overlay.attach(a, Member::Source)?;
/// overlay.attach(b, Member::Peer(a))?;
/// assert_eq!(overlay.delay(b), Some(2));
/// # Ok::<(), lagover_core::overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overlay {
    source_fanout: u32,
    fanout: Vec<u32>,
    /// Packed parent per peer: [`NO_PARENT`], [`PARENT_SOURCE`], or a
    /// peer id.
    parent: Vec<u32>,
    /// Start of peer `i`'s child slice in `child_pool` (prefix sums of
    /// `fanout`, one extra terminal entry).
    child_off: Vec<u32>,
    /// Live children of peer `i`: the first `child_cnt[i]` slots of its
    /// slice.
    child_cnt: Vec<u32>,
    /// The shared child arena; slots beyond a peer's live count hold
    /// stale garbage and never participate in equality or
    /// serialization.
    child_pool: Vec<PeerId>,
    source_children: Vec<PeerId>,
    /// Cached chain root per peer (packed; [`ROOT_SOURCE`] or the
    /// fragment head id), maintained incrementally on every mutation so
    /// [`Overlay::root`] and friends are O(1) instead of O(depth). A
    /// parent-less peer is its own fragment root.
    root: Vec<u32>,
    /// Cached hops-to-root per peer (0 for a fragment root; depth for a
    /// peer rooted at the source), kept in lockstep with `root`.
    hops: Vec<u32>,
    /// Reusable traversal stack for subtree cache updates. Always left
    /// empty between calls, so equality stays purely structural and
    /// serialization carries no transient state.
    #[serde(skip)]
    scratch: Vec<PeerId>,
    /// When set, cache updates append to the delta buffers below so an
    /// external index (the engine's oracle index) can mirror this
    /// structure without rescanning it.
    #[serde(skip)]
    track_deltas: bool,
    /// Per-touched-peer `(peer, delay after the change)` records, in
    /// mutation order. A peer may appear several times; applying the
    /// records in order reproduces the final state.
    #[serde(skip)]
    delay_deltas: Vec<(PeerId, Option<u32>)>,
    /// Peers whose child count changed (free-fanout candidates for the
    /// index). May contain duplicates.
    #[serde(skip)]
    fanout_deltas: Vec<PeerId>,
}

// Equality is logical: live child slices only, never pool garbage or
// the transient scratch/delta state.
impl PartialEq for Overlay {
    fn eq(&self, other: &Self) -> bool {
        self.source_fanout == other.source_fanout
            && self.fanout == other.fanout
            && self.parent == other.parent
            && self.source_children == other.source_children
            && self.root == other.root
            && self.hops == other.hops
            && (0..self.fanout.len()).all(|i| self.kids(i) == other.kids(i))
    }
}

impl Eq for Overlay {}

impl Overlay {
    /// Creates an empty forest (every peer parent-less) for a population.
    pub fn new(population: &Population) -> Self {
        let n = population.len();
        let fanout: Vec<u32> = population.fanouts().to_vec();
        let mut child_off = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        for &f in &fanout {
            child_off.push(total);
            total += f;
        }
        child_off.push(total);
        Overlay {
            source_fanout: population.source_fanout(),
            fanout,
            parent: vec![NO_PARENT; n],
            child_off,
            child_cnt: vec![0; n],
            child_pool: vec![PeerId::new(u32::MAX); total as usize],
            source_children: Vec::new(),
            root: (0..n as u32).collect(),
            hops: vec![0; n],
            scratch: Vec::new(),
            track_deltas: false,
            delay_deltas: Vec::new(),
            fanout_deltas: Vec::new(),
        }
    }

    /// The live child slice of peer index `i`.
    #[inline]
    fn kids(&self, i: usize) -> &[PeerId] {
        let off = self.child_off[i] as usize;
        &self.child_pool[off..off + self.child_cnt[i] as usize]
    }

    /// Turns delta recording on or off, clearing any pending records.
    /// The engine enables this exactly while it maintains an oracle
    /// index over the overlay.
    pub fn set_delta_tracking(&mut self, on: bool) {
        self.track_deltas = on;
        self.delay_deltas.clear();
        self.fanout_deltas.clear();
    }

    /// Moves the pending delta records into the caller's buffers
    /// (swapping, so allocation capacity circulates instead of being
    /// reallocated every drain). The caller's buffers must be empty.
    pub fn take_deltas_into(
        &mut self,
        delays: &mut Vec<(PeerId, Option<u32>)>,
        fanouts: &mut Vec<PeerId>,
    ) {
        debug_assert!(delays.is_empty() && fanouts.is_empty());
        std::mem::swap(&mut self.delay_deltas, delays);
        std::mem::swap(&mut self.fanout_deltas, fanouts);
    }

    /// Whether any delta records are pending.
    pub fn has_pending_deltas(&self) -> bool {
        !self.delay_deltas.is_empty() || !self.fanout_deltas.is_empty()
    }

    #[inline]
    fn note_fanout_delta(&mut self, parent: Member) {
        if self.track_deltas {
            if let Member::Peer(p) = parent {
                self.fanout_deltas.push(p);
            }
        }
    }

    /// Rewrites the cached root and shifts the cached hop count by
    /// `delta` for every peer in the subtree of `top` (including `top`).
    /// O(subtree size); this is the *only* place the caches change.
    fn update_subtree_cache(&mut self, top: PeerId, new_root: ChainRoot, delta: i64) {
        let packed_root = new_root.pack();
        let rooted = packed_root == ROOT_SOURCE;
        let mut stack = std::mem::take(&mut self.scratch);
        debug_assert!(stack.is_empty());
        stack.push(top);
        // A valid subtree visits each peer once; a corrupted child
        // structure (grafted ancestors) could loop, so the traversal is
        // bounded by the population size and the hop arithmetic is
        // clamped instead of wrapping.
        let mut budget = self.parent.len();
        while let Some(s) = stack.pop() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let i = s.index();
            self.root[i] = packed_root;
            self.hops[i] = (i64::from(self.hops[i]) + delta).clamp(0, i64::from(u32::MAX)) as u32;
            if self.track_deltas {
                let delay = rooted.then_some(self.hops[i]);
                self.delay_deltas.push((s, delay));
            }
            stack.extend_from_slice(self.kids(i));
        }
        stack.clear();
        self.scratch = stack; // drained by the loop; capacity retained
    }

    /// Number of peers the forest was sized for.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest tracks no peers.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// `Parent(p)`, if any.
    pub fn parent(&self, p: PeerId) -> Option<Member> {
        unpack_parent(self.parent[p.index()])
    }

    /// `Children(p)`.
    pub fn children(&self, p: PeerId) -> &[PeerId] {
        self.kids(p.index())
    }

    /// Children of the source.
    pub fn source_children(&self) -> &[PeerId] {
        &self.source_children
    }

    /// Unused fanout of a member. Saturating: a corrupted state may
    /// carry more children than the advertised fanout (see the raw
    /// mutation surface below), which simply reads as zero free slots.
    pub fn free_fanout(&self, m: Member) -> u32 {
        match m {
            Member::Source => self
                .source_fanout
                .saturating_sub(self.source_children.len() as u32),
            Member::Peer(p) => self.fanout[p.index()].saturating_sub(self.child_cnt[p.index()]),
        }
    }

    /// The fanout `p` currently advertises (normally its constraint;
    /// a corruption may have forged it below the child count).
    pub fn advertised_fanout(&self, p: PeerId) -> u32 {
        self.fanout[p.index()]
    }

    /// The physical child-slot capacity of `p` — the fanout the forest
    /// was built with, immune to forgery.
    pub fn child_capacity(&self, p: PeerId) -> u32 {
        let i = p.index();
        self.child_off[i + 1] - self.child_off[i]
    }

    /// Whether a member has unused fanout.
    pub fn has_free_fanout(&self, m: Member) -> bool {
        self.free_fanout(m) > 0
    }

    /// `Root(p)`: the source or the fragment root of `p`'s chain. O(1)
    /// via the incrementally maintained cache.
    pub fn root(&self, p: PeerId) -> ChainRoot {
        ChainRoot::unpack(self.root[p.index()])
    }

    /// Whether `p`'s chain reaches the source. O(1).
    pub fn is_rooted(&self, p: PeerId) -> bool {
        self.root[p.index()] == ROOT_SOURCE
    }

    /// Number of edges between `p` and its chain root (0 when `p` *is*
    /// the fragment root; depth when rooted at the source). O(1).
    pub fn hops_to_root(&self, p: PeerId) -> u32 {
        self.hops[p.index()]
    }

    /// `DelayAt(p)`: the actual observed delay, defined only when the
    /// chain reaches the source. A direct child of the source observes
    /// delay 1 (§3.2 worked example); each hop adds one time unit. O(1).
    pub fn delay(&self, p: PeerId) -> Option<u32> {
        if self.root[p.index()] == ROOT_SOURCE {
            Some(self.hops[p.index()])
        } else {
            None
        }
    }

    /// The delay `p` *would* observe if its fragment root attached
    /// directly to the source — the optimistic estimate peers use when
    /// negotiating inside unrooted fragments. Equals [`Overlay::delay`]
    /// for rooted peers. O(1).
    pub fn speculative_delay(&self, p: PeerId) -> u32 {
        if self.root[p.index()] == ROOT_SOURCE {
            self.hops[p.index()]
        } else {
            self.hops[p.index()] + 1
        }
    }

    /// [`Overlay::root`] recomputed by walking the parent chain —
    /// O(depth). The reference implementation the cache is checked
    /// against (see [`Overlay::validate`] and the cache-coherence
    /// proptests/benchmarks); production code wants [`Overlay::root`].
    pub fn walk_root(&self, p: PeerId) -> ChainRoot {
        let mut current = p;
        loop {
            match unpack_parent(self.parent[current.index()]) {
                Some(Member::Source) => return ChainRoot::Source,
                Some(Member::Peer(q)) => current = q,
                None => return ChainRoot::Fragment(current),
            }
        }
    }

    /// [`Overlay::hops_to_root`] recomputed by walking the parent chain —
    /// O(depth). Reference implementation for cache-coherence checks.
    pub fn walk_hops_to_root(&self, p: PeerId) -> u32 {
        let mut hops = 0;
        let mut current = p;
        loop {
            match unpack_parent(self.parent[current.index()]) {
                Some(Member::Source) => return hops + 1,
                Some(Member::Peer(q)) => {
                    hops += 1;
                    current = q;
                }
                None => return hops,
            }
        }
    }

    /// [`Overlay::delay`] recomputed by walking the parent chain —
    /// O(depth). Reference implementation for cache-coherence checks.
    pub fn walk_delay(&self, p: PeerId) -> Option<u32> {
        match self.walk_root(p) {
            ChainRoot::Source => Some(self.walk_hops_to_root(p)),
            ChainRoot::Fragment(_) => None,
        }
    }

    /// Attaches `child` under `parent`.
    ///
    /// The child's entire subtree comes along (its own children keep
    /// their links), so the cycle check walks *up* from the parent.
    ///
    /// # Errors
    ///
    /// [`OverlayError::HasParent`], [`OverlayError::ParentFull`],
    /// [`OverlayError::SelfParent`], or [`OverlayError::WouldCycle`].
    pub fn attach(&mut self, child: PeerId, parent: Member) -> Result<(), OverlayError> {
        if parent == Member::Peer(child) {
            return Err(OverlayError::SelfParent);
        }
        if self.parent[child.index()] != NO_PARENT {
            return Err(OverlayError::HasParent);
        }
        if !self.has_free_fanout(parent) {
            return Err(OverlayError::ParentFull);
        }
        // A parent-less child is the root of its own fragment, so the
        // prospective parent descends from it iff the parent's cached
        // chain root *is* the child — an O(1) cycle check.
        let (new_root, base) = match parent {
            Member::Source => (ChainRoot::Source, 1),
            Member::Peer(p) => {
                if self.root[p.index()] == child.get() {
                    return Err(OverlayError::WouldCycle);
                }
                (
                    ChainRoot::unpack(self.root[p.index()]),
                    self.hops[p.index()] + 1,
                )
            }
        };
        self.parent[child.index()] = pack_parent(Some(parent));
        match parent {
            Member::Source => self.source_children.push(child),
            Member::Peer(p) => {
                let i = p.index();
                let slot = self.child_off[i] as usize + self.child_cnt[i] as usize;
                self.child_pool[slot] = child;
                self.child_cnt[i] += 1;
            }
        }
        self.note_fanout_delta(parent);
        // The child was a fragment root, normally at hops 0, so its
        // whole subtree shifts down to the child's new depth and adopts
        // the new root. Computing the shift from the recorded hops
        // (rather than assuming 0) keeps the subtree internally
        // consistent even when a corruption forged the child's cache.
        let shift = i64::from(base) - i64::from(self.hops[child.index()]);
        self.update_subtree_cache(child, new_root, shift);
        Ok(())
    }

    /// Detaches `child` from its parent (the paper's `j ↚ i`). The
    /// child keeps its own subtree and becomes a fragment root.
    ///
    /// # Errors
    ///
    /// [`OverlayError::NoParent`] if the child has no parent.
    pub fn detach(&mut self, child: PeerId) -> Result<Member, OverlayError> {
        let parent = unpack_parent(self.parent[child.index()]).ok_or(OverlayError::NoParent)?;
        self.parent[child.index()] = NO_PARENT;
        // A corrupted (dangling) parent pointer may have no matching
        // backlink; detaching then simply clears the pointer — on a
        // valid overlay the position lookup always succeeds.
        match parent {
            Member::Source => {
                if let Some(pos) = self.source_children.iter().position(|&c| c == child) {
                    self.source_children.swap_remove(pos);
                }
            }
            Member::Peer(p) => {
                let i = p.index();
                let off = self.child_off[i] as usize;
                let cnt = self.child_cnt[i] as usize;
                if let Some(pos) = self.child_pool[off..off + cnt]
                    .iter()
                    .position(|&c| c == child)
                {
                    // Same ordering as `Vec::swap_remove` on the old layout.
                    self.child_pool[off + pos] = self.child_pool[off + cnt - 1];
                    self.child_cnt[i] -= 1;
                }
            }
        }
        self.note_fanout_delta(parent);
        // The detached subtree keeps its internal shape: every member's
        // depth drops by the child's old depth, rooted at the child.
        let old_hops = self.hops[child.index()];
        self.update_subtree_cache(child, ChainRoot::Fragment(child), -i64::from(old_hops));
        Ok(parent)
    }

    /// Removes a departing peer from the overlay (churn): detaches it
    /// from its parent and orphans each of its children, which keep
    /// their own subtrees and become fragment roots (§3.2 argues this
    /// reuse of past structure matters).
    ///
    /// Returns the orphaned children.
    pub fn remove_peer(&mut self, p: PeerId) -> Vec<PeerId> {
        if self.parent[p.index()] != NO_PARENT {
            self.detach(p).expect("checked parent");
        }
        let orphans: Vec<PeerId> = self.kids(p.index()).to_vec();
        self.child_cnt[p.index()] = 0;
        self.note_fanout_delta(Member::Peer(p));
        for &c in &orphans {
            self.parent[c.index()] = NO_PARENT;
            // After the detach above `c` sits at depth 1 under the
            // fragment root `p` (unless a corruption forged its cache);
            // it now becomes its own fragment root at hops 0.
            let old_hops = self.hops[c.index()];
            self.update_subtree_cache(c, ChainRoot::Fragment(c), -i64::from(old_hops));
        }
        orphans
    }

    /// Iterates over the subtree of `p` (including `p`), breadth-first.
    pub fn subtree(&self, p: PeerId) -> Vec<PeerId> {
        let mut out = vec![p];
        let mut i = 0;
        while i < out.len() {
            out.extend_from_slice(self.kids(out[i].index()));
            i += 1;
        }
        out
    }

    /// Number of peers currently attached (having any parent).
    pub fn attached_count(&self) -> usize {
        self.parent.iter().filter(|&&p| p != NO_PARENT).count()
    }

    /// A cheap O(fanout) local invariant probe for one peer, run even
    /// in release builds where the full [`Overlay::validate`] sweep is
    /// too expensive: parent/child backlinks in both directions, the
    /// fanout bound, and cache coherence of `p` against its parent.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn spot_check(&self, p: PeerId) -> Result<(), String> {
        let i = p.index();
        if self.child_cnt[i] > self.fanout[i] {
            return Err(format!(
                "fanout bound violated at {p}: {} children > fanout {}",
                self.child_cnt[i], self.fanout[i]
            ));
        }
        if self.source_children.len() as u32 > self.source_fanout {
            return Err(format!(
                "fanout bound violated at source: {} children > fanout {}",
                self.source_children.len(),
                self.source_fanout
            ));
        }
        match unpack_parent(self.parent[i]) {
            None => {
                if self.root[i] != p.get() || self.hops[i] != 0 {
                    return Err(format!("parent-less {p} is not its own fragment root"));
                }
            }
            Some(Member::Source) => {
                if !self.source_children.contains(&p) {
                    return Err(format!("{p} missing from source children"));
                }
                if self.root[i] != ROOT_SOURCE || self.hops[i] != 1 {
                    return Err(format!("source child {p} has bad cache"));
                }
            }
            Some(Member::Peer(q)) => {
                if !self.kids(q.index()).contains(&p) {
                    return Err(format!("{p} missing from children of {q}"));
                }
                if self.root[i] != self.root[q.index()] {
                    return Err(format!("{p} root cache disagrees with parent {q}"));
                }
                if self.hops[i] != self.hops[q.index()] + 1 {
                    return Err(format!("{p} hops cache disagrees with parent {q}"));
                }
            }
        }
        for &c in self.kids(i) {
            if unpack_parent(self.parent[c.index()]) != Some(Member::Peer(p)) {
                return Err(format!("{c} not linked back to {p}"));
            }
        }
        Ok(())
    }

    /// Walks the parent chain of `p`, bounded by the population size,
    /// returning the true `(root, hops)` pair — the single chain-walk
    /// both validators are built on.
    ///
    /// # Errors
    ///
    /// Names the starting peer when the walk exceeds `n` edges (a
    /// parent cycle).
    pub fn checked_walk(&self, p: PeerId) -> Result<(ChainRoot, u32), String> {
        let mut cur = p;
        let mut hops = 0u32;
        loop {
            match unpack_parent(self.parent[cur.index()]) {
                Some(Member::Source) => return Ok((ChainRoot::Source, hops + 1)),
                Some(Member::Peer(q)) => {
                    hops += 1;
                    if hops as usize > self.parent.len() {
                        return Err(format!(
                            "acyclicity violated: parent chain of {p} cycles (through {cur})"
                        ));
                    }
                    cur = q;
                }
                None => return Ok((ChainRoot::Fragment(cur), hops)),
            }
        }
    }

    /// Exhaustively checks structural invariants; used by tests and
    /// debug assertions. Cheap enough (O(n + edges)) to run after every
    /// round in test builds at paper scale — the engine size-gates it
    /// (see `Engine`) so 10^5-peer debug runs stay usable.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation,
    /// naming the offending peers and the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.source_children.len() as u32 > self.source_fanout {
            return Err(format!(
                "fanout bound violated at source: {} children > fanout {}",
                self.source_children.len(),
                self.source_fanout
            ));
        }
        for i in 0..self.parent.len() {
            let p = PeerId::new(i as u32);
            if self.child_cnt[i] > self.fanout[i] {
                return Err(format!(
                    "fanout bound violated at {p}: {} children > fanout {}",
                    self.child_cnt[i], self.fanout[i]
                ));
            }
            for &c in self.kids(i) {
                if self.parent[c.index()] != p.get() {
                    return Err(format!(
                        "backlink violated: {p} lists child {c}, but {c}'s parent is {:?}",
                        unpack_parent(self.parent[c.index()])
                    ));
                }
            }
        }
        for &c in &self.source_children {
            if self.parent[c.index()] != PARENT_SOURCE {
                return Err(format!(
                    "backlink violated: source lists child {c}, but {c}'s parent is {:?}",
                    unpack_parent(self.parent[c.index()])
                ));
            }
        }
        for i in 0..self.parent.len() {
            let p = PeerId::new(i as u32);
            match unpack_parent(self.parent[i]) {
                Some(Member::Source) if !self.source_children.contains(&p) => {
                    return Err(format!(
                        "backlink violated: {p}'s parent is the source, \
                         but the source does not list {p}"
                    ));
                }
                Some(Member::Peer(q)) if !self.kids(q.index()).contains(&p) => {
                    return Err(format!(
                        "backlink violated: {p}'s parent is {q}, but {q} does not list {p}"
                    ));
                }
                _ => {}
            }
            // One bounded walk serves the cycle check and both cache
            // coherence checks.
            let (true_root, true_hops) = self.checked_walk(p)?;
            if ChainRoot::unpack(self.root[i]) != true_root {
                return Err(format!(
                    "root cache violated at {p}: cached {:?}, chain walk says {true_root:?}",
                    ChainRoot::unpack(self.root[i]),
                ));
            }
            if self.hops[i] != true_hops {
                return Err(format!(
                    "hops cache violated at {p}: cached {}, chain walk says {true_hops}",
                    self.hops[i],
                ));
            }
        }
        Ok(())
    }

    /// Extends [`Overlay::validate`] with the crash-stop liveness
    /// invariant: once detection has completed for a peer (`detected`
    /// marks crash victims whose silence has outlasted the detection
    /// timeout), no node may reference it — a detected peer holds no
    /// parent, serves no children, and in particular no live node's
    /// parent is a detected corpse. The engine debug-asserts this after
    /// every fault sweep.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation, or
    /// of a `detected` slice whose length disagrees with the overlay.
    pub fn validate_liveness(&self, detected: &[bool]) -> Result<(), String> {
        if detected.len() != self.parent.len() {
            return Err(format!(
                "detected bitmap has {} entries for {} peers",
                detected.len(),
                self.parent.len()
            ));
        }
        for (i, &dead) in detected.iter().enumerate() {
            let p = PeerId::new(i as u32);
            if dead {
                if let Some(parent) = unpack_parent(self.parent[i]) {
                    return Err(format!(
                        "liveness violated: detected crash victim {p} \
                         still holds parent {parent:?}"
                    ));
                }
                if self.child_cnt[i] != 0 {
                    return Err(format!(
                        "liveness violated: detected crash victim {p} still serves {} children",
                        self.child_cnt[i]
                    ));
                }
            }
            if let Some(Member::Peer(q)) = unpack_parent(self.parent[i]) {
                if detected[q.index()] {
                    return Err(format!(
                        "liveness violated: live peer {p}'s parent {q} \
                         is a detected crash victim"
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw mutation surface — adversarial snapshot corruption and local
    // repair primitives.
    //
    // Unlike `attach`/`detach`, nothing here maintains invariants or
    // caches: these are the operations a `CorruptionPlan` interpreter
    // uses to force the forest into an *arbitrary* state, and the
    // minimal counter-operations the `stabilize` rule repairs with.
    // After any raw mutation [`Overlay::validate`] may (intentionally)
    // fail until stabilization completes. Delta records ARE maintained
    // here: the oracle sampling index stays subscribed through repair,
    // and a stale index would hide the very slots re-attachment needs.
    // ------------------------------------------------------------------

    /// Overwrites `p`'s parent pointer, touching no child list and no
    /// cache — the corrupt half of a dangling pointer or cycle splice.
    pub fn raw_set_parent(&mut self, p: PeerId, parent: Option<Member>) {
        self.parent[p.index()] = pack_parent(parent);
    }

    /// Overwrites `p`'s cached chain root and hop count — forged
    /// depth/delay state ([`ChainRoot`] staleness included).
    pub fn raw_set_cache(&mut self, p: PeerId, root: ChainRoot, hops: u32) {
        self.root[p.index()] = root.pack();
        self.hops[p.index()] = hops;
        if self.track_deltas {
            let delay = matches!(root, ChainRoot::Source).then_some(hops);
            self.delay_deltas.push((p, delay));
        }
    }

    /// Forges `p`'s advertised fanout. Clamped to the physical slot
    /// capacity (the build-time fanout), so only downward forgery —
    /// the kind that overflows the bound — is possible.
    pub fn raw_set_fanout(&mut self, p: PeerId, fanout: u32) {
        self.fanout[p.index()] = fanout.min(self.child_capacity(p));
        self.note_fanout_delta(Member::Peer(p));
    }

    /// Appends `child` to `p`'s live child slots without touching
    /// `child`'s parent pointer (a one-sided graft). Returns `false`
    /// when every physical slot is taken or the entry already exists.
    pub fn raw_add_child(&mut self, p: PeerId, child: PeerId) -> bool {
        let i = p.index();
        if self.child_cnt[i] >= self.child_capacity(p) || self.kids(i).contains(&child) {
            return false;
        }
        let slot = self.child_off[i] as usize + self.child_cnt[i] as usize;
        self.child_pool[slot] = child;
        self.child_cnt[i] += 1;
        self.note_fanout_delta(Member::Peer(p));
        true
    }

    /// Appends `child` to the source's child list without touching
    /// `child`'s parent pointer. The source list is unbounded storage,
    /// so this can overflow the source fanout.
    pub fn raw_push_source_child(&mut self, child: PeerId) {
        self.source_children.push(child);
    }

    /// Repair primitive: removes `child` from `parent`'s live slots (or
    /// the source list) without touching `child`'s parent pointer —
    /// the counter-operation to a one-sided graft. Returns whether an
    /// entry was removed.
    pub fn evict_child(&mut self, parent: Member, child: PeerId) -> bool {
        match parent {
            Member::Source => match self.source_children.iter().position(|&c| c == child) {
                Some(pos) => {
                    self.source_children.swap_remove(pos);
                    true
                }
                None => false,
            },
            Member::Peer(q) => {
                let i = q.index();
                let off = self.child_off[i] as usize;
                let cnt = self.child_cnt[i] as usize;
                match self.child_pool[off..off + cnt]
                    .iter()
                    .position(|&c| c == child)
                {
                    Some(pos) => {
                        self.child_pool[off + pos] = self.child_pool[off + cnt - 1];
                        self.child_cnt[i] -= 1;
                        self.note_fanout_delta(parent);
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Repair primitive: restores `p`'s advertised fanout to the
    /// physical capacity it was built with.
    pub fn restore_fanout(&mut self, p: PeerId) {
        self.fanout[p.index()] = self.child_capacity(p);
        self.note_fanout_delta(Member::Peer(p));
    }

    /// Repair primitive: resolves a self-parent loop by clearing `p`'s
    /// parent pointer, removing `p` from its own child slots, and
    /// resetting its cache to a fragment root. `p`'s genuine children
    /// keep their links (their caches converge via their own checks).
    pub fn heal_self_parent(&mut self, p: PeerId) {
        self.parent[p.index()] = NO_PARENT;
        self.evict_child(Member::Peer(p), p);
        self.raw_set_cache(p, ChainRoot::Fragment(p), 0);
    }
}

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};

impl ToJson for ChainRoot {
    fn to_json(&self) -> Json {
        match self {
            ChainRoot::Source => Json::Str("source".to_string()),
            ChainRoot::Fragment(p) => p.to_json(),
        }
    }
}

impl FromJson for ChainRoot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) if s == "source" => Ok(ChainRoot::Source),
            other => Ok(ChainRoot::Fragment(PeerId::from_json(other)?)),
        }
    }
}

impl ToJson for Overlay {
    fn to_json(&self) -> Json {
        // The wire shape predates the arena layout (per-peer `children`
        // lists, `Option<Member>` parents, `ChainRoot` roots) and is
        // kept byte-compatible so committed snapshots stay valid.
        let parent: Vec<Option<Member>> = self.parent.iter().map(|&r| unpack_parent(r)).collect();
        let children: Vec<Vec<PeerId>> = (0..self.parent.len())
            .map(|i| self.kids(i).to_vec())
            .collect();
        let root: Vec<ChainRoot> = self.root.iter().map(|&r| ChainRoot::unpack(r)).collect();
        object(vec![
            ("source_fanout", self.source_fanout.to_json()),
            ("fanout", self.fanout.to_json()),
            ("parent", parent.to_json()),
            ("children", children.to_json()),
            ("source_children", self.source_children.to_json()),
            ("root", root.to_json()),
            ("hops", self.hops.to_json()),
        ])
    }
}

impl FromJson for Overlay {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let fanout = Vec::<u32>::from_json(value.get("fanout")?)?;
        let parent = Vec::<Option<Member>>::from_json(value.get("parent")?)?;
        let children = Vec::<Vec<PeerId>>::from_json(value.get("children")?)?;
        let root = Vec::<ChainRoot>::from_json(value.get("root")?)?;
        if children.len() != fanout.len() {
            return Err(JsonError(format!(
                "children lists ({}) disagree with fanout entries ({})",
                children.len(),
                fanout.len()
            )));
        }
        let mut child_off = Vec::with_capacity(fanout.len() + 1);
        let mut total = 0u32;
        for &f in &fanout {
            child_off.push(total);
            total += f;
        }
        child_off.push(total);
        let mut child_cnt = vec![0u32; fanout.len()];
        let mut child_pool = vec![PeerId::new(u32::MAX); total as usize];
        for (i, kids) in children.iter().enumerate() {
            if kids.len() as u32 > fanout[i] {
                return Err(JsonError(format!("peer {i} fanout exceeded")));
            }
            child_cnt[i] = kids.len() as u32;
            let off = child_off[i] as usize;
            child_pool[off..off + kids.len()].copy_from_slice(kids);
        }
        let overlay = Overlay {
            source_fanout: u32::from_json(value.get("source_fanout")?)?,
            fanout,
            parent: parent.into_iter().map(pack_parent).collect(),
            child_off,
            child_cnt,
            child_pool,
            source_children: Vec::from_json(value.get("source_children")?)?,
            root: root.into_iter().map(ChainRoot::pack).collect(),
            hops: Vec::from_json(value.get("hops")?)?,
            scratch: Vec::new(),
            track_deltas: false,
            delay_deltas: Vec::new(),
            fanout_deltas: Vec::new(),
        };
        overlay.validate().map_err(JsonError)?;
        Ok(overlay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Constraints;

    fn pop(source_fanout: u32, specs: &[(u32, u32)]) -> Population {
        Population::new(
            source_fanout,
            specs.iter().map(|&(f, l)| Constraints::new(f, l)).collect(),
        )
    }

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    #[test]
    fn validate_liveness_flags_references_to_detected_peers() {
        let population = pop(2, &[(2, 5), (1, 5), (0, 5)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();

        let nobody = vec![false; 3];
        assert_eq!(o.validate_liveness(&nobody), Ok(()));

        // Declaring peer 1 detected while it still has edges violates
        // all three clauses.
        let dead1 = vec![false, true, false];
        assert!(o.validate_liveness(&dead1).is_err());

        // Removing it the way the engine's sweep does restores the
        // invariant.
        o.remove_peer(p(1));
        assert_eq!(o.validate_liveness(&dead1), Ok(()));

        // Length mismatch is rejected, not ignored.
        assert!(o.validate_liveness(&[false, true]).is_err());
    }

    #[test]
    fn attach_detach_round_trip() {
        let population = pop(2, &[(2, 1), (1, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();
        assert_eq!(o.delay(p(2)), Some(3));
        assert_eq!(o.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(o.children(p(0)), &[p(1)]);
        assert!(o.is_rooted(p(2)));
        o.validate().unwrap();

        let old_parent = o.detach(p(1)).unwrap();
        assert_eq!(old_parent, Member::Peer(p(0)));
        assert_eq!(o.delay(p(2)), None, "fragment has no actual delay");
        assert_eq!(o.root(p(2)), ChainRoot::Fragment(p(1)));
        assert_eq!(o.speculative_delay(p(2)), 2);
        o.validate().unwrap();
    }

    #[test]
    fn attach_rejects_full_parent() {
        let population = pop(1, &[(0, 1), (0, 1)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        assert_eq!(
            o.attach(p(1), Member::Source),
            Err(OverlayError::ParentFull)
        );
        assert_eq!(
            o.attach(p(1), Member::Peer(p(0))),
            Err(OverlayError::ParentFull)
        );
    }

    #[test]
    fn attach_rejects_double_parent_and_self() {
        let population = pop(2, &[(1, 1), (1, 2)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        assert_eq!(o.attach(p(0), Member::Source), Err(OverlayError::HasParent));
        assert_eq!(
            o.attach(p(1), Member::Peer(p(1))),
            Err(OverlayError::SelfParent)
        );
    }

    #[test]
    fn attach_rejects_cycle() {
        let population = pop(2, &[(1, 1), (1, 2), (1, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();
        // 0 under 2 would close the loop 0 -> 1 -> 2 -> 0.
        assert_eq!(
            o.attach(p(0), Member::Peer(p(2))),
            Err(OverlayError::WouldCycle)
        );
        o.validate().unwrap();
    }

    #[test]
    fn detach_without_parent_errors() {
        let population = pop(1, &[(1, 1)]);
        let mut o = Overlay::new(&population);
        assert_eq!(o.detach(p(0)), Err(OverlayError::NoParent));
    }

    #[test]
    fn remove_peer_orphans_children_with_subtrees() {
        let population = pop(1, &[(2, 1), (1, 2), (1, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(0))).unwrap();
        o.attach(p(3), Member::Peer(p(1))).unwrap();
        let orphans = o.remove_peer(p(0));
        assert_eq!(orphans.len(), 2);
        assert_eq!(o.parent(p(1)), None);
        // 3 stays under 1: the fragment is reusable (§3.2).
        assert_eq!(o.parent(p(3)), Some(Member::Peer(p(1))));
        assert_eq!(o.root(p(3)), ChainRoot::Fragment(p(1)));
        assert_eq!(o.source_children(), &[] as &[PeerId]);
        o.validate().unwrap();
    }

    #[test]
    fn free_fanout_accounting() {
        let population = pop(2, &[(3, 1), (0, 2)]);
        let mut o = Overlay::new(&population);
        assert_eq!(o.free_fanout(Member::Source), 2);
        assert_eq!(o.free_fanout(Member::Peer(p(0))), 3);
        assert!(!o.has_free_fanout(Member::Peer(p(1))));
        o.attach(p(0), Member::Source).unwrap();
        assert_eq!(o.free_fanout(Member::Source), 1);
    }

    #[test]
    fn subtree_is_breadth_first_closure() {
        let population = pop(1, &[(2, 1), (1, 2), (0, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(0))).unwrap();
        o.attach(p(3), Member::Peer(p(1))).unwrap();
        let sub = o.subtree(p(0));
        assert_eq!(sub, vec![p(0), p(1), p(2), p(3)]);
        assert_eq!(o.subtree(p(3)), vec![p(3)]);
    }

    #[test]
    fn speculative_delay_of_fragment_root() {
        let population = pop(1, &[(1, 1)]);
        let o = Overlay::new(&population);
        assert_eq!(o.speculative_delay(p(0)), 1);
        assert_eq!(o.hops_to_root(p(0)), 0);
    }

    #[test]
    fn attached_count_tracks_links() {
        let population = pop(2, &[(1, 1), (1, 2)]);
        let mut o = Overlay::new(&population);
        assert_eq!(o.attached_count(), 0);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        assert_eq!(o.attached_count(), 2);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn equality_ignores_arena_garbage() {
        // Drive two overlays to the same logical state along different
        // mutation paths, leaving different garbage beyond the live
        // child counts; they must still compare equal.
        let population = pop(2, &[(2, 1), (0, 2), (0, 2)]);
        let mut a = Overlay::new(&population);
        a.attach(p(0), Member::Source).unwrap();
        a.attach(p(1), Member::Peer(p(0))).unwrap();
        let mut b = a.clone();
        assert_eq!(a, b);
        b.attach(p(2), Member::Peer(p(0))).unwrap();
        assert_ne!(a, b);
        b.detach(p(2)).unwrap();
        // b's pool slot 1 still holds stale garbage from peer 2's stay.
        assert_eq!(a, b);
    }

    #[test]
    fn spot_check_accepts_every_peer_of_a_valid_forest() {
        let population = pop(2, &[(2, 1), (1, 2), (0, 3), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();
        for i in 0..4 {
            assert_eq!(o.spot_check(p(i)), Ok(()), "peer {i}");
        }
        o.detach(p(1)).unwrap();
        for i in 0..4 {
            assert_eq!(o.spot_check(p(i)), Ok(()), "peer {i} after detach");
        }
    }

    #[test]
    fn delta_tracking_records_cache_movements() {
        let population = pop(2, &[(2, 1), (1, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.set_delta_tracking(true);
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(0), Member::Source).unwrap();
        let mut delays = Vec::new();
        let mut fanouts = Vec::new();
        o.take_deltas_into(&mut delays, &mut fanouts);
        assert!(!o.has_pending_deltas());
        // First attach roots nothing (fragment), second roots both.
        assert!(delays.contains(&(p(1), None)));
        assert!(delays.contains(&(p(0), Some(1))));
        assert!(delays.contains(&(p(1), Some(2))));
        assert_eq!(fanouts, vec![p(0)]);
        // Replaying the final records per peer matches the live state.
        for peer in [p(0), p(1), p(2)] {
            let last = delays.iter().rev().find(|(q, _)| *q == peer);
            match last {
                Some((_, d)) => assert_eq!(*d, o.delay(peer)),
                None => assert_eq!(o.delay(peer), None),
            }
        }
    }

    #[test]
    fn json_round_trip_preserves_arena_state() {
        let population = pop(2, &[(2, 1), (1, 2), (0, 3)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        o.attach(p(2), Member::Peer(p(1))).unwrap();
        o.detach(p(1)).unwrap();
        let json = o.to_json();
        let back = Overlay::from_json(&json).unwrap();
        assert_eq!(o, back);
        assert_eq!(back.children(p(1)), &[p(2)]);
    }
}
