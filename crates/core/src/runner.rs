//! High-level run orchestration: single construction runs, runs under
//! churn, and the recorded outcomes the experiment harness consumes.

use lagover_obs::{HealthSample, Journal, Profiler, Scrape};
use lagover_sim::{ChurnProcess, CorruptionPlan, FaultPlan, Round, SimRng, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::config::ConstructionConfig;
use crate::engine::{Engine, EngineCounters};
use crate::node::Population;
use crate::oracle::Oracle;

/// Everything recorded about one construction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstructionOutcome {
    /// Round at which every online peer was first satisfied, if reached
    /// within the round cap — the paper's *construction latency*.
    pub converged_at: Option<u64>,
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Per-round satisfied fraction (x = round, y = fraction).
    pub satisfied_series: TimeSeries,
    /// Final satisfied fraction.
    pub final_satisfied_fraction: f64,
    /// Event counters accumulated over the run.
    pub counters: EngineCounters,
}

impl ConstructionOutcome {
    /// Whether the run converged within its round cap.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Construction latency as a float, with non-convergence mapped to
    /// `cap` (the paper plots truncated bars for non-converged runs).
    pub fn latency_or(&self, cap: f64) -> f64 {
        self.converged_at.map(|r| r as f64).unwrap_or(cap)
    }
}

/// Runs construction (no churn) until convergence or the configured
/// round cap, recording the satisfied-fraction series.
///
/// # Example
///
/// ```
/// use lagover_core::{construct, Algorithm, ConstructionConfig, OracleKind};
/// use lagover_core::node::{Constraints, Population};
///
/// let pop = Population::new(2, vec![
///     Constraints::new(1, 1),
///     Constraints::new(0, 2),
/// ]);
/// let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay);
/// let outcome = construct(&pop, &config, 1);
/// assert!(outcome.converged());
/// assert_eq!(outcome.final_satisfied_fraction, 1.0);
/// ```
pub fn construct(
    population: &Population,
    config: &ConstructionConfig,
    seed: u64,
) -> ConstructionOutcome {
    let engine = Engine::new(population, config, seed);
    construct_with_engine(engine)
}

/// [`construct`] with a custom oracle (DHT directory, random-walk
/// sampler, …).
pub fn construct_with_oracle(
    population: &Population,
    config: &ConstructionConfig,
    oracle: Box<dyn Oracle>,
    seed: u64,
) -> ConstructionOutcome {
    let engine = Engine::with_oracle(population, config, oracle, seed);
    construct_with_engine(engine)
}

fn construct_with_engine(mut engine: Engine) -> ConstructionOutcome {
    let mut series = TimeSeries::new("satisfied_fraction");
    series.push(0.0, engine.satisfied_fraction());
    let mut converged_at: Option<Round> = if engine.is_converged() {
        Some(engine.round())
    } else {
        None
    };
    while converged_at.is_none() && engine.round().get() < engine.config().max_rounds {
        engine.step();
        series.push(engine.round().get() as f64, engine.satisfied_fraction());
        if engine.is_converged() {
            converged_at = Some(engine.round());
        }
    }
    ConstructionOutcome {
        converged_at: converged_at.map(Round::get),
        rounds_run: engine.round().get(),
        final_satisfied_fraction: engine.satisfied_fraction(),
        satisfied_series: series,
        counters: *engine.counters(),
    }
}

/// A construction run with the full observability pipeline attached:
/// the plain outcome plus the event journal, the per-interval registry
/// scrapes and health probes, and the cost-model profile.
///
/// Everything here derives deterministically from the run itself, so
/// two observed runs of the same seed compare byte-equal — including
/// through the JSON forms the report generator emits.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedRun {
    /// The plain construction outcome (identical to [`construct`]'s).
    pub outcome: ConstructionOutcome,
    /// The bounded event journal recorded over the run.
    pub journal: Journal,
    /// Registry scrapes, one per sample interval plus the final round.
    pub scrapes: Vec<Scrape>,
    /// Overlay health probes, taken at the same cadence as the scrapes.
    pub health: Vec<HealthSample>,
    /// Per-phase work profile.
    pub profile: Profiler,
}

/// [`construct`] with the observability pipeline enabled: records every
/// protocol event into a journal bounded by `journal_capacity`, probes
/// overlay health and scrapes the metrics registry every
/// `sample_interval` rounds (clamped to at least 1) and once more at
/// the final round, and attributes per-phase work to the profiler.
///
/// The observed run consumes **exactly** the same RNG stream as the
/// plain one: observation only reads engine state, so
/// `construct_observed(p, c, s, ..).outcome == construct(p, c, s)`.
pub fn construct_observed(
    population: &Population,
    config: &ConstructionConfig,
    seed: u64,
    journal_capacity: usize,
    sample_interval: u64,
) -> ObservedRun {
    let interval = sample_interval.max(1);
    let mut engine = Engine::new(population, config, seed);
    engine
        .obs_mut()
        .enable_journal(journal_capacity)
        .enable_registry()
        .enable_profiler();

    let mut series = TimeSeries::new("satisfied_fraction");
    series.push(0.0, engine.satisfied_fraction());
    let mut scrapes = Vec::new();
    let mut health = Vec::new();
    health.push(engine.health_sample());
    scrapes.push(engine.scrape().expect("registry enabled"));
    let mut converged_at: Option<Round> = if engine.is_converged() {
        Some(engine.round())
    } else {
        None
    };
    while converged_at.is_none() && engine.round().get() < engine.config().max_rounds {
        engine.step();
        series.push(engine.round().get() as f64, engine.satisfied_fraction());
        if engine.is_converged() {
            converged_at = Some(engine.round());
        }
        if engine.round().get().is_multiple_of(interval) || converged_at.is_some() {
            health.push(engine.health_sample());
            scrapes.push(engine.scrape().expect("registry enabled"));
        }
    }
    let outcome = ConstructionOutcome {
        converged_at: converged_at.map(Round::get),
        rounds_run: engine.round().get(),
        final_satisfied_fraction: engine.satisfied_fraction(),
        satisfied_series: series,
        counters: *engine.counters(),
    };
    let profile = engine.obs().profiler().cloned().expect("profiler enabled");
    let journal = engine.obs_mut().take_journal().expect("journal enabled");
    ObservedRun {
        outcome,
        journal,
        scrapes,
        health,
        profile,
    }
}

/// Runs `job(i)` for every index in `0..count` across worker threads,
/// returning results in index order.
///
/// Determinism: each job must derive all of its randomness from its own
/// index (the drivers map the index to an independent `SimRng` seed), so
/// the result vector is **bit-identical** to the sequential
/// `(0..count).map(job)` loop — only the wall-clock changes. This is
/// what lets the median-of-k experiment drivers parallelize without
/// perturbing any published figure.
///
/// Indices are split into contiguous chunks, one scoped thread per
/// chunk, capped at the machine's available parallelism (overridable
/// via the `LAGOVER_THREADS` environment variable). Falls back to the
/// plain sequential loop when only one worker would run.
pub fn parallel_runs<T, F>(count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_runs_with(count, default_threads(), job)
}

/// Worker count for [`parallel_runs`]: `LAGOVER_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
fn default_threads() -> usize {
    std::env::var("LAGOVER_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Chunk width for splitting `count` indices across `threads` workers:
/// `ceil(count / threads)` by default, overridable via the
/// `LAGOVER_CHUNK` environment variable (clamped to `[1, count]`).
///
/// The override exists for `cargo xtask replay-diff`, which re-runs the
/// figure drivers under several chunkings to prove the results do not
/// depend on how work is split.
fn chunk_size(count: usize, threads: usize) -> usize {
    let default = count.div_ceil(threads.max(1)).max(1);
    std::env::var("LAGOVER_CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c: &usize| c >= 1)
        .map_or(default, |c| c.min(count.max(1)))
}

/// The contiguous `(start, len)` chunk assignment [`parallel_runs_with`]
/// hands to its worker threads. Pure and public so the concurrency model
/// tests exercise the *actual* work-splitting logic, not a copy of it.
pub fn chunk_plan(count: usize, threads: usize) -> Vec<(usize, usize)> {
    if count == 0 {
        return Vec::new();
    }
    let chunk = chunk_size(count, threads);
    (0..count)
        .step_by(chunk)
        .map(|start| (start, chunk.min(count - start)))
        .collect()
}

/// [`parallel_runs`] with an explicit worker count. The result is
/// bit-identical for every `threads` value; the knob only controls how
/// the index range is chunked across scoped threads.
pub fn parallel_runs_with<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(count);
    if threads <= 1 {
        return (0..count).map(job).collect();
    }
    let chunk = chunk_size(count, threads);
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(count, || None);
    let job = &job;
    std::thread::scope(|scope| {
        for (start, slots) in (0..count).step_by(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(job(start + offset));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index filled by its chunk thread"))
        .collect()
}

/// Minimum index-space size for which [`parallel_fold`] goes wide.
/// Below it, spawning scoped threads costs more than the scan itself.
const PAR_FOLD_MIN: usize = 1 << 15;

/// Deterministic fold over the index space `[0, count)`, split by the
/// same [`chunk_plan`] that [`parallel_runs_with`] uses: each chunk is
/// folded sequentially by `map`, and chunk results are combined
/// left-to-right in chunk order. The output is therefore byte-identical
/// for every `LAGOVER_THREADS` / `LAGOVER_CHUNK` setting — including
/// order-sensitive accumulators — which is what lets the engine's O(N)
/// probes go wide inside a *single* large run without perturbing it.
///
/// Small index spaces (below an internal threshold) and single-thread
/// configurations fold inline with no thread setup at all.
pub fn parallel_fold<T, M, C>(count: usize, map: M, combine: C) -> T
where
    T: Send,
    M: Fn(std::ops::Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = default_threads().min(count);
    if count < PAR_FOLD_MIN || threads <= 1 {
        return map(0..count);
    }
    let plan = chunk_plan(count, threads);
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(plan.len(), || None);
    let map = &map;
    std::thread::scope(|scope| {
        for ((start, len), slot) in plan.iter().copied().zip(results.iter_mut()) {
            scope.spawn(move || {
                *slot = Some(map(start..start + len));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk folded by its thread"))
        .reduce(combine)
        .expect("count >= PAR_FOLD_MIN implies at least one chunk")
}

/// One construction run per seed, in parallel, results in seed order —
/// the common inner loop of the figure drivers.
pub fn construct_many(
    population: &Population,
    config: &ConstructionConfig,
    seeds: &[u64],
) -> Vec<ConstructionOutcome> {
    parallel_runs(seeds.len(), |i| construct(population, config, seeds[i]))
}

/// Everything recorded about a run under churn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// Round at which all online peers were first satisfied, if ever.
    pub first_converged_at: Option<u64>,
    /// Rounds executed.
    pub rounds_run: u64,
    /// Per-round satisfied fraction.
    pub satisfied_series: TimeSeries,
    /// Mean satisfied fraction over the final quarter of the run — the
    /// steady-state quality under membership dynamics.
    pub steady_state_fraction: f64,
    /// Fraction of rounds in which all online peers were satisfied.
    pub fully_satisfied_round_fraction: f64,
    /// Event counters accumulated over the run.
    pub counters: EngineCounters,
}

/// Runs construction for exactly `rounds` rounds, applying one churn
/// step before each construction round (the paper's §5.3 protocol:
/// everyone starts online; each time step peers leave w.p. 0.01 and
/// rejoin w.p. 0.2).
pub fn run_with_churn(
    population: &Population,
    config: &ConstructionConfig,
    churn: &mut dyn ChurnProcess,
    rounds: u64,
    seed: u64,
) -> ChurnOutcome {
    let mut engine = Engine::new(population, config, seed);
    let mut series = TimeSeries::new("satisfied_fraction");
    let mut first_converged_at = None;
    let mut fully_satisfied_rounds = 0u64;
    series.push(0.0, engine.satisfied_fraction());
    for _ in 0..rounds {
        engine.apply_churn(churn);
        engine.step();
        let frac = engine.satisfied_fraction();
        series.push(engine.round().get() as f64, frac);
        if engine.is_converged() {
            fully_satisfied_rounds += 1;
            if first_converged_at.is_none() {
                first_converged_at = Some(engine.round().get());
            }
        }
    }
    let window = (rounds as usize / 4).max(1).min(series.len());
    let steady = series.tail_mean(window).unwrap_or(0.0);
    ChurnOutcome {
        first_converged_at,
        rounds_run: rounds,
        satisfied_series: series,
        steady_state_fraction: steady,
        fully_satisfied_round_fraction: if rounds == 0 {
            0.0
        } else {
            fully_satisfied_rounds as f64 / rounds as f64
        },
        counters: *engine.counters(),
    }
}

/// A declarative fault scenario for [`run_recovery`]: crash a fraction
/// of the converged overlay's interior, optionally black out the
/// oracle and drop interactions while the overlay heals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Fraction of *interior* nodes (online peers serving at least one
    /// child) to crash-stop at the moment convergence is reached.
    pub crash_fraction: f64,
    /// Per-interaction message-loss probability during recovery.
    pub message_loss: f64,
    /// Oracle blackout length, starting at the crash round (`0` for no
    /// outage).
    pub blackout_rounds: u64,
}

impl FaultScenario {
    /// A scenario injecting no faults at all.
    pub fn none() -> Self {
        FaultScenario {
            crash_fraction: 0.0,
            message_loss: 0.0,
            blackout_rounds: 0,
        }
    }
}

/// Everything recorded about one crash-and-heal run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Round at which the initial (pre-fault) construction converged,
    /// if it did within the configured cap.
    pub construction_converged_at: Option<u64>,
    /// Round at which the faults were injected.
    pub crash_round: u64,
    /// Number of interior nodes crashed.
    pub crashed_peers: usize,
    /// Rounds from injection until every live peer was satisfied again
    /// with no chain crossing a corpse, if reached within the horizon.
    pub recovery_rounds: Option<u64>,
    /// Rounds actually executed after the injection.
    pub rounds_run: u64,
    /// Peak orphan population observed during recovery.
    pub orphan_peak: u64,
    /// Orphan population per round (x = round, y = orphans).
    pub orphan_series: TimeSeries,
    /// Rounds during which at least one live peer's chain crossed a
    /// crashed-but-undetected ancestor (staleness violations).
    pub stale_rounds: u64,
    /// Event counters accumulated over the whole run.
    pub counters: EngineCounters,
}

impl RecoveryOutcome {
    /// Whether the overlay healed within the recovery horizon.
    pub fn recovered(&self) -> bool {
        self.recovery_rounds.is_some()
    }

    /// Recovery time as a float, with non-recovery mapped to `cap`.
    pub fn recovery_or(&self, cap: f64) -> f64 {
        self.recovery_rounds.map(|r| r as f64).unwrap_or(cap)
    }
}

/// Builds the overlay to convergence, then injects the scenario —
/// crash-stop a cohort of interior nodes, start an oracle blackout,
/// switch on message loss — and measures self-healing for up to
/// `recovery_horizon` further rounds.
///
/// Recovery means more than the paper's convergence criterion: every
/// live peer satisfied **and** no live chain crossing a crashed peer
/// (right after a silent crash the old chain still *looks* rooted, so
/// satisfaction alone would declare victory while peers reference a
/// corpse).
///
/// The victim cohort is drawn from a stream split off `seed`, not from
/// the engine's own RNG, so the same peers crash regardless of how the
/// construction phase consumed randomness.
pub fn run_recovery(
    population: &Population,
    config: &ConstructionConfig,
    scenario: &FaultScenario,
    recovery_horizon: u64,
    seed: u64,
) -> RecoveryOutcome {
    recovery_inner(
        population,
        config,
        scenario,
        recovery_horizon,
        seed,
        None,
        None,
    )
    .0
}

/// [`run_recovery`] against a substrate oracle realization (DHT
/// directory, random-walk sampler, …) instead of the reference oracle —
/// the crash-and-heal path of the realization experiments.
pub fn run_recovery_with_oracle(
    population: &Population,
    config: &ConstructionConfig,
    oracle: Box<dyn Oracle>,
    scenario: &FaultScenario,
    recovery_horizon: u64,
    seed: u64,
) -> RecoveryOutcome {
    recovery_inner(
        population,
        config,
        scenario,
        recovery_horizon,
        seed,
        None,
        Some(oracle),
    )
    .0
}

/// A crash-and-heal run with the observability pipeline attached. The
/// scrape/health timeline starts at the crash round: recovery is what
/// this run exists to observe.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedRecovery {
    /// The plain recovery outcome (identical to [`run_recovery`]'s).
    pub outcome: RecoveryOutcome,
    /// The bounded event journal recorded over the whole run.
    pub journal: Journal,
    /// Registry scrapes: crash round, every interval, and the final round.
    pub scrapes: Vec<Scrape>,
    /// Health probes at the same cadence.
    pub health: Vec<HealthSample>,
    /// Per-phase work profile (construction phase included).
    pub profile: Profiler,
}

/// [`run_recovery`] with the observability pipeline enabled; the
/// outcome is bit-identical to the unobserved run's.
pub fn run_recovery_observed(
    population: &Population,
    config: &ConstructionConfig,
    scenario: &FaultScenario,
    recovery_horizon: u64,
    seed: u64,
    journal_capacity: usize,
    sample_interval: u64,
) -> ObservedRecovery {
    recovery_inner(
        population,
        config,
        scenario,
        recovery_horizon,
        seed,
        Some((journal_capacity, sample_interval.max(1))),
        None,
    )
    .1
    .expect("observation requested")
}

fn recovery_inner(
    population: &Population,
    config: &ConstructionConfig,
    scenario: &FaultScenario,
    recovery_horizon: u64,
    seed: u64,
    observe: Option<(usize, u64)>,
    oracle: Option<Box<dyn Oracle>>,
) -> (RecoveryOutcome, Option<ObservedRecovery>) {
    let mut engine = match oracle {
        Some(oracle) => Engine::with_oracle(population, config, oracle, seed),
        None => Engine::new(population, config, seed),
    };
    if let Some((capacity, _)) = observe {
        engine
            .obs_mut()
            .enable_journal(capacity)
            .enable_registry()
            .enable_profiler();
    }
    let construction_converged_at = engine.run_to_convergence().map(Round::get);
    let crash_round = engine.round().get();

    // Interior nodes: online peers currently serving at least one
    // child. Crashing leaves hurts nobody downstream; crashing the
    // interior is what the detection path exists for.
    let interior: Vec<u32> = population
        .peer_ids()
        .filter(|&p| engine.is_online(p) && !engine.overlay().children(p).is_empty())
        .map(|p| p.get())
        .collect();
    let mut cohort_rng = SimRng::seed_from(seed).split(0xFA17_C0DE);
    let victims =
        lagover_sim::faults::crash_cohort(&interior, scenario.crash_fraction, &mut cohort_rng);
    for &v in &victims {
        engine.inject_crash(crate::node::PeerId::new(v));
    }
    engine.set_faults(
        FaultPlan::none()
            .with_message_loss(scenario.message_loss)
            .with_blackout(crash_round, scenario.blackout_rounds),
    );

    let mut scrapes = Vec::new();
    let mut health = Vec::new();
    if observe.is_some() {
        // Timeline starts at the moment of injection.
        health.push(engine.health_sample());
        scrapes.push(engine.scrape().expect("registry enabled"));
    }

    let mut orphan_series = TimeSeries::new("orphans");
    let mut orphan_peak = engine.orphan_count() as u64;
    orphan_series.push(crash_round as f64, orphan_peak as f64);
    let mut stale_rounds = 0u64;
    let mut recovery_rounds = None;
    let mut rounds_run = 0u64;
    for _ in 0..recovery_horizon {
        engine.step();
        rounds_run += 1;
        let orphans = engine.orphan_count() as u64;
        orphan_peak = orphan_peak.max(orphans);
        orphan_series.push(engine.round().get() as f64, orphans as f64);
        let stale = engine.stale_chain_count();
        if stale > 0 {
            stale_rounds += 1;
        }
        let healed = engine.is_converged() && stale == 0;
        if let Some((_, interval)) = observe {
            if rounds_run.is_multiple_of(interval) || healed {
                health.push(engine.health_sample());
                scrapes.push(engine.scrape().expect("registry enabled"));
            }
        }
        if healed {
            recovery_rounds = Some(engine.round().get() - crash_round);
            break;
        }
    }
    let outcome = RecoveryOutcome {
        construction_converged_at,
        crash_round,
        crashed_peers: victims.len(),
        recovery_rounds,
        rounds_run,
        orphan_peak,
        orphan_series,
        stale_rounds,
        counters: *engine.counters(),
    };
    let observed = observe.map(|_| ObservedRecovery {
        outcome: outcome.clone(),
        journal: engine.obs_mut().take_journal().expect("journal enabled"),
        scrapes,
        health,
        profile: engine.obs().profiler().cloned().expect("profiler enabled"),
    });
    (outcome, observed)
}

/// Everything recorded about one corrupt-and-stabilize run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilizationOutcome {
    /// Round at which the initial (pre-corruption) construction
    /// converged, if it did within the configured cap.
    pub construction_converged_at: Option<u64>,
    /// Round at which the corruption plan was applied.
    pub corruption_round: u64,
    /// Peer states the plan actually mutated.
    pub corrupted_states: u64,
    /// Whether [`crate::Overlay::validate`] rejected the snapshot right
    /// after injection (the structural corruption classes guarantee it;
    /// pure cache forgeries may pass structure and fail only the cache
    /// coherence checks).
    pub valid_after_injection: bool,
    /// Rounds from injection until the overlay was validate-clean,
    /// every live peer satisfied, and no chain crossed a corpse — the
    /// *time to clean* — if reached within the horizon.
    pub clean_rounds: Option<u64>,
    /// Rounds actually executed after the injection.
    pub rounds_run: u64,
    /// Per-round satisfied fraction from the corruption round on.
    pub satisfied_series: TimeSeries,
    /// Per-round cumulative repair actions from the corruption round on
    /// — the time-to-clean series the stabilization experiment plots.
    pub repair_series: TimeSeries,
    /// Event counters accumulated over the whole run.
    pub counters: EngineCounters,
}

impl StabilizationOutcome {
    /// Whether the overlay re-stabilized within the horizon.
    pub fn stabilized(&self) -> bool {
        self.clean_rounds.is_some()
    }

    /// Time-to-clean as a float, with non-recovery mapped to `cap`.
    pub fn clean_or(&self, cap: f64) -> f64 {
        self.clean_rounds.map(|r| r as f64).unwrap_or(cap)
    }
}

/// A corrupt-and-stabilize run with the observability pipeline
/// attached; the timeline starts at the corruption round.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedStabilization {
    /// The plain outcome (identical to [`run_stabilization`]'s).
    pub outcome: StabilizationOutcome,
    /// The bounded event journal recorded over the whole run —
    /// including every `InconsistencyDetected` / `RepairAction`.
    pub journal: Journal,
    /// Registry scrapes: corruption round, every interval, the clean
    /// round.
    pub scrapes: Vec<Scrape>,
    /// Health probes at the same cadence.
    pub health: Vec<HealthSample>,
    /// Per-phase work profile.
    pub profile: Profiler,
}

/// Builds the overlay to convergence, applies `plan` as a one-shot
/// snapshot corruption, and measures self-stabilization for up to
/// `horizon` further rounds.
///
/// *Clean* is stricter than the paper's convergence criterion: the
/// overlay must pass the full [`crate::Overlay::validate`] sweep (a
/// forged cache can make every peer *look* satisfied), every live peer
/// must be satisfied, and no chain may cross a crashed peer. Reaching
/// it re-arms the engine's round-end invariant assertions.
pub fn run_stabilization(
    population: &Population,
    config: &ConstructionConfig,
    plan: &CorruptionPlan,
    horizon: u64,
    seed: u64,
) -> StabilizationOutcome {
    stabilization_inner(population, config, plan, horizon, seed, None, None).0
}

/// [`run_stabilization`] against a substrate oracle realization.
pub fn run_stabilization_with_oracle(
    population: &Population,
    config: &ConstructionConfig,
    oracle: Box<dyn Oracle>,
    plan: &CorruptionPlan,
    horizon: u64,
    seed: u64,
) -> StabilizationOutcome {
    stabilization_inner(population, config, plan, horizon, seed, None, Some(oracle)).0
}

/// [`run_stabilization`] with the observability pipeline enabled; the
/// outcome is bit-identical to the unobserved run's.
pub fn run_stabilization_observed(
    population: &Population,
    config: &ConstructionConfig,
    plan: &CorruptionPlan,
    horizon: u64,
    seed: u64,
    journal_capacity: usize,
    sample_interval: u64,
) -> ObservedStabilization {
    stabilization_inner(
        population,
        config,
        plan,
        horizon,
        seed,
        Some((journal_capacity, sample_interval.max(1))),
        None,
    )
    .1
    .expect("observation requested")
}

fn stabilization_inner(
    population: &Population,
    config: &ConstructionConfig,
    plan: &CorruptionPlan,
    horizon: u64,
    seed: u64,
    observe: Option<(usize, u64)>,
    oracle: Option<Box<dyn Oracle>>,
) -> (StabilizationOutcome, Option<ObservedStabilization>) {
    let mut engine = match oracle {
        Some(oracle) => Engine::with_oracle(population, config, oracle, seed),
        None => Engine::new(population, config, seed),
    };
    if let Some((capacity, _)) = observe {
        engine
            .obs_mut()
            .enable_journal(capacity)
            .enable_registry()
            .enable_profiler();
    }
    let construction_converged_at = engine.run_to_convergence().map(Round::get);
    let corruption_round = engine.round().get();
    let corrupted_states = crate::stabilize::apply_corruption(&mut engine, plan);
    let valid_after_injection = engine.overlay().validate().is_ok();

    let mut scrapes = Vec::new();
    let mut health = Vec::new();
    if observe.is_some() {
        health.push(engine.health_sample());
        scrapes.push(engine.scrape().expect("registry enabled"));
    }

    let repairs_at_injection = engine.counters().repair_actions;
    let mut satisfied_series = TimeSeries::new("satisfied_fraction");
    let mut repair_series = TimeSeries::new("repairs");
    satisfied_series.push(corruption_round as f64, engine.satisfied_fraction());
    repair_series.push(corruption_round as f64, 0.0);
    let mut clean_rounds = None;
    let mut rounds_run = 0u64;
    for _ in 0..horizon {
        engine.step();
        rounds_run += 1;
        let round = engine.round().get() as f64;
        satisfied_series.push(round, engine.satisfied_fraction());
        repair_series.push(
            round,
            (engine.counters().repair_actions - repairs_at_injection) as f64,
        );
        let clean = engine.overlay().validate().is_ok()
            && engine.is_converged()
            && engine.stale_chain_count() == 0;
        if let Some((_, interval)) = observe {
            if rounds_run.is_multiple_of(interval) || clean {
                health.push(engine.health_sample());
                scrapes.push(engine.scrape().expect("registry enabled"));
            }
        }
        if clean {
            engine.set_stabilizing(false);
            clean_rounds = Some(engine.round().get() - corruption_round);
            break;
        }
    }
    let outcome = StabilizationOutcome {
        construction_converged_at,
        corruption_round,
        corrupted_states,
        valid_after_injection,
        clean_rounds,
        rounds_run,
        satisfied_series,
        repair_series,
        counters: *engine.counters(),
    };
    let observed = observe.map(|_| ObservedStabilization {
        outcome: outcome.clone(),
        journal: engine.obs_mut().take_journal().expect("journal enabled"),
        scrapes,
        health,
        profile: engine.obs().profiler().cloned().expect("profiler enabled"),
    });
    (outcome, observed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::node::Constraints;
    use crate::oracle::OracleKind;
    use lagover_sim::{BernoulliChurn, NoChurn};

    fn population() -> Population {
        // Source feeds 2; two tiers.
        Population::new(
            2,
            vec![
                Constraints::new(2, 1),
                Constraints::new(2, 1),
                Constraints::new(0, 2),
                Constraints::new(0, 2),
                Constraints::new(0, 2),
                Constraints::new(0, 2),
            ],
        )
    }

    #[test]
    fn construct_records_monotone_progress_to_one() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let outcome = construct(&population(), &config, 5);
        assert!(outcome.converged());
        assert_eq!(outcome.final_satisfied_fraction, 1.0);
        assert_eq!(outcome.satisfied_series.last().map(|(_, y)| y), Some(1.0));
        assert_eq!(outcome.rounds_run, outcome.converged_at.unwrap());
        assert!(outcome.counters.attaches >= 6);
    }

    #[test]
    fn latency_or_caps_nonconverged() {
        let o = ConstructionOutcome {
            converged_at: None,
            rounds_run: 10,
            satisfied_series: TimeSeries::new("s"),
            final_satisfied_fraction: 0.5,
            counters: EngineCounters::default(),
        };
        assert_eq!(o.latency_or(99.0), 99.0);
        assert!(!o.converged());
    }

    #[test]
    fn run_with_no_churn_matches_construct_quality() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let outcome = run_with_churn(&population(), &config, &mut NoChurn, 300, 5);
        assert!(outcome.first_converged_at.is_some());
        assert_eq!(outcome.steady_state_fraction, 1.0);
        assert!(outcome.fully_satisfied_round_fraction > 0.8);
    }

    #[test]
    fn run_with_paper_churn_keeps_high_steady_state() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let mut churn = BernoulliChurn::paper();
        let outcome = run_with_churn(&population(), &config, &mut churn, 600, 9);
        assert!(
            outcome.steady_state_fraction > 0.7,
            "steady state {} too low",
            outcome.steady_state_fraction
        );
        assert!(outcome.counters.churn_departures > 0);
    }

    #[test]
    fn parallel_runs_matches_sequential_order() {
        let sequential: Vec<u64> = (0..37).map(|i| (i as u64) * 3 + 1).collect();
        let parallel = parallel_runs(37, |i| (i as u64) * 3 + 1);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel_runs(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_runs(1, |i| i), vec![0]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        // Forces the scoped-thread path even on single-CPU machines,
        // including ragged final chunks (37 is not divisible by 4).
        let sequential: Vec<u64> = (0..37)
            .map(|i| (i as u64).wrapping_mul(0x9E37) ^ 7)
            .collect();
        for threads in [2, 4, 16, 64] {
            let parallel = parallel_runs_with(37, threads, |i| (i as u64).wrapping_mul(0x9E37) ^ 7);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn construct_many_is_bit_identical_to_sequential_construct() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let pop = population();
        let seeds = [5u64, 6, 7, 8, 9];
        let parallel = construct_many(&pop, &config, &seeds);
        for (seed, outcome) in seeds.iter().zip(&parallel) {
            assert_eq!(outcome, &construct(&pop, &config, *seed), "seed {seed}");
        }
    }

    #[test]
    fn observed_run_matches_plain_construct_exactly() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let pop = population();
        let observed = construct_observed(&pop, &config, 5, 1024, 10);
        // Observation must not perturb the run: same outcome, bit for bit.
        assert_eq!(observed.outcome, construct(&pop, &config, 5));
        assert!(!observed.journal.is_empty(), "attaches were journaled");
        assert_eq!(observed.health.len(), observed.scrapes.len());
        // The profile's phase totals reconcile with the engine counters.
        let total = observed.profile.total();
        assert_eq!(total.attaches, observed.outcome.counters.attaches);
        assert_eq!(
            total.oracle_queries,
            observed.outcome.counters.oracle_queries
        );
        assert_eq!(total.interactions, observed.outcome.counters.interactions);
        // Health converged: final probe satisfied and orphan-free.
        let last = observed.health.last().expect("sampled at least once");
        assert_eq!(last.satisfied_fraction, 1.0);
        assert_eq!(last.orphans, 0);
        // Scrapes carry the event-counter view of the journal.
        let final_scrape = observed.scrapes.last().expect("scraped at least once");
        assert_eq!(
            final_scrape.counter("engine.attaches"),
            observed.outcome.counters.attaches
        );
    }

    #[test]
    fn observed_run_is_deterministic() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let pop = population();
        let a = construct_observed(&pop, &config, 9, 256, 5);
        let b = construct_observed(&pop, &config, 9, 256, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_round_churn_run_is_well_formed() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let outcome = run_with_churn(&population(), &config, &mut NoChurn, 0, 1);
        assert_eq!(outcome.rounds_run, 0);
        assert_eq!(outcome.fully_satisfied_round_fraction, 0.0);
    }

    /// Two interior relays with slack: crashing either leaves enough
    /// capacity (the freed source slot plus the survivor) for all four
    /// leaves to re-home.
    fn recovery_population() -> Population {
        Population::new(
            2,
            vec![
                Constraints::new(3, 1),
                Constraints::new(3, 1),
                Constraints::new(0, 3),
                Constraints::new(0, 3),
                Constraints::new(0, 3),
                Constraints::new(0, 3),
            ],
        )
    }

    #[test]
    fn recovery_run_heals_after_interior_crash() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let scenario = FaultScenario {
            crash_fraction: 0.5,
            message_loss: 0.0,
            blackout_rounds: 0,
        };
        let outcome = run_recovery(&recovery_population(), &config, &scenario, 1_000, 11);
        assert!(outcome.construction_converged_at.is_some());
        assert_eq!(outcome.crashed_peers, 1, "half of two interior nodes");
        assert_eq!(outcome.counters.crashes, 1);
        assert!(
            outcome.stale_rounds >= 1,
            "silent crash must leave stale chains during the detection window"
        );
        assert!(outcome.orphan_peak >= 1, "someone is orphaned by detection");
        assert!(outcome.recovered(), "survivors re-converge: {outcome:?}");
    }

    #[test]
    fn recovery_run_survives_blackout_and_loss() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let scenario = FaultScenario {
            crash_fraction: 0.5,
            message_loss: 0.1,
            blackout_rounds: 20,
        };
        let outcome = run_recovery(&recovery_population(), &config, &scenario, 1_500, 12);
        assert!(outcome.recovered(), "compound scenario heals: {outcome:?}");
        assert!(outcome.counters.oracle_outages > 0 || outcome.counters.messages_lost > 0);
    }

    #[test]
    fn recovery_run_is_deterministic() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let scenario = FaultScenario {
            crash_fraction: 0.5,
            message_loss: 0.05,
            blackout_rounds: 10,
        };
        let a = run_recovery(&recovery_population(), &config, &scenario, 800, 21);
        let b = run_recovery(&recovery_population(), &config, &scenario, 800, 21);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_recovery_matches_plain_run() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let scenario = FaultScenario {
            crash_fraction: 0.5,
            message_loss: 0.0,
            blackout_rounds: 5,
        };
        let plain = run_recovery(&recovery_population(), &config, &scenario, 800, 11);
        let observed =
            run_recovery_observed(&recovery_population(), &config, &scenario, 800, 11, 2048, 5);
        assert_eq!(observed.outcome, plain, "observation must not perturb");
        assert!(!observed.journal.is_empty());
        assert_eq!(observed.health.len(), observed.scrapes.len());
        assert!(observed.health.len() >= 2, "crash round plus healed round");
        // The crash itself is on the journal.
        assert!(observed
            .journal
            .iter()
            .any(|e| e.kind() == lagover_obs::EventKind::Crash));
    }

    #[test]
    fn stabilization_run_heals_every_class_at_once() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let plan = lagover_sim::CorruptionPlan::new(3)
            .with_all_classes()
            .with_severity(0.3);
        let outcome = run_stabilization(&recovery_population(), &config, &plan, 1_000, 11);
        assert!(outcome.construction_converged_at.is_some());
        assert!(outcome.corrupted_states > 0);
        assert!(
            !outcome.valid_after_injection,
            "structural classes must break validation"
        );
        assert!(outcome.stabilized(), "did not re-stabilize: {outcome:?}");
        assert!(outcome.counters.inconsistencies_detected > 0);
        assert!(outcome.counters.repair_actions > 0);
        assert_eq!(
            outcome.repair_series.last().map(|(_, y)| y),
            Some(outcome.counters.repair_actions as f64),
            "repair series ends at the cumulative total"
        );
    }

    #[test]
    fn stabilization_run_is_deterministic() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let plan = lagover_sim::CorruptionPlan::new(8)
            .with_all_classes()
            .with_severity(0.4);
        let a = run_stabilization(&recovery_population(), &config, &plan, 800, 21);
        let b = run_stabilization(&recovery_population(), &config, &plan, 800, 21);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corruption_plan_is_clean_immediately() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let plan = lagover_sim::CorruptionPlan::new(1);
        let outcome = run_stabilization(&recovery_population(), &config, &plan, 50, 5);
        assert_eq!(outcome.corrupted_states, 0);
        assert!(outcome.valid_after_injection);
        assert_eq!(outcome.clean_rounds, Some(1), "clean at the first check");
        assert_eq!(outcome.counters.inconsistencies_detected, 0);
    }

    #[test]
    fn observed_stabilization_matches_plain_run() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let plan = lagover_sim::CorruptionPlan::new(5)
            .with_all_classes()
            .with_severity(0.3);
        let plain = run_stabilization(&recovery_population(), &config, &plan, 800, 13);
        let observed =
            run_stabilization_observed(&recovery_population(), &config, &plan, 800, 13, 4096, 5);
        assert_eq!(observed.outcome, plain, "observation must not perturb");
        assert!(observed
            .journal
            .iter()
            .any(|e| e.kind() == lagover_obs::EventKind::InconsistencyDetected));
        assert!(observed
            .journal
            .iter()
            .any(|e| e.kind() == lagover_obs::EventKind::RepairAction));
        let last = observed.scrapes.last().expect("scraped at least once");
        assert_eq!(
            last.counter("engine.repair_actions"),
            plain.counters.repair_actions
        );
    }

    #[test]
    fn recovery_with_reference_oracle_realization_matches_builtin_shape() {
        // A custom oracle exercising the with-oracle path end to end:
        // the reference RandomDelay built explicitly.
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let scenario = FaultScenario {
            crash_fraction: 0.5,
            message_loss: 0.0,
            blackout_rounds: 0,
        };
        let outcome = run_recovery_with_oracle(
            &recovery_population(),
            &config,
            OracleKind::RandomDelay.build(),
            &scenario,
            1_000,
            11,
        );
        assert!(outcome.recovered(), "oracle-realization path heals");
        assert_eq!(outcome.crashed_peers, 1);
    }

    #[test]
    fn faultless_scenario_recovers_instantly() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let outcome = run_recovery(
            &recovery_population(),
            &config,
            &FaultScenario::none(),
            50,
            5,
        );
        assert_eq!(outcome.crashed_peers, 0);
        assert!(outcome.recovered());
        assert_eq!(outcome.orphan_peak, 0);
        assert_eq!(outcome.stale_rounds, 0);
    }
}
