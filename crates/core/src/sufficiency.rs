//! The §3.3 sufficiency condition for the existence of a LagOver, plus
//! an exact feasibility checker used to demonstrate that the condition
//! is sufficient but *not* necessary (§3.3.1).
//!
//! With `N_l` the set of nodes whose latency constraint is exactly `l`
//! (and `N_0 = {source}`), the paper's lemma states that all constraints
//! can be met level by level if
//!
//! ```text
//! |N_l| <= sum_{p in N_{l-1}} f_p + sum_{l' < l-1} ( sum_{p in N_{l'}} f_p - |N_{l'+1}| )
//! ```
//!
//! i.e. each level fits in the fanout of the previous level plus the
//! accumulated surplus of all earlier levels. [`check`] evaluates the
//! telescoped form of that inequality; [`exact_feasibility`] does a
//! backtracking search over depth assignments for small populations.

use serde::{Deserialize, Serialize};

use crate::node::{PeerId, Population};

/// Per-level bookkeeping of the sufficiency evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelReport {
    /// The latency value `l` of this level.
    pub level: u32,
    /// `|N_l|` — nodes demanding this level.
    pub demand: u64,
    /// Capacity available to this level (previous level's fanout plus
    /// carried surplus).
    pub available: u64,
}

/// Outcome of the sufficiency check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SufficiencyReport {
    /// Whether the condition holds at every level.
    pub satisfied: bool,
    /// The first level where demand exceeded availability, if any.
    pub first_violation: Option<u32>,
    /// Per-level detail, for levels `1..=max_latency`.
    pub levels: Vec<LevelReport>,
}

/// Evaluates the §3.3 sufficiency condition.
///
/// # Example
///
/// ```
/// use lagover_core::node::{Constraints, Population};
/// use lagover_core::sufficiency::check;
///
/// // Source feeds 1; a chain of two peers fits.
/// let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 2)]);
/// assert!(check(&pop).satisfied);
///
/// // Two peers demanding level 1 from a fanout-1 source do not.
/// let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(1, 1)]);
/// let report = check(&pop);
/// assert!(!report.satisfied);
/// assert_eq!(report.first_violation, Some(1));
/// ```
pub fn check(population: &Population) -> SufficiencyReport {
    let max_l = population.max_latency();
    let mut demand = vec![0u64; max_l as usize + 1];
    let mut fanout_sum = vec![0u64; max_l as usize + 1];
    for (_, c) in population.iter() {
        demand[c.latency as usize] += 1;
        fanout_sum[c.latency as usize] += u64::from(c.fanout);
    }

    let mut levels = Vec::with_capacity(max_l as usize);
    let mut satisfied = true;
    let mut first_violation = None;
    // Capacity the previous level's members contribute.
    let mut prev_fanout = u64::from(population.source_fanout());
    // Surplus carried from all earlier levels.
    let mut surplus: u64 = 0;
    for l in 1..=max_l {
        let need = demand[l as usize];
        let available = prev_fanout + surplus;
        levels.push(LevelReport {
            level: l,
            demand: need,
            available,
        });
        if need > available {
            satisfied = false;
            if first_violation.is_none() {
                first_violation = Some(l);
            }
            surplus = 0;
        } else {
            surplus = available - need;
        }
        prev_fanout = fanout_sum[l as usize];
    }
    SufficiencyReport {
        satisfied,
        first_violation,
        levels,
    }
}

/// A feasible depth assignment: `depths[i]` is the depth (= delay) of
/// peer `i`, with `1 <= depths[i] <= l_i`.
pub type DepthAssignment = Vec<u32>;

/// Exhaustively decides whether *any* LagOver exists for the population,
/// returning a witness depth assignment if so.
///
/// A depth profile is realizable as a tree iff, level by level, the
/// number of nodes at depth `d+1` is at most the total fanout of the
/// nodes placed at depth `d` (children can be distributed arbitrarily).
/// The search branches on which peers sit at each depth, pruning
/// dominated choices; intended for populations of at most ~16 peers
/// (the §3.3.1 counter-example has 5).
///
/// # Panics
///
/// Panics if the population exceeds 24 peers — use [`check`] or the
/// construction algorithms for large instances.
pub fn exact_feasibility(population: &Population) -> Option<DepthAssignment> {
    assert!(
        population.len() <= 24,
        "exact feasibility search is exponential; population too large"
    );
    let n = population.len();
    let constraints: Vec<(u32, u32)> = population
        .iter()
        .map(|(_, c)| (c.fanout, c.latency))
        .collect();
    let mut depths = vec![0u32; n];
    let all_mask: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    search(
        &constraints,
        all_mask,
        1,
        u64::from(population.source_fanout()),
        &mut depths,
    )
    .then_some(depths)
}

/// Recursive level-filling search. `remaining` is the bitmask of
/// unplaced peers, `depth` the level being filled, `slots` the capacity
/// available at this level.
fn search(
    constraints: &[(u32, u32)],
    remaining: u32,
    depth: u32,
    slots: u64,
    depths: &mut [u32],
) -> bool {
    if remaining == 0 {
        return true;
    }
    // Any peer whose deadline is the current depth must be placed now.
    let mut must: Vec<usize> = Vec::new();
    let mut optional: Vec<usize> = Vec::new();
    for (i, &(_, l)) in constraints.iter().enumerate() {
        if remaining & (1 << i) != 0 {
            if l == depth {
                must.push(i);
            } else if l > depth {
                optional.push(i);
            } else {
                // Deadline already passed: infeasible on this branch.
                return false;
            }
        }
    }
    if (must.len() as u64) > slots {
        return false;
    }
    let extra_slots = (slots - must.len() as u64).min(optional.len() as u64) as usize;
    // Enumerate subsets of `optional` of size up to `extra_slots`.
    // Iterate sizes descending: filling more early tends to succeed
    // sooner, and the empty subset is still tried for completeness.
    let mut chosen: Vec<usize> = Vec::new();
    for size in (0..=extra_slots).rev() {
        chosen.clear();
        if choose_and_recurse(
            constraints,
            remaining,
            depth,
            &must,
            &optional,
            size,
            0,
            &mut chosen,
            depths,
        ) {
            return true;
        }
    }
    false
}

/// Enumerates `size`-subsets of `optional[start..]` into `chosen` and
/// recurses on each completed placement.
#[allow(clippy::too_many_arguments)]
fn choose_and_recurse(
    constraints: &[(u32, u32)],
    remaining: u32,
    depth: u32,
    must: &[usize],
    optional: &[usize],
    size: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    depths: &mut [u32],
) -> bool {
    if chosen.len() == size {
        let mut next_remaining = remaining;
        let mut next_slots: u64 = 0;
        for &i in must.iter().chain(chosen.iter()) {
            next_remaining &= !(1 << i);
            next_slots += u64::from(constraints[i].0);
            depths[i] = depth;
        }
        if next_remaining == 0 {
            return true;
        }
        if next_slots > 0 && search(constraints, next_remaining, depth + 1, next_slots, depths) {
            return true;
        }
        return false;
    }
    let needed = size - chosen.len();
    if optional.len() - start < needed {
        return false;
    }
    for idx in start..optional.len() {
        chosen.push(optional[idx]);
        if choose_and_recurse(
            constraints,
            remaining,
            depth,
            must,
            optional,
            size,
            idx + 1,
            chosen,
            depths,
        ) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Validates that `depths` is a realizable assignment for `population`:
/// every depth within the peer's deadline, and every level fitting in
/// the previous level's fanout.
pub fn validate_assignment(population: &Population, depths: &[u32]) -> Result<(), String> {
    if depths.len() != population.len() {
        return Err("assignment length mismatch".into());
    }
    let max_d = depths.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u64; max_d as usize + 1];
    let mut fanout = vec![0u64; max_d as usize + 1];
    for (i, &d) in depths.iter().enumerate() {
        let p = PeerId::new(i as u32);
        let c = population.constraints(p);
        if d == 0 || d > c.latency {
            return Err(format!("{p} at depth {d} violates l={}", c.latency));
        }
        count[d as usize] += 1;
        fanout[d as usize] += u64::from(c.fanout);
    }
    let mut capacity = u64::from(population.source_fanout());
    for d in 1..=max_d as usize {
        if count[d] > capacity {
            return Err(format!(
                "level {d}: {} nodes exceed capacity {capacity}",
                count[d]
            ));
        }
        capacity = fanout[d];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Constraints;

    fn pop(source_fanout: u32, specs: &[(u32, u32)]) -> Population {
        Population::new(
            source_fanout,
            specs.iter().map(|&(f, l)| Constraints::new(f, l)).collect(),
        )
    }

    #[test]
    fn tf1_population_is_exactly_sufficient() {
        // 3 peers at l=1..4 layers: 3, 9, 27 (fanout 3 each), capacity
        // exactly consumed.
        let mut specs = Vec::new();
        for (l, count) in [(1u32, 3usize), (2, 9), (3, 27)] {
            for _ in 0..count {
                specs.push((3u32, l));
            }
        }
        let population = pop(3, &specs);
        let report = check(&population);
        assert!(report.satisfied);
        // Exactly zero slack everywhere.
        for lr in &report.levels {
            assert_eq!(lr.demand, lr.available, "level {}", lr.level);
        }
    }

    #[test]
    fn surplus_carries_forward() {
        // Source fanout 3 but only one l=1 node; the two spare source
        // slots serve l=3 demand even though N_2 contributes nothing.
        let population = pop(3, &[(0, 1), (0, 3), (0, 3)]);
        let report = check(&population);
        assert!(report.satisfied, "{report:?}");
    }

    #[test]
    fn overload_is_reported_at_first_failing_level() {
        let population = pop(1, &[(1, 1), (0, 2), (0, 2)]);
        let report = check(&population);
        assert!(!report.satisfied);
        assert_eq!(report.first_violation, Some(2));
    }

    #[test]
    fn counter_example_structure_fails_sufficiency_but_is_feasible() {
        // The §3.3.1-style instance (latencies adjusted per DESIGN.md):
        // {0_1, 1(f1,l1), 2(f1,l2), 3(f2,l4), 4(f1,l4), 5(f0,l4)}.
        // Level demand: N_4 = 3, but N_3 is empty — the level-by-level
        // condition fails, yet the chain 0->1->2->3->{4,5} satisfies
        // everyone.
        let population = pop(1, &[(1, 1), (1, 2), (2, 4), (1, 4), (0, 4)]);
        let report = check(&population);
        assert!(!report.satisfied, "sufficiency should fail: {report:?}");
        let depths = exact_feasibility(&population).expect("instance is feasible");
        validate_assignment(&population, &depths).unwrap();
    }

    #[test]
    fn exact_feasibility_detects_infeasible() {
        // Two l=1 peers, fanout-1 source.
        let population = pop(1, &[(1, 1), (1, 1)]);
        assert!(exact_feasibility(&population).is_none());
    }

    #[test]
    fn exact_feasibility_matches_sufficiency_on_satisfied_instances() {
        // Sufficiency => feasibility (the lemma's direction).
        let cases: Vec<Vec<(u32, u32)>> = vec![
            vec![(2, 1), (1, 2), (0, 2), (0, 3)],
            vec![(1, 1), (1, 2), (1, 3), (1, 4)],
            vec![(3, 1), (0, 2), (0, 2), (0, 2)],
        ];
        for specs in cases {
            let population = pop(2, &specs);
            if check(&population).satisfied {
                let depths = exact_feasibility(&population)
                    .unwrap_or_else(|| panic!("sufficient but not feasible: {specs:?}"));
                validate_assignment(&population, &depths).unwrap();
            }
        }
    }

    #[test]
    fn validate_assignment_rejects_bad_depths() {
        let population = pop(1, &[(1, 1), (0, 2)]);
        assert!(validate_assignment(&population, &[1, 2]).is_ok());
        assert!(
            validate_assignment(&population, &[2, 2]).is_err(),
            "deadline"
        );
        assert!(validate_assignment(&population, &[1]).is_err(), "length");
        assert!(
            validate_assignment(&population, &[1, 1]).is_err(),
            "level capacity"
        );
        assert!(
            validate_assignment(&population, &[0, 1]).is_err(),
            "depth 0"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exact_feasibility_guards_population_size() {
        let specs = vec![(1u32, 5u32); 25];
        exact_feasibility(&pop(3, &specs));
    }
}
