//! The hybrid construction algorithm (§3.4, Algorithm 2): jointly
//! optimize latency and capacity — prefer high-fanout nodes as parents
//! whenever nobody's latency constraint is violated, falling back to
//! latency-driven displacement otherwise.
//!
//! One interaction of a parent-less peer `i` with a random peer `j`
//! (line numbers refer to Algorithm 2):
//!
//! * `j` has no parent (lines 16–21) — the node with the *larger
//!   fanout* becomes the parent (ties: stricter latency constraint),
//!   subject to fanout and speculative latency checks.
//! * `j ← 0` (lines 22–33) — pull-only source: if `l_i < l_j`, `i`
//!   claims `j`'s slot (`j ← i ← 0`); otherwise `i` tries `i ← j`, then
//!   displacing a child (`m ← i ← j`), then is referred to the source.
//!   Push-capable source: the slot goes to the larger fanout instead.
//! * `j ← k` (lines 35–41) — if `f_i >= f_j`, `i` tries to take `j`'s
//!   position (`j ← i ← k`, discarding one of its own children if
//!   needed); otherwise `i ← j` or `m ← i ← j`. If everything failed
//!   because `j` is too deep for `i` (`DelayAt(j) >= l_i`), `i` is
//!   referred to `k` — *moving closer to the server* — else back to the
//!   oracle.

use crate::config::SourceMode;
use crate::engine::{DisplacePolicy, Engine};
use crate::node::{Member, PeerId};

/// One hybrid interaction `i ↔ j`; `i` is parent-less and both peers
/// are online.
pub(crate) fn interact(engine: &mut Engine, i: PeerId, j: PeerId) {
    let f_i = engine.population.fanout(i);
    let f_j = engine.population.fanout(j);
    let l_i = engine.population.latency(i);
    let l_j = engine.population.latency(j);

    match engine.overlay.parent(j) {
        None => {
            // Lines 16–21: fragments meet; larger fanout is preferred as
            // the parent, ties go to the stricter latency constraint.
            let j_first = match f_j.cmp(&f_i) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => l_j <= l_i,
            };
            let (child, parent) = if j_first { (i, j) } else { (j, i) };
            let _ = engine.try_attach(child, Member::Peer(parent))
                || engine.try_attach(parent, Member::Peer(child));
        }
        Some(Member::Source) => {
            // Lines 22–33.
            let swap_wins = match engine.config.source_mode {
                SourceMode::Pull => l_i < l_j,
                // Push-capable source: larger fanout claims the slot;
                // latency breaks ties (lines 24–25) and overrides when
                // i's constraint forces it to depth 1.
                SourceMode::Push => {
                    f_i > f_j || (f_i == f_j && l_i < l_j) || (l_i < l_j && l_i < 2)
                }
            };
            if swap_wins && engine.replace_and_adopt_impl(Member::Source, j, i, true) {
                return;
            }
            if engine.try_attach(i, Member::Peer(j)) {
                return;
            }
            if engine.displace_into(i, j, DisplacePolicy::Hybrid) {
                return;
            }
            // "Refer i to 0 otherwise."
            engine.proto[i.index()].referral = Some(Member::Source);
        }
        Some(Member::Peer(k)) => {
            // Lines 35–41.
            if f_i >= f_j && engine.replace_and_adopt(Member::Peer(k), j, i) {
                return;
            }
            if engine.try_attach(i, Member::Peer(j)) {
                return;
            }
            if engine.displace_into(i, j, DisplacePolicy::Hybrid) {
                return;
            }
            // Neither configuration possible: climb if j is simply too
            // deep for i, otherwise go back to the oracle.
            if engine.effective_delay(j) >= l_i {
                engine.proto[i.index()].referral = Some(Member::Peer(k));
            } else {
                engine.proto[i.index()].referral = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::node::{Constraints, Population};
    use crate::oracle::OracleKind;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    fn engine(specs: &[(u32, u32)], source_fanout: u32) -> Engine {
        let pop = Population::new(
            source_fanout,
            specs.iter().map(|&(f, l)| Constraints::new(f, l)).collect(),
        );
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::Random);
        Engine::new(&pop, &config, 17)
    }

    #[test]
    fn fragment_merge_prefers_larger_fanout_parent() {
        let mut e = engine(&[(1, 9), (5, 9)], 1);
        // i (f=1) meets unparented j (f=5): j becomes parent — fanout
        // wins in the hybrid.
        interact(&mut e, p(0), p(1));
        assert_eq!(e.overlay.parent(p(0)), Some(Member::Peer(p(1))));
    }

    #[test]
    fn fragment_merge_reverses_when_latency_forbids_preferred_direction() {
        let mut e = engine(&[(1, 1), (5, 9)], 1);
        // j (f=5) is preferred as parent, but i's l=1 cannot tolerate
        // speculative delay 2: the merge falls back to i as parent.
        interact(&mut e, p(0), p(1));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(e.overlay.parent(p(0)), None);
    }

    #[test]
    fn fragment_merge_latency_breaks_fanout_ties() {
        let mut e = engine(&[(2, 1), (2, 5)], 1);
        interact(&mut e, p(0), p(1));
        // Equal fanout: stricter latency (i) is the parent.
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
    }

    #[test]
    fn fragment_merge_falls_back_when_preferred_parent_is_full() {
        let mut e = engine(&[(1, 5), (2, 5), (1, 5), (1, 5)], 1);
        // j (peer 1, f=2) already has two fragment children: full.
        e.overlay.attach(p(2), Member::Peer(p(1))).unwrap();
        e.overlay.attach(p(3), Member::Peer(p(1))).unwrap();
        interact(&mut e, p(0), p(1));
        // Preferred direction (i under j) is full; j under i succeeds?
        // j has a parentless... no: j is the fragment root with no
        // parent, so j goes under i.
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        e.overlay.validate().unwrap();
    }

    #[test]
    fn stricter_peer_claims_source_slot() {
        let mut e = engine(&[(1, 4), (1, 1)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        // i (l=1) meets j (l=4) sitting at the source: swap, j adopted.
        interact(&mut e, p(1), p(0));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Source));
        assert_eq!(e.overlay.parent(p(0)), Some(Member::Peer(p(1))));
    }

    #[test]
    fn laxer_peer_attaches_below_source_child() {
        let mut e = engine(&[(1, 1), (1, 4)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        interact(&mut e, p(1), p(0));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
    }

    #[test]
    fn full_source_child_refers_to_source() {
        let mut e = engine(&[(0, 1), (0, 2)], 2);
        e.overlay.attach(p(0), Member::Source).unwrap();
        // i (l=2) cannot attach under j (f=0) and cannot displace: refer
        // to the source.
        interact(&mut e, p(1), p(0));
        assert_eq!(e.overlay.parent(p(1)), None);
        assert_eq!(e.proto[1].referral, Some(Member::Source));
    }

    #[test]
    fn higher_fanout_peer_swaps_into_mid_tree_position() {
        // source -> a(f1,l1) -> j(f0,l4); i(f3,l4) should take j's spot.
        let mut e = engine(&[(1, 1), (0, 4), (3, 4)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        interact(&mut e, p(2), p(1));
        assert_eq!(e.overlay.parent(p(2)), Some(Member::Peer(p(0))));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(2))));
        assert_eq!(e.overlay.delay(p(1)), Some(3));
        e.overlay.validate().unwrap();
    }

    #[test]
    fn swap_discards_a_child_when_adopter_is_full() {
        // i (f1) already parents a fragment child c; swapping in to
        // adopt j requires discarding c.
        let mut e = engine(&[(1, 1), (0, 4), (1, 4), (0, 9)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        e.overlay.attach(p(3), Member::Peer(p(2))).unwrap();
        interact(&mut e, p(2), p(1));
        assert_eq!(e.overlay.parent(p(2)), Some(Member::Peer(p(0))));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(2))));
        assert_eq!(e.overlay.parent(p(3)), None, "laxest child discarded");
        e.overlay.validate().unwrap();
    }

    #[test]
    fn too_deep_target_refers_upstream() {
        // source -> a(l1) -> b(l2) -> j(l3, f0); i (l=2) meets j: no
        // configuration, DelayAt(j)=3 >= l_i => climb to b.
        let mut e = engine(&[(1, 1), (1, 2), (0, 3), (0, 2)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        e.overlay.attach(p(2), Member::Peer(p(1))).unwrap();
        interact(&mut e, p(3), p(2));
        assert_eq!(e.proto[3].referral, Some(Member::Peer(p(1))));
    }

    #[test]
    fn shallow_full_target_returns_to_oracle() {
        // source(f2) -> j(l1,f0); i (l=9): delay(j)+1 = 2 <= 9, nothing
        // to do but j is NOT too deep => referral cleared (oracle next).
        let mut e = engine(&[(0, 1), (0, 9)], 2);
        e.overlay.attach(p(0), Member::Source).unwrap();
        // j ← 0 case: i tries swap (l not stricter), attach (f_j = 0),
        // displace (no children) — referred to source per lines 22-28.
        interact(&mut e, p(1), p(0));
        assert_eq!(e.proto[1].referral, Some(Member::Source));
    }

    #[test]
    fn counter_example_converges_under_hybrid() {
        // DESIGN.md adversarial instance: {0_1, (1,1), (1,2), (2,4),
        // (1,4), (0,4)} — hybrid must always converge.
        let pop = Population::new(
            1,
            vec![
                Constraints::new(1, 1),
                Constraints::new(1, 2),
                Constraints::new(2, 4),
                Constraints::new(1, 4),
                Constraints::new(0, 4),
            ],
        );
        for seed in 0..20 {
            let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
                .with_max_rounds(3_000);
            let mut e = Engine::new(&pop, &config, seed);
            assert!(
                e.run_to_convergence().is_some(),
                "hybrid failed on adversarial instance with seed {seed}"
            );
            e.overlay().validate().unwrap();
        }
    }
}
