//! Structural event tracing for construction runs.
//!
//! When enabled on the [`Engine`](crate::engine::Engine), every overlay
//! mutation is recorded with its round and cause. The trace is what the
//! `overlay_evolution` example renders, what debugging a wedged run
//! needs, and what a deployment would ship to its telemetry pipeline.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::{Member, PeerId};

/// Why a peer lost its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetachCause {
    /// The maintenance rule fired (`DelayAt > l` while rooted).
    Maintenance,
    /// Displaced by another peer's reconfiguration.
    Displaced,
    /// Discarded by its own parent to make room during a swap.
    Discarded,
    /// The peer (or its parent) churned offline.
    Churn,
    /// A crash-stop failure was detected after `detection_timeout`
    /// silent rounds (either a child giving up on a dead parent, or the
    /// engine reclaiming a detected crash victim's remaining edges).
    Failure,
}

impl fmt::Display for DetachCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DetachCause::Maintenance => "maintenance",
            DetachCause::Displaced => "displaced",
            DetachCause::Discarded => "discarded",
            DetachCause::Churn => "churn",
            DetachCause::Failure => "failure",
        })
    }
}

/// One structural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `child` gained `parent`.
    Attach {
        /// Round of the event.
        round: u64,
        /// The new child.
        child: PeerId,
        /// Its new parent.
        parent: Member,
    },
    /// `child` lost `parent`.
    Detach {
        /// Round of the event.
        round: u64,
        /// The detached peer.
        child: PeerId,
        /// The parent it lost.
        parent: Member,
        /// Why.
        cause: DetachCause,
    },
}

impl TraceEvent {
    /// The round the event happened in.
    pub fn round(&self) -> u64 {
        match *self {
            TraceEvent::Attach { round, .. } | TraceEvent::Detach { round, .. } => round,
        }
    }

    /// The peer whose parent link changed.
    pub fn child(&self) -> PeerId {
        match *self {
            TraceEvent::Attach { child, .. } | TraceEvent::Detach { child, .. } => child,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Attach {
                round,
                child,
                parent,
            } => {
                write!(f, "r{round}: {child} <- {parent}")
            }
            TraceEvent::Detach {
                round,
                child,
                parent,
                cause,
            } => write!(f, "r{round}: {child} !<- {parent} ({cause})"),
        }
    }
}

/// A bounded in-memory event log. When the capacity is reached, the
/// *oldest* events are dropped (a ring buffer), so long churn runs keep
/// the recent history that matters for debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    start: usize,
}

impl TraceLog {
    /// Creates a log keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
            start: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events[self.start..]
            .iter()
            .chain(self.events[..self.start].iter())
    }

    /// Retained events concerning one peer, oldest first.
    pub fn for_peer(&self, peer: PeerId) -> Vec<&TraceEvent> {
        self.iter().filter(|e| e.child() == peer).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attach(round: u64, child: u32) -> TraceEvent {
        TraceEvent::Attach {
            round,
            child: PeerId::new(child),
            parent: Member::Source,
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = TraceLog::new(10);
        for r in 0..5 {
            log.push(attach(r, r as u32));
        }
        let rounds: Vec<u64> = log.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![0, 1, 2, 3, 4]);
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut log = TraceLog::new(3);
        for r in 0..7 {
            log.push(attach(r, 0));
        }
        let rounds: Vec<u64> = log.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![4, 5, 6]);
        assert_eq!(log.dropped(), 4);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn per_peer_filter() {
        let mut log = TraceLog::new(10);
        log.push(attach(0, 1));
        log.push(attach(1, 2));
        log.push(TraceEvent::Detach {
            round: 2,
            child: PeerId::new(1),
            parent: Member::Source,
            cause: DetachCause::Maintenance,
        });
        let events = log.for_peer(PeerId::new(1));
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].round(), 2);
    }

    #[test]
    fn display_formats() {
        let e = attach(3, 7);
        assert_eq!(e.to_string(), "r3: peer 7 <- source");
        let d = TraceEvent::Detach {
            round: 4,
            child: PeerId::new(2),
            parent: Member::Peer(PeerId::new(9)),
            cause: DetachCause::Displaced,
        };
        assert_eq!(d.to_string(), "r4: peer 2 !<- peer 9 (displaced)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        TraceLog::new(0);
    }
}
