//! Structural event tracing for construction runs — now a typed view
//! over the `lagover-obs` event journal.
//!
//! The engine records into [`lagover_obs::Journal`] (the unified event
//! journal); this module keeps the original structural-trace API alive
//! on top of it. [`TraceEvent`] / [`TraceLog`] carry typed
//! [`PeerId`]/[`Member`] references and [`TraceLog::from_journal`]
//! projects a journal's attach/detach events back into that form, so
//! consumers like the `overlay_evolution` example keep a stable
//! surface. [`DetachCause`] itself moved to `lagover-obs` and is
//! re-exported here unchanged.

use std::fmt;

use serde::{Deserialize, Serialize};

pub use lagover_obs::DetachCause;
use lagover_obs::{Event, Journal, Node};

use crate::node::{Member, PeerId};

/// Converts a typed tree member to the journal's raw form.
pub fn member_to_node(member: Member) -> Node {
    match member {
        Member::Source => Node::Source,
        Member::Peer(p) => Node::Peer(p.get()),
    }
}

/// Converts the journal's raw member form back to the typed one.
pub fn node_to_member(node: Node) -> Member {
    match node {
        Node::Source => Member::Source,
        Node::Peer(id) => Member::Peer(PeerId::new(id)),
    }
}

/// One structural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `child` gained `parent`.
    Attach {
        /// Round of the event.
        round: u64,
        /// The new child.
        child: PeerId,
        /// Its new parent.
        parent: Member,
    },
    /// `child` lost `parent`.
    Detach {
        /// Round of the event.
        round: u64,
        /// The detached peer.
        child: PeerId,
        /// The parent it lost.
        parent: Member,
        /// Why.
        cause: DetachCause,
    },
}

impl TraceEvent {
    /// The round the event happened in.
    pub fn round(&self) -> u64 {
        match *self {
            TraceEvent::Attach { round, .. } | TraceEvent::Detach { round, .. } => round,
        }
    }

    /// The peer whose parent link changed.
    pub fn child(&self) -> PeerId {
        match *self {
            TraceEvent::Attach { child, .. } | TraceEvent::Detach { child, .. } => child,
        }
    }

    /// Projects a journal event into its structural form, if it has
    /// one (everything but attach/detach is protocol-level and maps to
    /// `None`).
    pub fn from_event(event: &Event) -> Option<TraceEvent> {
        match *event {
            Event::Attach {
                round,
                child,
                parent,
            } => Some(TraceEvent::Attach {
                round,
                child: PeerId::new(child),
                parent: node_to_member(parent),
            }),
            Event::Detach {
                round,
                child,
                parent,
                cause,
            } => Some(TraceEvent::Detach {
                round,
                child: PeerId::new(child),
                parent: node_to_member(parent),
                cause,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Attach {
                round,
                child,
                parent,
            } => {
                write!(f, "r{round}: {child} <- {parent}")
            }
            TraceEvent::Detach {
                round,
                child,
                parent,
                cause,
            } => write!(f, "r{round}: {child} !<- {parent} ({cause})"),
        }
    }
}

/// A bounded in-memory event log. When the capacity is reached, the
/// *oldest* events are dropped (a ring buffer), so long churn runs keep
/// the recent history that matters for debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    start: usize,
}

impl TraceLog {
    /// Creates a log keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
            start: 0,
        }
    }

    /// Projects the structural (attach/detach) events out of a journal,
    /// oldest first. The log inherits the journal's capacity; events the
    /// *journal* already dropped are gone and counted in neither place.
    pub fn from_journal(journal: &Journal) -> TraceLog {
        let mut log = TraceLog::new(journal.capacity());
        for event in journal.iter() {
            if let Some(structural) = TraceEvent::from_event(event) {
                log.push(structural);
            }
        }
        log
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events[self.start..]
            .iter()
            .chain(self.events[..self.start].iter())
    }

    /// Retained events concerning one peer, oldest first.
    pub fn for_peer(&self, peer: PeerId) -> Vec<&TraceEvent> {
        self.iter().filter(|e| e.child() == peer).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attach(round: u64, child: u32) -> TraceEvent {
        TraceEvent::Attach {
            round,
            child: PeerId::new(child),
            parent: Member::Source,
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = TraceLog::new(10);
        for r in 0..5 {
            log.push(attach(r, r as u32));
        }
        let rounds: Vec<u64> = log.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![0, 1, 2, 3, 4]);
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut log = TraceLog::new(3);
        for r in 0..7 {
            log.push(attach(r, 0));
        }
        let rounds: Vec<u64> = log.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![4, 5, 6]);
        assert_eq!(log.dropped(), 4);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn per_peer_filter() {
        let mut log = TraceLog::new(10);
        log.push(attach(0, 1));
        log.push(attach(1, 2));
        log.push(TraceEvent::Detach {
            round: 2,
            child: PeerId::new(1),
            parent: Member::Source,
            cause: DetachCause::Maintenance,
        });
        let events = log.for_peer(PeerId::new(1));
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].round(), 2);
    }

    #[test]
    fn display_formats() {
        let e = attach(3, 7);
        assert_eq!(e.to_string(), "r3: peer 7 <- source");
        let d = TraceEvent::Detach {
            round: 4,
            child: PeerId::new(2),
            parent: Member::Peer(PeerId::new(9)),
            cause: DetachCause::Displaced,
        };
        assert_eq!(d.to_string(), "r4: peer 2 !<- peer 9 (displaced)");
    }

    #[test]
    fn from_journal_keeps_structural_events_only() {
        let mut journal = Journal::new(8);
        journal.push(Event::Attach {
            round: 0,
            child: 1,
            parent: Node::Source,
        });
        journal.push(Event::OracleMiss { round: 1, peer: 2 });
        journal.push(Event::Detach {
            round: 2,
            child: 1,
            parent: Node::Source,
            cause: DetachCause::Churn,
        });
        let log = TraceLog::from_journal(&journal);
        assert_eq!(log.len(), 2);
        let rendered: Vec<String> = log.iter().map(ToString::to_string).collect();
        assert_eq!(rendered[0], "r0: peer 1 <- source");
        assert_eq!(rendered[1], "r2: peer 1 !<- source (churn)");
    }

    #[test]
    fn member_node_round_trip() {
        for member in [Member::Source, Member::Peer(PeerId::new(5))] {
            assert_eq!(node_to_member(member_to_node(member)), member);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        TraceLog::new(0);
    }
}
