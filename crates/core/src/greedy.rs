//! The greedy construction algorithm (§3.1): place nodes strictly by
//! latency constraint, maintaining the invariant `l_parent <= l_child`
//! along every edge.
//!
//! One interaction of a parent-less peer `i` with a random peer `j`:
//!
//! * `j` has no parent (two fragments meet) — the node with the smaller
//!   latency constraint becomes the parent, subject to fanout and a
//!   speculative latency check; on ties either direction is tried.
//! * `j` has a parent and `l_j <= l_i` — `i` tries to become `j`'s
//!   child, first into a free slot, then by displacing a strictly laxer
//!   child `m` of `j` (`m ← i ← j`, keeping `m` satisfied); failing
//!   both, `i` is referred upstream to `Parent(j)` ("more likely to
//!   fulfill `i`'s latency constraint").
//! * `j` has a parent and `l_i < l_j` — `i` belongs above `j`: it is
//!   referred upstream; displacement of `j` itself happens when the
//!   climb reaches the source (handled by
//!   [`Engine::source_interaction`](crate::engine::Engine)).

use crate::engine::{DisplacePolicy, Engine};
use crate::node::{Member, PeerId};

/// One greedy interaction `i ↔ j`; `i` is parent-less and both peers
/// are online.
pub(crate) fn interact(engine: &mut Engine, i: PeerId, j: PeerId) {
    let l_i = engine.population.latency(i);
    let l_j = engine.population.latency(j);

    match engine.overlay.parent(j) {
        None => {
            // Two fragments meet; merge respecting the latency order.
            // If no configuration works, next round consults the oracle.
            if l_j < l_i {
                if !engine.try_attach(i, Member::Peer(j)) {
                    // j's slots are full: displace a strictly laxer child.
                    let _ = engine.displace_into(i, j, DisplacePolicy::Greedy);
                }
            } else if l_i < l_j {
                let _ = engine.try_attach(j, Member::Peer(i));
            } else {
                // Equal constraints: either direction preserves the
                // invariant; prefer j (the contacted peer) as parent so
                // the enquirer makes progress, then the reverse.
                let _ =
                    engine.try_attach(i, Member::Peer(j)) || engine.try_attach(j, Member::Peer(i));
            }
        }
        Some(parent) => {
            if l_j <= l_i {
                // i tries to become a child of j.
                if engine.try_attach(i, Member::Peer(j)) {
                    return;
                }
                if engine.displace_into(i, j, DisplacePolicy::Greedy) {
                    return;
                }
            }
            // Referred upstream: towards strictly stricter territory.
            engine.proto[i.index()].referral = Some(parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::node::{Constraints, Population};
    use crate::oracle::OracleKind;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    fn engine(specs: &[(u32, u32)], source_fanout: u32) -> Engine {
        let pop = Population::new(
            source_fanout,
            specs.iter().map(|&(f, l)| Constraints::new(f, l)).collect(),
        );
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        Engine::new(&pop, &config, 99)
    }

    #[test]
    fn fragment_merge_orders_by_latency() {
        let mut e = engine(&[(1, 3), (1, 1)], 1);
        // i (l=3) meets unparented j (l=1): j must be the parent.
        interact(&mut e, p(0), p(1));
        assert_eq!(e.overlay.parent(p(0)), Some(Member::Peer(p(1))));
        assert_eq!(e.overlay.parent(p(1)), None, "j remains a fragment root");
    }

    #[test]
    fn fragment_merge_reverse_direction() {
        let mut e = engine(&[(1, 1), (1, 3)], 1);
        // i (l=1) meets unparented j (l=3): i becomes the parent.
        interact(&mut e, p(0), p(1));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
    }

    #[test]
    fn equal_latency_merges_through_available_fanout() {
        let mut e = engine(&[(0, 2), (1, 2)], 1);
        // i has no fanout; j does: i must end up under j.
        interact(&mut e, p(0), p(1));
        assert_eq!(e.overlay.parent(p(0)), Some(Member::Peer(p(1))));
    }

    #[test]
    fn speculative_latency_blocks_hopeless_merge() {
        // j (l=2) is a fragment root with a child chain; i (l=2) would
        // land at speculative delay 3 > 2.
        let mut e = engine(&[(1, 2), (2, 2), (1, 2)], 1);
        e.overlay.attach(p(2), Member::Peer(p(1))).unwrap();
        // i = 0 meets j = 2 (child of fragment root 1): spec delay of 2
        // is 2, so i under 2 would be 3 > l_0 = 2. No displacement
        // (strictly laxer child required). i gets referred to 2's parent.
        interact(&mut e, p(0), p(2));
        assert_eq!(e.overlay.parent(p(0)), None);
        assert_eq!(e.proto[0].referral, Some(Member::Peer(p(1))));
    }

    #[test]
    fn attaches_into_free_slot_of_parented_peer() {
        let mut e = engine(&[(1, 1), (1, 2)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        interact(&mut e, p(1), p(0));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(e.overlay.delay(p(1)), Some(2));
    }

    #[test]
    fn displaces_strictly_laxer_child() {
        // Source -> a(l=1,f=1) -> m(l=4). i (l=2) displaces m.
        let mut e = engine(&[(1, 1), (1, 4), (1, 2)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        interact(&mut e, p(2), p(0));
        assert_eq!(e.overlay.parent(p(2)), Some(Member::Peer(p(0))));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(2))));
        assert_eq!(e.overlay.delay(p(1)), Some(3), "m stays satisfied");
        e.overlay.validate().unwrap();
    }

    #[test]
    fn does_not_displace_equal_latency_child() {
        let mut e = engine(&[(1, 1), (1, 2), (1, 2)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        interact(&mut e, p(2), p(0));
        // No displacement: the victim must be strictly laxer. i climbs.
        assert_eq!(e.overlay.parent(p(2)), None);
        assert_eq!(e.proto[2].referral, Some(Member::Source));
    }

    #[test]
    fn stricter_enquirer_is_referred_upstream() {
        let mut e = engine(&[(1, 1), (1, 3), (1, 2)], 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        // i (l=2) meets j (l=3): i belongs above j — referred to j's
        // parent.
        interact(&mut e, p(2), p(1));
        assert_eq!(e.overlay.parent(p(2)), None);
        assert_eq!(e.proto[2].referral, Some(Member::Peer(p(0))));
    }

    #[test]
    fn greedy_invariant_holds_after_full_construction() {
        // A feasible mixed population; after convergence every edge must
        // satisfy l_parent <= l_child.
        let specs = [
            (2, 1),
            (2, 1),
            (2, 2),
            (2, 2),
            (1, 3),
            (1, 3),
            (0, 3),
            (0, 4),
            (0, 4),
            (0, 4),
        ];
        let pop = Population::new(
            2,
            specs.iter().map(|&(f, l)| Constraints::new(f, l)).collect(),
        );
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let mut e = Engine::new(&pop, &config, 11);
        e.run_to_convergence()
            .expect("feasible population converges");
        for peer in pop.peer_ids() {
            if let Some(Member::Peer(q)) = e.overlay().parent(peer) {
                assert!(
                    pop.latency(q) <= pop.latency(peer),
                    "greedy invariant violated on edge {q} -> {peer}"
                );
            }
        }
    }
}
