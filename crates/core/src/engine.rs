//! The round-based construction engine.
//!
//! One [`Engine::step`] is one simulator round (§2.1.1's construction
//! clock): every online peer acts once, in a freshly shuffled order —
//! parent-less peers run a construction step of the configured algorithm
//! (greedy or hybrid), parented peers run the maintenance check. Churn
//! is applied between rounds by [`Engine::apply_churn`].
//!
//! The engine also hosts the mutation helpers shared by both algorithms:
//! latency-checked attaches, child displacement, and the
//! replace-and-adopt reconfiguration (`j ← i ← k`).

use lagover_obs::{
    wall_mark, Event, HealthSample, InconsistencyCause, Pipeline, RepairKind, Scrape, Work,
};
use lagover_sim::{ChurnProcess, FaultPlan, Round, SimRng};
use serde::{Deserialize, Serialize};

use crate::config::{Algorithm, ConstructionConfig};
use crate::node::{Member, PeerId, Population};
use crate::oracle::{Oracle, OracleKind, OracleView};
use crate::oracle_index::OracleIndex;
use crate::overlay::Overlay;
use crate::trace::{member_to_node, DetachCause, TraceLog};
use crate::{greedy, hybrid, maintenance, stabilize};

// Moved to `lagover-obs` (the counters are the registry's raw
// material); re-exported here so `lagover_core::engine::EngineCounters`
// stays a valid path with identical serialization.
pub use lagover_obs::EngineCounters;

/// Populations at or below this size get the full O(N·depth)
/// [`Overlay::validate`] cross-check after every round in debug builds.
/// Larger debug runs fall back to the O(1) rotating spot-check alone —
/// full validation at 10⁵ peers would make debug construction unusable.
#[cfg(debug_assertions)]
const FULL_VALIDATE_LIMIT: usize = 4096;

/// Victim-selection policy for [`Engine::displace_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DisplacePolicy {
    /// Strict latency order: the victim must be strictly laxer than the
    /// incomer (greedy invariant).
    Greedy,
    /// Capacity-aware: the victim must not out-fan the incomer; prefer
    /// the lowest-fanout victim.
    Hybrid,
}

/// Per-peer protocol bookkeeping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ProtoState {
    /// Interaction target carried over from a referral ("use `k` as the
    /// next reference"), consulted before the oracle.
    pub referral: Option<Member>,
    /// Consecutive own-actions spent without a parent; drives the
    /// timeout fallback to the source.
    pub rounds_unparented: u32,
    /// Consecutive own-actions with `DelayAt > l` while rooted; drives
    /// the hybrid maintenance timeout.
    pub violation_rounds: u32,
    /// Consecutive own-actions that found the parent silent (offline
    /// without a goodbye). Reaching `detection_timeout` declares the
    /// parent crashed. Always zero under graceful churn, where edges to
    /// departed peers are removed in the same round.
    pub parent_silent_rounds: u32,
    /// Fault-induced contact failures since the peer last held a
    /// parent; drives the exponential backoff.
    pub failed_attempts: u32,
    /// Rounds the peer still waits before retrying the oracle (bounded
    /// exponential backoff with deterministic jitter).
    pub backoff_remaining: u32,
}

impl ProtoState {
    pub(crate) fn reset(&mut self) {
        *self = ProtoState::default();
    }
}

/// A serializable checkpoint of an [`Engine`]'s simulation state.
///
/// Produced by [`Engine::snapshot`] and consumed by [`Engine::restore`];
/// serializable, so campaigns can persist checkpoints to disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    population: Population,
    config: ConstructionConfig,
    overlay: Overlay,
    online: Vec<bool>,
    proto: Vec<ProtoState>,
    counters: EngineCounters,
    rng: SimRng,
    round: Round,
    faults: FaultPlan,
    crashed: Vec<bool>,
    crash_silent: Vec<u32>,
    next_crash: usize,
}

impl EngineSnapshot {
    /// The round the snapshot was taken at.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The snapshotted overlay (read-only).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Serializes the checkpoint as a compact JSON document.
    pub fn to_json_string(&self) -> String {
        lagover_jsonio::to_string(self)
    }

    /// Parses a checkpoint produced by [`EngineSnapshot::to_json_string`],
    /// revalidating the overlay's structural invariants.
    ///
    /// # Errors
    ///
    /// On malformed JSON, shape mismatch, or an overlay that fails
    /// validation.
    pub fn from_json_str(text: &str) -> Result<Self, lagover_jsonio::JsonError> {
        lagover_jsonio::from_str(text)
    }
}

/// The construction simulator for one population and one configuration.
///
/// # Example
///
/// ```
/// use lagover_core::{Algorithm, ConstructionConfig, Engine, OracleKind};
/// use lagover_core::node::{Constraints, Population};
///
/// let pop = Population::new(2, vec![
///     Constraints::new(1, 1),
///     Constraints::new(0, 2),
/// ]);
/// let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
/// let mut engine = Engine::new(&pop, &config, 42);
/// let converged = engine.run_to_convergence();
/// assert!(converged.is_some());
/// ```
pub struct Engine {
    pub(crate) population: Population,
    pub(crate) config: ConstructionConfig,
    pub(crate) overlay: Overlay,
    pub(crate) online: Vec<bool>,
    pub(crate) proto: Vec<ProtoState>,
    pub(crate) counters: EngineCounters,
    oracle: Box<dyn Oracle>,
    /// Incremental sampling index serving the reference oracles in
    /// O(log n) per query. `None` when disabled or when a custom
    /// oracle is installed (its logic cannot be indexed). Kept current
    /// lazily: the overlay records cache deltas and
    /// [`Engine::sync_oracle_index`] drains them before each query.
    index: Option<OracleIndex>,
    /// Whether `oracle` is one of the four reference implementations —
    /// the only case the index replicates bit-exactly.
    uses_reference_oracle: bool,
    /// Reusable buffers for draining the overlay's delta records.
    delay_delta_scratch: Vec<(PeerId, Option<u32>)>,
    fanout_delta_scratch: Vec<PeerId>,
    pub(crate) rng: SimRng,
    round: Round,
    /// The observability pipeline (journal + registry + profiler).
    /// Disabled by default, in which case every emission site reduces
    /// to a branch and the run is byte-identical to an uninstrumented
    /// one.
    obs: Pipeline,
    /// Reusable per-round action-order buffer; always drained by
    /// [`Engine::step`], kept only for its capacity.
    order_scratch: Vec<PeerId>,
    /// Reusable online-bitmap copy for [`Engine::apply_churn`].
    churn_scratch: Vec<bool>,
    /// The installed fault scenario (empty by default).
    faults: FaultPlan,
    /// Which peers have crash-stop failed (permanent; disjoint from
    /// graceful churn, which clears overlay edges immediately).
    pub(crate) crashed: Vec<bool>,
    /// Rounds each crashed peer has been silent, saturating at
    /// `detection_timeout` once its remaining edges are reclaimed.
    pub(crate) crash_silent: Vec<u32>,
    /// Cursor into the fault plan's sorted crash schedule.
    next_crash: usize,
    /// Crash victims so far (kept to make the no-fault fast path in
    /// [`Engine::apply_faults`] a field read, not a vector scan).
    crashed_total: usize,
    /// Whether a snapshot corruption is being repaired. While set, the
    /// round-end invariant assertions are suspended (corrupted state is
    /// *expected* to fail them) and the per-round stabilization sweep
    /// runs. Deliberately not serialized: snapshots are a facility for
    /// clean checkpoints, and a restored engine starts un-corrupted.
    stabilizing: bool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("population", &self.population.len())
            .field("round", &self.round)
            .field("oracle", &self.oracle.name())
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine using the reference oracle named in `config`,
    /// with the incremental sampling index enabled.
    pub fn new(population: &Population, config: &ConstructionConfig, seed: u64) -> Self {
        let mut engine = Self::with_oracle(population, config, config.oracle.build(), seed);
        engine.uses_reference_oracle = true;
        engine.set_oracle_indexing(true);
        engine
    }

    /// Creates an engine with a custom oracle implementation (used to
    /// plug in the DHT-directory and random-walk realizations).
    pub fn with_oracle(
        population: &Population,
        config: &ConstructionConfig,
        oracle: Box<dyn Oracle>,
        seed: u64,
    ) -> Self {
        let n = population.len();
        Engine {
            population: population.clone(),
            config: *config,
            overlay: Overlay::new(population),
            online: vec![true; n],
            proto: vec![ProtoState::default(); n],
            counters: EngineCounters::default(),
            oracle,
            index: None,
            uses_reference_oracle: false,
            delay_delta_scratch: Vec::new(),
            fanout_delta_scratch: Vec::new(),
            rng: SimRng::seed_from(seed),
            round: Round::ZERO,
            obs: Pipeline::disabled(),
            order_scratch: Vec::new(),
            churn_scratch: Vec::new(),
            faults: FaultPlan::none(),
            crashed: vec![false; n],
            crash_silent: vec![0; n],
            next_crash: 0,
            crashed_total: 0,
            stabilizing: false,
        }
    }

    /// Enables event journaling, keeping at most `capacity` events
    /// (ring buffer). Equivalent to enabling the journal on
    /// [`Engine::obs_mut`]; kept as the stable name the structural
    /// tracing API has always had.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.obs.enable_journal(capacity);
    }

    /// The structural trace, if journaling is enabled — a typed
    /// attach/detach projection materialized from the event journal
    /// (use [`Engine::obs`] for the full journal).
    pub fn trace(&self) -> Option<TraceLog> {
        self.obs.journal().map(TraceLog::from_journal)
    }

    /// Takes the journal (disabling journaling) and returns its
    /// structural projection.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.obs
            .take_journal()
            .map(|journal| TraceLog::from_journal(&journal))
    }

    /// The observability pipeline.
    pub fn obs(&self) -> &Pipeline {
        &self.obs
    }

    /// Mutable access to the observability pipeline (enable components,
    /// take the journal).
    pub fn obs_mut(&mut self) -> &mut Pipeline {
        &mut self.obs
    }

    /// Installs an observability pipeline wholesale, replacing the
    /// current one.
    pub fn set_obs(&mut self, obs: Pipeline) {
        self.obs = obs;
    }

    /// Lifetime RNG draws consumed by this engine's generator (the
    /// profiler's denominator; also what the byte-identity tests pin).
    pub fn rng_draws(&self) -> u64 {
        self.rng.draws()
    }

    /// Captures the engine's complete simulation state (overlay,
    /// membership, protocol bookkeeping, counters, RNG, round). A
    /// snapshot restored with [`Engine::restore`] under the same
    /// configuration and a stateless oracle replays *identically* —
    /// the checkpoint/resume facility a long experiment campaign needs.
    ///
    /// The observability pipeline is not part of the snapshot.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            population: self.population.clone(),
            config: self.config,
            overlay: self.overlay.clone(),
            online: self.online.clone(),
            proto: self.proto.clone(),
            counters: self.counters,
            rng: self.rng.clone(),
            round: self.round,
            faults: self.faults.clone(),
            crashed: self.crashed.clone(),
            crash_silent: self.crash_silent.clone(),
            next_crash: self.next_crash,
        }
    }

    /// Reconstructs an engine from a snapshot, using the reference
    /// oracle named in the snapshot's configuration.
    ///
    /// Replay is bit-exact only if the oracle is stateless (all four
    /// reference oracles are); substrate oracles carry their own state
    /// and should be re-injected via [`Engine::restore_with_oracle`].
    pub fn restore(snapshot: EngineSnapshot) -> Self {
        let oracle = snapshot.config.oracle.build();
        let mut engine = Self::restore_with_oracle(snapshot, oracle);
        engine.uses_reference_oracle = true;
        engine.set_oracle_indexing(true);
        engine
    }

    /// [`Engine::restore`] with a custom oracle.
    pub fn restore_with_oracle(snapshot: EngineSnapshot, oracle: Box<dyn Oracle>) -> Self {
        let crashed_total = snapshot.crashed.iter().filter(|&&c| c).count();
        // An in-memory snapshot cloned from a delta-tracking engine may
        // carry stale delta records; the restored engine rebuilds its
        // index from scratch, so drop them.
        let mut overlay = snapshot.overlay;
        overlay.set_delta_tracking(false);
        Engine {
            population: snapshot.population,
            config: snapshot.config,
            overlay,
            online: snapshot.online,
            proto: snapshot.proto,
            counters: snapshot.counters,
            oracle,
            index: None,
            uses_reference_oracle: false,
            delay_delta_scratch: Vec::new(),
            fanout_delta_scratch: Vec::new(),
            rng: snapshot.rng,
            round: snapshot.round,
            obs: Pipeline::disabled(),
            order_scratch: Vec::new(),
            churn_scratch: Vec::new(),
            faults: snapshot.faults,
            crashed: snapshot.crashed,
            crash_silent: snapshot.crash_silent,
            next_crash: snapshot.next_crash,
            crashed_total,
            stabilizing: false,
        }
    }

    /// Switches the incremental oracle sampling index on or off.
    ///
    /// On by default for engines built by [`Engine::new`] /
    /// [`Engine::restore`] (reference oracles); a no-op request for
    /// engines carrying a custom oracle, whose sampling logic the index
    /// cannot replicate. Indexed and unindexed runs are bit-identical —
    /// the toggle changes per-query cost (O(log n) vs O(n)), never the
    /// sampled peers or the RNG stream — which is exactly what the
    /// equivalence suite in `tests/properties.rs` pins.
    pub fn set_oracle_indexing(&mut self, enabled: bool) {
        if enabled && self.uses_reference_oracle {
            self.index = Some(OracleIndex::build(
                &self.overlay,
                &self.population,
                &self.online,
            ));
            // (Re)starting tracking clears any stale delta records; the
            // fresh index already reflects the current overlay.
            self.overlay.set_delta_tracking(true);
        } else {
            self.index = None;
            self.overlay.set_delta_tracking(false);
        }
    }

    /// Whether the incremental sampling index is active.
    pub fn oracle_indexing(&self) -> bool {
        self.index.is_some()
    }

    /// Drains the overlay's delta records into the index. Replaying the
    /// whole queue is idempotent: membership updates re-derive each
    /// peer's target state from the mirrored online bit (and, for
    /// fanout, from the *current* overlay), and the queue's last delay
    /// record per peer matches the overlay's current cache, so the
    /// index always converges to the live state.
    fn sync_oracle_index(&mut self) {
        if !self.overlay.has_pending_deltas() {
            return;
        }
        let index = self.index.as_mut().expect("sync only runs when indexed");
        let mut delays = std::mem::take(&mut self.delay_delta_scratch);
        let mut fanouts = std::mem::take(&mut self.fanout_delta_scratch);
        self.overlay.take_deltas_into(&mut delays, &mut fanouts);
        for &(p, delay) in &delays {
            index.note_delay(p, delay);
        }
        for &p in &fanouts {
            index.note_free_fanout(p, self.overlay.has_free_fanout(Member::Peer(p)));
        }
        delays.clear();
        fanouts.clear();
        self.delay_delta_scratch = delays;
        self.fanout_delta_scratch = fanouts;
    }

    /// Answers one oracle query for `p` — through the incremental index
    /// when enabled, else the installed [`Oracle`]'s own scan. Both
    /// paths draw the same RNG stream and return the same peer.
    fn oracle_sample(&mut self, p: PeerId) -> Option<PeerId> {
        if self.index.is_some() {
            self.sync_oracle_index();
            let index = self.index.as_ref().expect("checked above");
            let sampled = match self.config.oracle {
                OracleKind::Random => index.sample_uniform(p, &mut self.rng),
                OracleKind::RandomCapacity => index.sample_free_capacity(p, &mut self.rng),
                OracleKind::RandomDelayCapacity => {
                    index.sample_delay_below_free(p, self.population.latency(p), &mut self.rng)
                }
                OracleKind::RandomDelay => {
                    index.sample_delay_below(p, self.population.latency(p), &mut self.rng)
                }
            };
            debug_assert!(
                sampled.is_none_or(|j| j != p && self.online[j.index()]),
                "index produced an invalid candidate"
            );
            sampled
        } else {
            let view = OracleView::new(&self.overlay, &self.population, &self.online);
            match self.oracle.sample(p, &view, &mut self.rng) {
                Some(j) if j != p && self.online[j.index()] => Some(j),
                Some(_) | None => None,
            }
        }
    }

    fn emit_attach(&mut self, child: PeerId, parent: Member) {
        if self.obs.is_enabled() {
            self.obs.record(Event::Attach {
                round: self.round.get(),
                child: child.get(),
                parent: member_to_node(parent),
            });
        }
    }

    fn emit_detach(&mut self, child: PeerId, parent: Member, cause: DetachCause) {
        if self.obs.is_enabled() {
            self.obs.record(Event::Detach {
                round: self.round.get(),
                child: child.get(),
                parent: member_to_node(parent),
                cause,
            });
        }
    }

    /// Current round number.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The overlay under construction.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The population being organized.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The active configuration.
    pub fn config(&self) -> &ConstructionConfig {
        &self.config
    }

    /// Event counters so far.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// Whether `p` is currently online.
    pub fn is_online(&self, p: PeerId) -> bool {
        self.online[p.index()]
    }

    /// Number of peers currently online.
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&o| o).count()
    }

    /// Whether `p`'s constraints are currently met: chain rooted at the
    /// source and `DelayAt(p) <= l_p`.
    pub fn is_satisfied(&self, p: PeerId) -> bool {
        matches!(self.overlay.delay(p), Some(d) if d <= self.population.latency(p))
    }

    /// Fraction of *online* peers currently satisfied (1.0 when nobody
    /// is online). Scans the population in parallel chunks on large
    /// inputs (`LAGOVER_THREADS`-wide, byte-identical at any width).
    pub fn satisfied_fraction(&self) -> f64 {
        let overlay = &self.overlay;
        let latencies = self.population.latencies();
        let online_bits = &self.online;
        let (online, satisfied) = crate::runner::parallel_fold(
            self.population.len(),
            |range| {
                let mut online = 0usize;
                let mut satisfied = 0usize;
                for i in range {
                    if online_bits[i] {
                        online += 1;
                        if matches!(overlay.delay(PeerId::new(i as u32)), Some(d) if d <= latencies[i])
                        {
                            satisfied += 1;
                        }
                    }
                }
                (online, satisfied)
            },
            |(oa, sa), (ob, sb)| (oa + ob, sa + sb),
        );
        if online == 0 {
            1.0
        } else {
            satisfied as f64 / online as f64
        }
    }

    /// Whether every online peer is satisfied — the paper's convergence
    /// criterion for construction latency. Parallel-chunked like
    /// [`Engine::satisfied_fraction`].
    pub fn is_converged(&self) -> bool {
        let overlay = &self.overlay;
        let latencies = self.population.latencies();
        let online_bits = &self.online;
        crate::runner::parallel_fold(
            self.population.len(),
            |range| {
                range.into_iter().all(|i| {
                    !online_bits[i]
                        || matches!(overlay.delay(PeerId::new(i as u32)), Some(d) if d <= latencies[i])
                })
            },
            |a, b| a && b,
        )
    }

    /// Installs a fault plan, replacing any previous one. The crash
    /// schedule restarts from its first event; events whose round has
    /// already passed fire at the next step.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
        self.next_crash = 0;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Injects a crash-stop failure of `p` right now: the peer goes
    /// permanently silent, but — unlike a graceful churn departure —
    /// **keeps every overlay edge** until neighbours detect the silence
    /// (`detection_timeout` consecutive silent rounds). Returns whether
    /// the crash was injected (`false` if `p` is already offline).
    pub fn inject_crash(&mut self, p: PeerId) -> bool {
        if !self.online[p.index()] {
            return false;
        }
        self.online[p.index()] = false;
        if let Some(index) = self.index.as_mut() {
            index.set_offline(p);
        }
        self.crashed[p.index()] = true;
        self.crash_silent[p.index()] = 0;
        self.crashed_total += 1;
        self.counters.crashes += 1;
        if self.obs.is_enabled() {
            self.obs.record(Event::Crash {
                round: self.round.get(),
                peer: p.get(),
            });
        }
        self.proto[p.index()].reset();
        true
    }

    /// Whether the engine is repairing a snapshot corruption (see
    /// [`crate::stabilize::apply_corruption`]).
    pub fn stabilizing(&self) -> bool {
        self.stabilizing
    }

    /// Manually toggles stabilizing mode. Runners clear the flag once
    /// the overlay is validate-clean and converged again; tests set it
    /// before hand-crafting corrupt states through the raw overlay
    /// mutators.
    pub fn set_stabilizing(&mut self, on: bool) {
        self.stabilizing = on;
    }

    /// Enters stabilizing mode after a corruption was applied: suspends
    /// the round-end invariant assertions and rebuilds the oracle
    /// sampling index, since cached delays may have been forged
    /// wholesale underneath it.
    pub(crate) fn begin_stabilizing(&mut self) {
        self.stabilizing = true;
        if self.index.is_some() {
            self.set_oracle_indexing(true);
        }
    }

    /// Records one detected local inconsistency (counter + event).
    pub(crate) fn note_inconsistency(&mut self, p: PeerId, cause: InconsistencyCause) {
        self.counters.inconsistencies_detected += 1;
        if self.obs.is_enabled() {
            self.obs.record(Event::InconsistencyDetected {
                round: self.round.get(),
                peer: p.get(),
                cause,
            });
        }
    }

    /// Records one repair performed by the stabilize rule.
    pub(crate) fn note_repair(&mut self, p: PeerId, action: RepairKind) {
        self.counters.repair_actions += 1;
        if self.obs.is_enabled() {
            self.obs.record(Event::RepairAction {
                round: self.round.get(),
                peer: p.get(),
                action,
            });
        }
    }

    /// Detaches `p` as a stabilization repair — the failure-detach
    /// ladder generalized to corrupted edges (the detach itself is
    /// lenient about missing backlinks) — and resets `p`'s protocol
    /// state so ordinary construction re-attaches it.
    pub(crate) fn stabilize_detach(&mut self, p: PeerId) {
        let parent = self
            .overlay
            .detach(p)
            .expect("stabilize detach on parented peer");
        self.counters.detaches += 1;
        self.emit_detach(p, parent, DetachCause::Failure);
        self.proto[p.index()].reset();
        self.note_repair(p, RepairKind::Detach);
    }

    /// Whether `p` has crash-stop failed.
    pub fn is_crashed(&self, p: PeerId) -> bool {
        self.crashed[p.index()]
    }

    /// Crash-stop failures so far.
    pub fn crashed_count(&self) -> usize {
        self.crashed_total
    }

    /// Number of online peers currently without a parent (fragment
    /// roots still negotiating re-attachment). Parallel-chunked like
    /// [`Engine::satisfied_fraction`].
    pub fn orphan_count(&self) -> usize {
        let overlay = &self.overlay;
        let online_bits = &self.online;
        crate::runner::parallel_fold(
            self.population.len(),
            |range| {
                range
                    .into_iter()
                    .filter(|&i| online_bits[i] && overlay.parent(PeerId::new(i as u32)).is_none())
                    .count()
            },
            |a, b| a + b,
        )
    }

    /// Number of online peers whose ancestor chain crosses an offline
    /// peer — the staleness violation of the crash-stop model: the
    /// chain still looks rooted, but the dead ancestor relays nothing.
    /// Always zero under graceful churn, which clears such edges in the
    /// departure round.
    pub fn stale_chain_count(&self) -> usize {
        let overlay = &self.overlay;
        let online_bits = &self.online;
        crate::runner::parallel_fold(
            self.population.len(),
            |range| {
                range
                    .into_iter()
                    .filter(|&i| {
                        online_bits[i]
                            && chain_is_stale(overlay, online_bits, PeerId::new(i as u32))
                    })
                    .count()
            },
            |a, b| a + b,
        )
    }

    /// Fires the fault plan's scheduled crashes whose round has come —
    /// at the *start* of the round, so a victim never acts in the round
    /// it dies. With an empty schedule this is a strict no-op that
    /// consumes no randomness, so fault-free runs stay byte-identical.
    fn fire_scheduled_crashes(&mut self) {
        while let Some(&event) = self.faults.crashes().get(self.next_crash) {
            if event.round > self.round.get() {
                break;
            }
            self.next_crash += 1;
            self.inject_crash(PeerId::new(event.peer));
        }
    }

    /// Ages each crash victim's silence at the *end* of the round —
    /// after the act phase, so children counting the same silence via
    /// `parent_silent_rounds` reach `detection_timeout` first and
    /// `failure_detach` themselves. Once the engine's own count gets
    /// there it reclaims whatever edges neighbours could not drop on
    /// their own (the corpse's parent edge, offline children).
    fn detect_crashes(&mut self) {
        if self.crashed_total == 0 {
            return;
        }
        for i in 0..self.online.len() {
            if !self.crashed[i] || self.crash_silent[i] >= self.config.detection_timeout {
                continue;
            }
            self.crash_silent[i] += 1;
            if self.crash_silent[i] >= self.config.detection_timeout {
                self.reclaim_crashed(PeerId::new(i as u32));
            }
        }
        #[cfg(debug_assertions)]
        if self.population.len() <= FULL_VALIDATE_LIMIT && !self.stabilizing {
            let detected: Vec<bool> = (0..self.online.len())
                .map(|i| self.crashed[i] && self.crash_silent[i] >= self.config.detection_timeout)
                .collect();
            debug_assert_eq!(self.overlay.validate_liveness(&detected), Ok(()));
        }
    }

    /// Detection completed for crash victim `p`: drop its parent edge
    /// and orphan any children that have not yet walked away on their
    /// own (offline children, or children whose own silence count
    /// lagged the engine's).
    fn reclaim_crashed(&mut self, p: PeerId) {
        if let Some(parent) = self.overlay.parent(p) {
            self.emit_detach(p, parent, DetachCause::Failure);
        }
        let orphans = self.overlay.remove_peer(p);
        for orphan in orphans {
            self.emit_detach(orphan, Member::Peer(p), DetachCause::Failure);
            self.proto[orphan.index()].reset();
        }
    }

    /// Work done since a `(rng draws, counters)` baseline — the
    /// profiler's per-phase delta.
    fn work_since(&self, draws0: u64, counters0: &EngineCounters, actions: u64) -> Work {
        let c = &self.counters;
        Work {
            actions,
            rng_draws: self.rng.draws() - draws0,
            oracle_queries: c.oracle_queries - counters0.oracle_queries,
            interactions: c.interactions - counters0.interactions,
            attaches: c.attaches - counters0.attaches,
            detaches: c.detaches - counters0.detaches,
            messages_lost: c.messages_lost - counters0.messages_lost,
        }
    }

    /// Runs one construction round: every online peer acts once, in a
    /// shuffled order.
    ///
    /// When the pipeline's profiler is enabled the round is accounted
    /// into phases — `detection` (crash schedule + silence aging),
    /// `schedule` (the order shuffle), and per-action `construction` /
    /// `maintenance` — purely from counter and RNG-draw deltas, so the
    /// profile is deterministic and profiling never perturbs the run.
    pub fn step(&mut self) {
        let profiling = self.obs.profiling();
        let mut mark = wall_mark();
        let mut draws0 = self.rng.draws();
        let mut counters0 = self.counters;

        self.fire_scheduled_crashes();
        if self.stabilizing {
            stabilize::sweep(self);
        }
        if profiling {
            let work = self.work_since(draws0, &counters0, 0);
            self.obs.record_phase("detection", work, mark);
            mark = wall_mark();
            draws0 = self.rng.draws();
            counters0 = self.counters;
        }

        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        order.extend(
            self.population
                .peer_ids()
                .filter(|p| self.online[p.index()]),
        );
        self.rng.shuffle(&mut order);
        if profiling {
            let work = self.work_since(draws0, &counters0, 0);
            self.obs.record_phase("schedule", work, mark);
        }

        for &p in &order {
            if !self.online[p.index()] {
                continue;
            }
            if profiling {
                mark = wall_mark();
                draws0 = self.rng.draws();
                counters0 = self.counters;
                let phase = if self.overlay.parent(p).is_none() {
                    "construction"
                } else {
                    "maintenance"
                };
                self.act_on(p);
                let work = self.work_since(draws0, &counters0, 1);
                self.obs.record_phase(phase, work, mark);
            } else {
                self.act_on(p);
            }
        }
        self.order_scratch = order; // capacity reused next round

        if profiling {
            mark = wall_mark();
            draws0 = self.rng.draws();
            counters0 = self.counters;
        }
        self.detect_crashes();
        if profiling {
            let work = self.work_since(draws0, &counters0, 0);
            self.obs.record_phase("detection", work, mark);
        }
        self.round = self.round.next();
        self.check_invariants();
    }

    /// Post-round structural checking. The full O(N·depth)
    /// [`Overlay::validate`] cross-check runs only in debug builds on
    /// populations up to [`FULL_VALIDATE_LIMIT`] — at 10⁵ peers it
    /// would dominate the round — while a rotating O(1)
    /// [`Overlay::spot_check`] stays on in every build as a cheap
    /// corruption tripwire that covers the whole population over time.
    fn check_invariants(&self) {
        if self.stabilizing {
            // Corrupted state is *supposed* to fail these until the
            // stabilize rule has repaired it; the runner re-arms the
            // checks once validate() comes back clean.
            return;
        }
        #[cfg(debug_assertions)]
        if self.population.len() <= FULL_VALIDATE_LIMIT {
            assert_eq!(self.overlay.validate(), Ok(()));
        }
        let probe = PeerId::new((self.round.get() % self.population.len() as u64) as u32);
        assert_eq!(self.overlay.spot_check(probe), Ok(()));
    }

    /// Performs one action for peer `p`: a construction step if it has
    /// no parent, otherwise the maintenance check. Exposed to the
    /// asynchronous (event-driven) engine.
    pub fn act_on(&mut self, p: PeerId) {
        debug_assert!(self.online[p.index()], "offline peers do not act");
        // The stabilize rule: verify cached chain state against the
        // neighbours' actual replies before acting on it. On a valid
        // overlay this is a handful of reads (no RNG, no events), so
        // corruption-free runs stay byte-identical; a detected
        // inconsistency is repaired in place of the normal action.
        if stabilize::verify(self, p) {
            return;
        }
        if self.overlay.parent(p).is_none() {
            self.construction_step(p);
        } else {
            maintenance::maintain(self, p);
        }
    }

    /// One construction step for a parent-less peer.
    fn construction_step(&mut self, p: PeerId) {
        self.proto[p.index()].rounds_unparented += 1;

        // Target selection: referral first, then the timeout fallback to
        // the source, then the oracle.
        let referral = self.proto[p.index()].referral.take();
        let target: Option<Member> = match referral {
            Some(Member::Source) => Some(Member::Source),
            Some(Member::Peer(j)) if self.online[j.index()] && j != p => Some(Member::Peer(j)),
            // Dead or degenerate referral: fall through to the normal
            // selection path this same round.
            _ => {
                if self.proto[p.index()].rounds_unparented >= self.config.timeout_rounds {
                    // The degradation ladder bottoms out at the source
                    // (the paper's timeout rule); backoff never delays
                    // this last resort.
                    Some(Member::Source)
                } else if self.proto[p.index()].backoff_remaining > 0 {
                    self.proto[p.index()].backoff_remaining -= 1;
                    self.counters.backoff_rounds += 1;
                    if self.obs.is_enabled() {
                        self.obs.record(Event::Backoff {
                            round: self.round.get(),
                            peer: p.get(),
                            remaining: self.proto[p.index()].backoff_remaining,
                        });
                    }
                    None
                } else if self.faults.oracle_blacked_out(self.round.get()) {
                    // Directory outage: the query goes out but nobody
                    // answers. No sample is drawn, so the blackout
                    // itself consumes no randomness.
                    self.counters.oracle_queries += 1;
                    self.counters.oracle_outages += 1;
                    if self.obs.is_enabled() {
                        self.obs.record(Event::OracleOutage {
                            round: self.round.get(),
                            peer: p.get(),
                        });
                    }
                    self.register_failure(p);
                    None
                } else {
                    self.counters.oracle_queries += 1;
                    match self.oracle_sample(p) {
                        Some(j) => {
                            if self.obs.is_enabled() {
                                self.obs.record(Event::OracleHit {
                                    round: self.round.get(),
                                    peer: p.get(),
                                    target: j.get(),
                                });
                            }
                            Some(Member::Peer(j))
                        }
                        None => {
                            self.counters.oracle_misses += 1;
                            if self.obs.is_enabled() {
                                self.obs.record(Event::OracleMiss {
                                    round: self.round.get(),
                                    peer: p.get(),
                                });
                            }
                            None
                        }
                    }
                }
            }
        };

        // Fault gate: the selected interaction may be lost in flight.
        // `chance` draws nothing when the loss probability is zero, and
        // a lost source contact does not reset the unparented clock, so
        // the timeout fallback keeps escalating.
        let target = if target.is_some() && self.rng.chance(self.faults.message_loss()) {
            self.counters.messages_lost += 1;
            if self.obs.is_enabled() {
                self.obs.record(Event::MessageLost {
                    round: self.round.get(),
                    peer: p.get(),
                });
            }
            self.register_failure(p);
            None
        } else {
            target
        };

        match target {
            None => {}
            Some(Member::Source) => {
                self.counters.source_contacts += 1;
                if self.obs.is_enabled() {
                    self.obs.record(Event::SourceContact {
                        round: self.round.get(),
                        peer: p.get(),
                    });
                }
                self.proto[p.index()].rounds_unparented = 0;
                self.source_interaction(p);
            }
            Some(Member::Peer(j)) => {
                self.counters.interactions += 1;
                match self.config.algorithm {
                    Algorithm::Greedy => greedy::interact(self, p, j),
                    Algorithm::Hybrid => hybrid::interact(self, p, j),
                }
            }
        }

        if self.overlay.parent(p).is_some() {
            let st = &mut self.proto[p.index()];
            st.rounds_unparented = 0;
            st.failed_attempts = 0;
            st.backoff_remaining = 0;
        }
    }

    /// Records a fault-induced contact failure (lost interaction or
    /// oracle blackout — never an ordinary oracle miss) and schedules
    /// the next oracle retry: bounded exponential backoff
    /// (`min(2^attempts, backoff_cap)` rounds) plus deterministic
    /// jitter. The jitter is an RNG-free hash of `(peer, attempt)`, so
    /// peers failed by the same round desynchronize their retries
    /// without advancing any random stream.
    fn register_failure(&mut self, p: PeerId) {
        let st = &mut self.proto[p.index()];
        st.failed_attempts = st.failed_attempts.saturating_add(1);
        let base = 1u32
            .checked_shl(st.failed_attempts.min(16))
            .expect("shift bounded at 16")
            .min(self.config.backoff_cap.max(1));
        let key = (u64::from(p.get()) << 32) | u64::from(st.failed_attempts);
        st.backoff_remaining =
            (base - 1) + lagover_sim::faults::deterministic_jitter(key, base / 2);
    }

    /// Interaction of a parent-less peer directly at the source — shared
    /// by both algorithms (Algorithm 2 lines 2–7): attach if the source
    /// has a free slot, otherwise displace a direct child `c` and adopt
    /// it if possible. With a pull-only source the victim is the laxest
    /// child with `l_c > l_p`; with a push-capable source (Algorithm 2
    /// lines 29–33) it is the smallest-fanout child with `f_c < f_p`.
    pub(crate) fn source_interaction(&mut self, p: PeerId) {
        if self.overlay.has_free_fanout(Member::Source) {
            self.overlay
                .attach(p, Member::Source)
                .expect("free source slot");
            self.counters.attaches += 1;
            self.emit_attach(p, Member::Source);
            return;
        }
        let victim = match self.config.source_mode {
            crate::config::SourceMode::Pull => {
                let l_p = self.population.latency(p);
                // Laxest direct child strictly laxer than p (ties broken
                // by id for determinism).
                self.overlay
                    .source_children()
                    .iter()
                    .copied()
                    .filter(|&c| self.population.latency(c) > l_p)
                    .max_by_key(|&c| (self.population.latency(c), c.get()))
            }
            crate::config::SourceMode::Push => {
                // Fanout decides first (lines 29–33); latency remains
                // the safety valve (lines 24–25): a strictly stricter
                // node may displace the laxest child when no
                // fanout-justified victim exists.
                let f_p = self.population.fanout(p);
                let l_p = self.population.latency(p);
                self.overlay
                    .source_children()
                    .iter()
                    .copied()
                    .filter(|&c| self.population.fanout(c) < f_p)
                    .min_by_key(|&c| (self.population.fanout(c), c.get()))
                    .or_else(|| {
                        self.overlay
                            .source_children()
                            .iter()
                            .copied()
                            .filter(|&c| self.population.latency(c) > l_p)
                            .max_by_key(|&c| (self.population.latency(c), c.get()))
                    })
            }
        };
        if let Some(c) = victim {
            // The displacer's claim takes priority: the victim is
            // orphaned if it cannot be adopted.
            self.replace_and_adopt_impl(Member::Source, c, p, true);
        }
    }

    /// `DelayAt` if rooted, speculative delay otherwise — the estimate
    /// peers negotiate with inside fragments.
    pub(crate) fn effective_delay(&self, p: PeerId) -> u32 {
        self.overlay.speculative_delay(p)
    }

    /// Latency-checked attach: `child` goes under `parent` only if the
    /// parent has a free slot and the child's (speculative) delay there
    /// would respect the child's own constraint. Returns whether the
    /// attach happened.
    pub(crate) fn try_attach(&mut self, child: PeerId, parent: Member) -> bool {
        let would_be = match parent {
            Member::Source => 1,
            Member::Peer(q) => self.effective_delay(q) + 1,
        };
        if would_be > self.population.latency(child) {
            return false;
        }
        if self.overlay.attach(child, parent).is_ok() {
            self.counters.attaches += 1;
            self.emit_attach(child, parent);
            true
        } else {
            false
        }
    }

    /// Displacement into a full parent `j`: enquirer `i` becomes a child
    /// of `j` by taking over one of `j`'s current children `m`
    /// (`m ← i ← j`). The victim is *adopted* by `i` when that keeps it
    /// satisfied (discarding `i`'s laxest fragment child if its fanout
    /// is full — Algorithm 2's "i may need to discard one child node");
    /// a *strictly laxer* victim may instead be orphaned when adoption
    /// is impossible, mirroring the priority rule at the source (the
    /// stricter node's claim wins). The victim policy depends on the
    /// algorithm:
    ///
    /// * greedy (`DisplacePolicy::Greedy`) — only strictly laxer
    ///   victims (preserving the `l_parent <= l_child` invariant),
    ///   laxest first;
    /// * hybrid (`DisplacePolicy::Hybrid`) — a victim qualifies if
    ///   demoting it is capacity-cheap (`f_m <= f_i`, adoption required)
    ///   or latency-justified (`l_m > l_i`); adoptable low-fanout
    ///   victims are preferred, so high-fanout children are demoted
    ///   only as a last resort.
    ///
    /// Returns whether the reconfiguration happened.
    pub(crate) fn displace_into(&mut self, i: PeerId, j: PeerId, policy: DisplacePolicy) -> bool {
        let d_j = self.effective_delay(j);
        let l_i = self.population.latency(i);
        if d_j + 1 > l_i {
            return false;
        }
        let f_i = self.population.fanout(i);
        // Whether adopting m (at depth d_j + 2) keeps it satisfied.
        let adoptable = |m: PeerId| f_i > 0 && d_j + 2 <= self.population.latency(m);
        let eligible = |m: PeerId| {
            if m == i {
                return false;
            }
            // An orphan-graft corruption can place a peer in j's child
            // list without the backlink; displacing it would detach it
            // from its *real* parent. Always true on a valid overlay.
            if self.overlay.parent(m) != Some(Member::Peer(j)) {
                return false;
            }
            let strictly_laxer = self.population.latency(m) > l_i;
            match policy {
                DisplacePolicy::Greedy => strictly_laxer,
                DisplacePolicy::Hybrid => {
                    strictly_laxer || (self.population.fanout(m) <= f_i && adoptable(m))
                }
            }
        };
        let victim = match policy {
            // Laxest victim first; prefer one that can be adopted.
            DisplacePolicy::Greedy => self
                .overlay
                .children(j)
                .iter()
                .copied()
                .filter(|&m| eligible(m))
                .max_by_key(|&m| (adoptable(m), self.population.latency(m), m.get())),
            // Adoptable victims first, then lowest fanout, then laxest.
            DisplacePolicy::Hybrid => self
                .overlay
                .children(j)
                .iter()
                .copied()
                .filter(|&m| eligible(m))
                .max_by_key(|&m| {
                    (
                        adoptable(m),
                        u32::MAX - self.population.fanout(m),
                        self.population.latency(m),
                        m.get(),
                    )
                }),
        };
        let Some(m) = victim else {
            return false;
        };
        // i is parent-less, so it cannot be an ancestor of j; the only
        // cycle risk is j being inside i's own fragment, which
        // overlay.attach rejects — pre-check to keep this transactional.
        if self.is_in_subtree_of(j, i) {
            return false;
        }
        // A fanout-overflow corruption can leave j with more children
        // than it advertises — detaching one victim then frees no slot.
        // Always false on a valid overlay.
        if self.overlay.children(j).len() > self.overlay.advertised_fanout(j) as usize {
            return false;
        }
        let adopt = adoptable(m);
        if adopt && !self.overlay.has_free_fanout(Member::Peer(i)) {
            // Make room for the victim by orphaning i's laxest fragment
            // child.
            // A forged fanout cache can report i full with no children
            // to discard; impossible on a valid overlay.
            let Some(discard) = self
                .overlay
                .children(i)
                .iter()
                .copied()
                .max_by_key(|&c| (self.population.latency(c), c.get()))
            else {
                return false;
            };
            self.overlay.detach(discard).expect("child of i");
            self.counters.detaches += 1;
            self.emit_detach(discard, Member::Peer(i), DetachCause::Discarded);
        }
        self.overlay.detach(m).expect("m is a child of j");
        self.emit_detach(m, Member::Peer(j), DetachCause::Displaced);
        if self.overlay.attach(i, Member::Peer(j)).is_err() {
            // Forged caches can make the O(1) cycle check refuse an
            // attach the bounded walk approved; impossible on a valid
            // overlay. m restarts construction from j's neighborhood.
            self.proto[m.index()].referral = Some(Member::Peer(j));
            self.counters.detaches += 1;
            return false;
        }
        self.emit_attach(i, Member::Peer(j));
        if adopt && self.overlay.attach(m, Member::Peer(i)).is_ok() {
            self.counters.attaches += 1;
            self.emit_attach(m, Member::Peer(i));
        } else {
            // m restarts construction from its displacer's neighborhood.
            self.proto[m.index()].referral = Some(Member::Peer(j));
        }
        self.counters.displacements += 1;
        self.counters.detaches += 1;
        self.counters.attaches += 1;
        true
    }

    /// The `j ← i ← k` reconfiguration: parent-less `i` takes `j`'s slot
    /// under `parent`, adopting `j` (and thereby `j`'s subtree) as its
    /// own child when feasible. If `i`'s fanout is full, its laxest
    /// current child is discarded to make room (Algorithm 2: "i may need
    /// to discard one child node"). Fails — with no state change —
    /// unless the adoption keeps `j` satisfied. Returns whether the
    /// reconfiguration happened.
    pub(crate) fn replace_and_adopt(&mut self, parent: Member, j: PeerId, i: PeerId) -> bool {
        self.replace_and_adopt_impl(parent, j, i, false)
    }

    /// [`Engine::replace_and_adopt`] with a policy switch: when
    /// `orphan_if_unadoptable` is set (source displacement, where the
    /// stricter/stronger node's claim takes priority) the swap proceeds
    /// even if `j` cannot be adopted, leaving `j` a fragment root.
    pub(crate) fn replace_and_adopt_impl(
        &mut self,
        parent: Member,
        j: PeerId,
        i: PeerId,
        orphan_if_unadoptable: bool,
    ) -> bool {
        // Callers pick j out of parent's child list; an orphan-graft
        // corruption can plant an entry there without the backlink, in
        // which case displacing j would detach it from its real parent.
        // Always true on a valid overlay.
        if self.overlay.parent(j) != Some(parent) {
            return false;
        }
        if i == j || self.overlay.parent(i).is_some() {
            return false;
        }
        let slot_delay = match parent {
            Member::Source => 1,
            Member::Peer(k) => self.effective_delay(k) + 1,
        };
        let l_i = self.population.latency(i);
        let l_j = self.population.latency(j);
        if slot_delay > l_i {
            return false;
        }
        let can_adopt = self.population.fanout(i) > 0 && slot_delay < l_j;
        if !can_adopt && !orphan_if_unadoptable {
            return false;
        }
        // Cycle pre-check: the slot's parent must not sit inside i's
        // fragment. (j itself cannot: j's parent is outside i's
        // fragment, while every non-root member of i's fragment has its
        // parent inside it.)
        if let Member::Peer(k) = parent {
            if self.is_in_subtree_of(k, i) {
                return false;
            }
        }
        // A fanout-overflow (or source-graft) corruption can leave the
        // parent with more children than it advertises — detaching j
        // then frees no slot. Always false on a valid overlay.
        let overflowed = match parent {
            Member::Source => {
                self.overlay.source_children().len() > self.population.source_fanout() as usize
            }
            Member::Peer(k) => {
                self.overlay.children(k).len() > self.overlay.advertised_fanout(k) as usize
            }
        };
        if overflowed {
            return false;
        }
        if can_adopt && !self.overlay.has_free_fanout(Member::Peer(i)) {
            // Discard the laxest current child to make room for j. A
            // forged fanout cache can report i full with no children to
            // discard; impossible on a valid overlay.
            let Some(discard) = self
                .overlay
                .children(i)
                .iter()
                .copied()
                .max_by_key(|&c| (self.population.latency(c), c.get()))
            else {
                return false;
            };
            self.overlay.detach(discard).expect("child of i");
            self.counters.detaches += 1;
            self.emit_detach(discard, Member::Peer(i), DetachCause::Discarded);
        }
        self.overlay.detach(j).expect("j is a child of parent");
        self.emit_detach(j, parent, DetachCause::Displaced);
        if self.overlay.attach(i, parent).is_err() {
            // Forged caches can make the O(1) cycle check refuse an
            // attach the bounded walk approved; impossible on a valid
            // overlay. j restarts construction near its displacer.
            self.proto[j.index()].referral = Some(Member::Peer(i));
            self.counters.detaches += 1;
            return false;
        }
        self.emit_attach(i, parent);
        if can_adopt && self.overlay.attach(j, Member::Peer(i)).is_ok() {
            self.counters.attaches += 1;
            self.emit_attach(j, Member::Peer(i));
        } else {
            // j restarts construction; point it back at its displacer so
            // its fragment can re-merge nearby.
            self.proto[j.index()].referral = Some(Member::Peer(i));
        }
        self.counters.displacements += 1;
        self.counters.detaches += 1;
        self.counters.attaches += 1;
        true
    }

    /// Whether `node` lies in the subtree rooted at `root` (walking up
    /// from `node`; O(depth)). Bounded by the population size: a walk
    /// that fails to terminate (a corrupted parent cycle) conservatively
    /// answers `true`, so every caller refuses its reconfiguration.
    pub(crate) fn is_in_subtree_of(&self, node: PeerId, root: PeerId) -> bool {
        let mut cur = node;
        let mut budget = self.population.len();
        loop {
            if cur == root {
                return true;
            }
            if budget == 0 {
                return true;
            }
            budget -= 1;
            match self.overlay.parent(cur) {
                Some(Member::Peer(q)) => cur = q,
                Some(Member::Source) | None => return false,
            }
        }
    }

    /// Detaches `p` from its parent as a maintenance action and resets
    /// its protocol state so construction restarts next round.
    pub(crate) fn maintenance_detach(&mut self, p: PeerId) {
        let parent = self
            .overlay
            .detach(p)
            .expect("maintenance on parented peer");
        self.counters.detaches += 1;
        self.counters.maintenance_detaches += 1;
        self.emit_detach(p, parent, DetachCause::Maintenance);
        self.proto[p.index()].reset();
    }

    /// Detaches `p` from a parent it has declared crashed
    /// (`detection_timeout` consecutive silent rounds) and resets its
    /// protocol state so construction restarts next round. `p` keeps
    /// its own subtree, exactly like a maintenance detach.
    pub(crate) fn failure_detach(&mut self, p: PeerId) {
        let parent = self
            .overlay
            .detach(p)
            .expect("failure detach on parented peer");
        self.counters.detaches += 1;
        self.counters.failure_detections += 1;
        if self.obs.is_enabled() {
            // The declared-dead parent is always a peer: the source
            // cannot crash.
            if let Member::Peer(q) = parent {
                self.obs.record(Event::FaultDetected {
                    round: self.round.get(),
                    peer: p.get(),
                    parent: q.get(),
                });
            }
        }
        self.emit_detach(p, parent, DetachCause::Failure);
        self.proto[p.index()].reset();
    }

    /// Applies one round of churn. Departing peers leave the overlay
    /// (children become fragment roots, §3.2); arriving peers come back
    /// fresh.
    pub fn apply_churn(&mut self, churn: &mut dyn ChurnProcess) {
        let profiling = self.obs.profiling();
        let mark = wall_mark();
        let draws0 = self.rng.draws();
        let counters0 = self.counters;
        let mut bitmap = std::mem::take(&mut self.churn_scratch);
        bitmap.clear();
        bitmap.extend_from_slice(&self.online);
        churn.step(&mut bitmap, &mut self.rng);
        for (i, &now) in bitmap.iter().enumerate() {
            let p = PeerId::new(i as u32);
            let was = self.online[i];
            if was && !now {
                self.counters.churn_departures += 1;
                self.online[p.index()] = false;
                if let Some(index) = self.index.as_mut() {
                    index.set_offline(p);
                }
                if let Some(parent) = self.overlay.parent(p) {
                    self.emit_detach(p, parent, DetachCause::Churn);
                }
                let orphans = self.overlay.remove_peer(p);
                for orphan in orphans {
                    self.emit_detach(orphan, Member::Peer(p), DetachCause::Churn);
                }
                self.proto[p.index()].reset();
            } else if !was && now {
                if self.crashed[i] {
                    // Crash-stop is permanent: the churn process may
                    // propose a rejoin, but crashed processes never
                    // resurrect.
                    continue;
                }
                self.counters.churn_arrivals += 1;
                self.online[p.index()] = true;
                if let Some(index) = self.index.as_mut() {
                    index.set_online(p, &self.overlay);
                }
                self.proto[p.index()].reset();
            }
        }
        self.churn_scratch = bitmap; // capacity reused next round
        if profiling {
            let work = self.work_since(draws0, &counters0, 0);
            self.obs.record_phase("churn", work, mark);
        }
        self.check_invariants();
    }

    /// Steps until convergence or the configured round cap, returning
    /// the convergence round if reached.
    pub fn run_to_convergence(&mut self) -> Option<Round> {
        if self.is_converged() {
            return Some(self.round);
        }
        while self.round.get() < self.config.max_rounds {
            self.step();
            if self.is_converged() {
                return Some(self.round);
            }
        }
        None
    }

    /// Probes the overlay's current health in O(N): depth histogram,
    /// slack distribution, orphan / stale-chain counts, fanout
    /// utilization, and the oracle's cumulative load. Read-only; works
    /// whether or not the pipeline is enabled.
    pub fn health_sample(&self) -> HealthSample {
        let depth = crate::analysis::depth_profile(&self.overlay, &self.population);
        let slack = crate::analysis::slack_profile(&self.overlay, &self.population);
        let util = crate::analysis::utilization_profile(&self.overlay, &self.population);
        HealthSample {
            round: self.round.get(),
            online: self.online_count() as u64,
            orphans: self.orphan_count() as u64,
            unrooted: depth.unrooted as u64,
            stale_chains: self.stale_chain_count() as u64,
            satisfied_fraction: self.satisfied_fraction(),
            depth_counts: depth.counts.iter().map(|&c| c as u64).collect(),
            max_depth: depth.max_depth,
            mean_depth: depth.mean_depth,
            violated: slack.violated as u64,
            tight: slack.tight as u64,
            slackful: slack.slackful as u64,
            min_slack: slack.min_slack,
            mean_slack: slack.mean_slack,
            fanout_used: util.used.iter().sum(),
            fanout_capacity: util.capacity.iter().sum(),
            oracle_load: self.counters.oracle_queries,
        }
    }

    /// Scrapes the registry: absorbs the engine counters, refreshes the
    /// health gauges, and returns the round-stamped sample. `None` when
    /// the registry is not enabled.
    pub fn scrape(&mut self) -> Option<Scrape> {
        self.obs.registry()?;
        // Compute health first: the probe reads the whole engine while
        // the registry update needs it mutably.
        let health = self.health_sample();
        let counters = self.counters;
        let round = self.round.get();
        let registry = self.obs.registry_mut().expect("registry checked above");
        registry.absorb_engine_counters(&counters);
        registry.set_gauge("health.satisfied_fraction", health.satisfied_fraction);
        registry.set_gauge("health.orphans", health.orphans as f64);
        registry.set_gauge("health.stale_chains", health.stale_chains as f64);
        registry.set_gauge("health.mean_depth", health.mean_depth);
        registry.set_gauge("health.mean_slack", health.mean_slack);
        registry.set_gauge(
            "health.fanout_utilization",
            health.fanout_utilization().unwrap_or(0.0),
        );
        Some(registry.sample(round))
    }
}

/// Whether `p`'s ancestor chain crosses an offline peer. Free function
/// over the Sync components so the parallel-chunked probes can call it
/// from worker threads (the engine itself is not `Sync` — it owns a
/// `Box<dyn Oracle>`). Bounded by the population size: a chain that
/// fails to terminate (a corrupted parent cycle) can never deliver the
/// feed, so it counts as stale.
fn chain_is_stale(overlay: &Overlay, online: &[bool], p: PeerId) -> bool {
    let mut cur = p;
    let mut budget = online.len();
    loop {
        match overlay.parent(cur) {
            Some(Member::Peer(q)) => {
                if !online[q.index()] || budget == 0 {
                    return true;
                }
                budget -= 1;
                cur = q;
            }
            Some(Member::Source) | None => return false,
        }
    }
}

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};

impl ToJson for ProtoState {
    fn to_json(&self) -> Json {
        object(vec![
            ("referral", self.referral.to_json()),
            ("rounds_unparented", self.rounds_unparented.to_json()),
            ("violation_rounds", self.violation_rounds.to_json()),
            ("parent_silent_rounds", self.parent_silent_rounds.to_json()),
            ("failed_attempts", self.failed_attempts.to_json()),
            ("backoff_remaining", self.backoff_remaining.to_json()),
        ])
    }
}

impl FromJson for ProtoState {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ProtoState {
            referral: Option::from_json(value.get("referral")?)?,
            rounds_unparented: u32::from_json(value.get("rounds_unparented")?)?,
            violation_rounds: u32::from_json(value.get("violation_rounds")?)?,
            // Absent in snapshots taken before the fault subsystem.
            parent_silent_rounds: match value.get_opt("parent_silent_rounds")? {
                Some(v) => u32::from_json(v)?,
                None => 0,
            },
            failed_attempts: match value.get_opt("failed_attempts")? {
                Some(v) => u32::from_json(v)?,
                None => 0,
            },
            backoff_remaining: match value.get_opt("backoff_remaining")? {
                Some(v) => u32::from_json(v)?,
                None => 0,
            },
        })
    }
}

impl ToJson for EngineSnapshot {
    fn to_json(&self) -> Json {
        object(vec![
            ("population", self.population.to_json()),
            ("config", self.config.to_json()),
            ("overlay", self.overlay.to_json()),
            ("online", self.online.to_json()),
            ("proto", self.proto.to_json()),
            ("counters", self.counters.to_json()),
            ("rng", self.rng.to_json()),
            ("round", self.round.to_json()),
            ("faults", self.faults.to_json()),
            ("crashed", self.crashed.to_json()),
            ("crash_silent", self.crash_silent.to_json()),
            ("next_crash", self.next_crash.to_json()),
        ])
    }
}

impl FromJson for EngineSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let population = Population::from_json(value.get("population")?)?;
        let n = population.len();
        let snapshot = EngineSnapshot {
            population,
            config: ConstructionConfig::from_json(value.get("config")?)?,
            overlay: Overlay::from_json(value.get("overlay")?)?,
            online: Vec::from_json(value.get("online")?)?,
            proto: Vec::from_json(value.get("proto")?)?,
            counters: EngineCounters::from_json(value.get("counters")?)?,
            rng: SimRng::from_json(value.get("rng")?)?,
            round: Round::from_json(value.get("round")?)?,
            // Absent in snapshots taken before the fault subsystem:
            // no faults, nobody crashed.
            faults: match value.get_opt("faults")? {
                Some(v) => FaultPlan::from_json(v)?,
                None => FaultPlan::none(),
            },
            crashed: match value.get_opt("crashed")? {
                Some(v) => Vec::from_json(v)?,
                None => vec![false; n],
            },
            crash_silent: match value.get_opt("crash_silent")? {
                Some(v) => Vec::from_json(v)?,
                None => vec![0; n],
            },
            next_crash: match value.get_opt("next_crash")? {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
        };
        if snapshot.online.len() != n
            || snapshot.proto.len() != n
            || snapshot.crashed.len() != n
            || snapshot.crash_silent.len() != n
        {
            return Err(JsonError(format!(
                "snapshot per-peer vectors disagree with population size {n}"
            )));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Constraints;
    use crate::oracle::OracleKind;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    fn chain_population() -> Population {
        Population::new(
            1,
            vec![
                Constraints::new(1, 1),
                Constraints::new(1, 2),
                Constraints::new(0, 3),
            ],
        )
    }

    #[test]
    fn trivial_chain_converges_under_both_algorithms() {
        for algorithm in [Algorithm::Greedy, Algorithm::Hybrid] {
            for oracle in OracleKind::ALL {
                let config = ConstructionConfig::new(algorithm, oracle).with_max_rounds(2_000);
                let mut engine = Engine::new(&chain_population(), &config, 7);
                let at = engine.run_to_convergence();
                assert!(at.is_some(), "{algorithm} with {oracle} failed to converge");
                assert!(engine.is_converged());
                assert_eq!(engine.satisfied_fraction(), 1.0);
                engine.overlay().validate().unwrap();
            }
        }
    }

    #[test]
    fn source_interaction_attaches_when_free() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut engine = Engine::new(&chain_population(), &config, 1);
        engine.source_interaction(p(0));
        assert_eq!(engine.overlay.parent(p(0)), Some(Member::Source));
        assert_eq!(engine.counters.attaches, 1);
    }

    #[test]
    fn source_interaction_displaces_laxer_child() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut engine = Engine::new(&chain_population(), &config, 1);
        // Peer 1 (l=2) grabs the only source slot first.
        engine.source_interaction(p(1));
        assert_eq!(engine.overlay.parent(p(1)), Some(Member::Source));
        // Peer 0 (l=1) displaces it and adopts it.
        engine.source_interaction(p(0));
        assert_eq!(engine.overlay.parent(p(0)), Some(Member::Source));
        assert_eq!(engine.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(engine.counters.displacements, 1);
        engine.overlay.validate().unwrap();
    }

    #[test]
    fn source_interaction_does_not_displace_stricter_child() {
        let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(1, 1)]);
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut engine = Engine::new(&pop, &config, 1);
        engine.source_interaction(p(0));
        engine.source_interaction(p(1));
        // Equal latency: no displacement; peer 1 stays parent-less.
        assert_eq!(engine.overlay.parent(p(1)), None);
        assert_eq!(engine.counters.displacements, 0);
    }

    #[test]
    fn try_attach_enforces_latency() {
        let pop = Population::new(2, vec![Constraints::new(2, 1), Constraints::new(0, 1)]);
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut engine = Engine::new(&pop, &config, 1);
        assert!(engine.try_attach(p(0), Member::Source));
        // Peer 1 has l=1; attaching under peer 0 would put it at delay 2.
        assert!(!engine.try_attach(p(1), Member::Peer(p(0))));
        assert!(engine.try_attach(p(1), Member::Source));
    }

    #[test]
    fn replace_and_adopt_moves_subtrees() {
        // source(f=1); a(f=1,l=4) holds b(f=0,l=4); i(f=2,l=1) swaps in.
        let pop = Population::new(
            1,
            vec![
                Constraints::new(1, 4),
                Constraints::new(0, 4),
                Constraints::new(2, 1),
            ],
        );
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::Random);
        let mut engine = Engine::new(&pop, &config, 1);
        engine.overlay.attach(p(0), Member::Source).unwrap();
        engine.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        assert!(engine.replace_and_adopt(Member::Source, p(0), p(2)));
        assert_eq!(engine.overlay.parent(p(2)), Some(Member::Source));
        assert_eq!(engine.overlay.parent(p(0)), Some(Member::Peer(p(2))));
        // b rides along under a.
        assert_eq!(engine.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(engine.overlay.delay(p(1)), Some(3));
        engine.overlay.validate().unwrap();
    }

    #[test]
    fn replace_and_adopt_refuses_when_old_child_would_break() {
        // j has l=1; being adopted at delay 2 would violate it.
        let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(2, 1)]);
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::Random);
        let mut engine = Engine::new(&pop, &config, 1);
        engine.overlay.attach(p(0), Member::Source).unwrap();
        assert!(!engine.replace_and_adopt(Member::Source, p(0), p(1)));
        assert_eq!(engine.overlay.parent(p(0)), Some(Member::Source));
        assert_eq!(engine.overlay.parent(p(1)), None);
    }

    #[test]
    fn churn_departure_orphans_children_and_arrival_restores() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let mut engine = Engine::new(&chain_population(), &config, 3);
        engine.run_to_convergence().expect("converges");

        // Force peer 0 (the source child) offline.
        struct KillPeer0;
        impl ChurnProcess for KillPeer0 {
            fn step(&mut self, online: &mut [bool], _rng: &mut SimRng) -> lagover_sim::Transitions {
                online[0] = false;
                lagover_sim::Transitions {
                    departures: 1,
                    arrivals: 0,
                }
            }
        }
        engine.apply_churn(&mut KillPeer0);
        assert!(!engine.is_online(p(0)));
        assert!(!engine.is_converged());
        assert_eq!(engine.overlay.parent(p(1)), None, "orphaned");
        // The orphan keeps its own child: fragment reuse.
        assert_eq!(engine.overlay.parent(p(2)), Some(Member::Peer(p(1))));

        // Remaining two peers re-converge (l=2 and l=3 both fit).
        let at = engine.run_to_convergence();
        assert!(at.is_some(), "survivors re-converge");
    }

    #[test]
    fn satisfied_fraction_is_one_when_everyone_offline() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut engine = Engine::new(&chain_population(), &config, 5);
        struct KillAll;
        impl ChurnProcess for KillAll {
            fn step(&mut self, online: &mut [bool], _rng: &mut SimRng) -> lagover_sim::Transitions {
                let n = online.len();
                online.iter_mut().for_each(|o| *o = false);
                lagover_sim::Transitions {
                    departures: n,
                    arrivals: 0,
                }
            }
        }
        engine.apply_churn(&mut KillAll);
        assert_eq!(engine.satisfied_fraction(), 1.0);
        assert!(engine.is_converged());
        assert_eq!(engine.online_count(), 0);
    }

    #[test]
    fn crash_is_silent_until_detected_then_reclaimed() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let mut engine = Engine::new(&chain_population(), &config, 3);
        engine.run_to_convergence().expect("converges");
        // Converged chain: source -> 0 -> 1 -> 2 (the only feasible
        // shape with source fanout 1 and these constraints).
        assert_eq!(engine.overlay.parent(p(1)), Some(Member::Peer(p(0))));

        assert!(engine.inject_crash(p(0)));
        assert!(engine.is_crashed(p(0)));
        assert!(!engine.is_online(p(0)));
        // Silent: unlike churn, the victim keeps its edges for now.
        assert_eq!(engine.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(engine.overlay.parent(p(0)), Some(Member::Source));
        assert!(
            engine.stale_chain_count() >= 1,
            "live chain through a corpse"
        );

        // After detection_timeout rounds every edge touching the victim
        // is gone — either the children walked away or the engine
        // reclaimed them.
        for _ in 0..=engine.config().detection_timeout {
            engine.step();
        }
        assert_eq!(engine.overlay.parent(p(0)), None);
        assert!(engine.overlay.children(p(0)).is_empty());
        assert_eq!(engine.stale_chain_count(), 0);
        assert!(engine.counters().crashes == 1);
        assert!(engine.counters().failure_detections >= 1 || engine.orphan_count() > 0);

        // The survivors re-converge without the victim (l=2 under the
        // source, l=3 below).
        assert!(engine.run_to_convergence().is_some(), "self-healing");
        engine.overlay().validate().unwrap();
    }

    #[test]
    fn crashed_peers_never_rejoin_through_churn() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
        let mut engine = Engine::new(&chain_population(), &config, 4);
        engine.inject_crash(p(1));
        // A churn process that revives every offline peer.
        let mut revive = lagover_sim::BernoulliChurn::new(0.0, 1.0);
        engine.apply_churn(&mut revive);
        assert!(!engine.is_online(p(1)), "crash-stop is permanent");
        assert_eq!(engine.counters().churn_arrivals, 0);
        // A second crash of the same (now offline) peer is a no-op.
        assert!(!engine.inject_crash(p(1)));
        assert_eq!(engine.counters().crashes, 1);
    }

    #[test]
    fn scheduled_crashes_fire_from_the_plan() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let mut engine = Engine::new(&chain_population(), &config, 5);
        engine.set_faults(FaultPlan::none().with_crash(3, 2));
        for _ in 0..2 {
            engine.step();
        }
        assert!(!engine.is_crashed(p(2)), "not yet due");
        for _ in 0..3 {
            engine.step();
        }
        assert!(engine.is_crashed(p(2)));
        assert_eq!(engine.crashed_count(), 1);
    }

    #[test]
    fn oracle_blackout_degrades_to_source_and_recovers() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let mut engine = Engine::new(&chain_population(), &config, 6);
        engine.set_faults(FaultPlan::none().with_blackout(0, 6));
        let at = engine.run_to_convergence();
        assert!(at.is_some(), "timeout fallback routes around the outage");
        assert!(engine.counters().oracle_outages > 0);
    }

    #[test]
    fn message_loss_slows_but_does_not_stop_construction() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let mut engine = Engine::new(&chain_population(), &config, 7);
        engine.set_faults(FaultPlan::none().with_message_loss(0.5));
        assert!(engine.run_to_convergence().is_some());
        assert!(engine.counters().messages_lost > 0);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(2_000);
        let mut plain = Engine::new(&chain_population(), &config, 9);
        let mut faulted = Engine::new(&chain_population(), &config, 9);
        faulted.set_faults(FaultPlan::none());
        for _ in 0..50 {
            plain.step();
            faulted.step();
        }
        assert_eq!(
            plain.snapshot().to_json_string(),
            faulted.snapshot().to_json_string(),
            "an empty plan must not perturb the run"
        );
    }

    #[test]
    fn snapshot_round_trips_fault_state() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
        let mut engine = Engine::new(&chain_population(), &config, 10);
        engine.set_faults(FaultPlan::none().with_message_loss(0.1).with_blackout(4, 2));
        engine.inject_crash(p(2));
        engine.step();
        let json = engine.snapshot().to_json_string();
        let restored = Engine::restore(EngineSnapshot::from_json_str(&json).unwrap());
        assert!(restored.is_crashed(p(2)));
        assert_eq!(restored.crashed_count(), 1);
        assert_eq!(restored.faults(), engine.faults());
        assert_eq!(restored.snapshot().to_json_string(), json);
    }
}
