#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # lagover-core
//!
//! The primary contribution of *"LagOver: Latency Gradated Overlays"*
//! (Datta, Stoica, Franklin — ICDCS 2007): self-organizing dissemination
//! trees in which every consumer's individual **latency constraint**
//! (`l_i`, maximum tolerated staleness) and **fanout constraint** (`f_i`,
//! maximum children served) are first-class.
//!
//! The crate provides:
//!
//! * [`node`] — peer identities, `(f, l)` constraints, populations;
//! * [`overlay`] — the dissemination forest with `Parent` / `Children` /
//!   `Root` / `DelayAt` queries and invariant-checked mutations;
//! * [`oracle`] — the four partial-global-information Oracles of §2.1.4
//!   (`Random`, `Random-Capacity`, `Random-Delay-Capacity`,
//!   `Random-Delay`) behind a trait that substrate realizations plug
//!   into;
//! * the **greedy** (§3.1) and **hybrid** (§3.4, Algorithm 2)
//!   construction algorithms with the maintenance protocol
//!   (Algorithm 1), driven by the round-based [`Engine`] or the
//!   event-driven asynchronous runner ([`run_async`]);
//! * [`sufficiency`] — the §3.3 existence condition and an exact
//!   feasibility checker;
//! * [`runner`] — convergence, churn, and crash-recovery run
//!   orchestration (the latter driven by the deterministic
//!   fault-injection plans of `lagover_sim::faults`);
//! * [`stabilize`] — self-stabilization from arbitrary corrupted
//!   state: adversarial snapshot injection
//!   (`lagover_sim::CorruptionPlan`) and the always-on local
//!   detect-and-repair rule that re-converges from it.
//!
//! # Quickstart
//!
//! ```
//! use lagover_core::{construct, Algorithm, ConstructionConfig, OracleKind};
//! use lagover_core::node::{Constraints, Population};
//!
//! // A source that serves 2 direct consumers, and four consumers with
//! // mixed constraints.
//! let population = Population::new(2, vec![
//!     Constraints::new(2, 1),   // strict: must hear within 1 time unit
//!     Constraints::new(1, 2),
//!     Constraints::new(0, 2),
//!     Constraints::new(0, 3),   // lax: anywhere in the tree works
//! ]);
//!
//! let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
//! let outcome = construct(&population, &config, 42);
//! assert!(outcome.converged());
//! ```

pub mod analysis;
pub mod async_engine;
pub mod config;
pub mod engine;
pub mod forest;
pub mod node;
pub mod oracle;
pub mod overlay;
pub mod runner;
pub mod stabilize;
pub mod sufficiency;
pub mod trace;

mod greedy;
mod hybrid;
mod maintenance;
mod oracle_index;

pub use async_engine::{
    as_construction_outcome, run_async, run_async_lockstep, run_async_observed, run_async_recovery,
    run_async_recovery_lockstep, run_async_recovery_observed, run_async_with_churn,
    AsyncChurnOutcome, AsyncOutcome, AsyncRecoveryOutcome, ObservedAsyncRecovery, ObservedAsyncRun,
};
pub use config::{Algorithm, ConstructionConfig, SourceMode};
pub use engine::{Engine, EngineCounters, EngineSnapshot};
pub use forest::{carve, CarveError, ForestPlan, StreamBudgets, TreePlan};
pub use node::{Constraints, Member, PeerId, Population};
pub use oracle::{Oracle, OracleKind, OracleView};
pub use overlay::{ChainRoot, Overlay, OverlayError};
pub use runner::{
    chunk_plan, construct, construct_many, construct_observed, construct_with_oracle,
    parallel_fold, parallel_runs, parallel_runs_with, run_recovery, run_recovery_observed,
    run_recovery_with_oracle, run_stabilization, run_stabilization_observed,
    run_stabilization_with_oracle, run_with_churn, ChurnOutcome, ConstructionOutcome,
    FaultScenario, ObservedRecovery, ObservedRun, ObservedStabilization, RecoveryOutcome,
    StabilizationOutcome,
};
pub use stabilize::apply_corruption;
pub use sufficiency::{check as check_sufficiency, exact_feasibility, SufficiencyReport};
pub use trace::{DetachCause, TraceEvent, TraceLog};
