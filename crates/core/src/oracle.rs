//! The four Oracles of §2.1.4 and the trait that lets substrates
//! (DHT directory, random walks) stand in for them.
//!
//! An Oracle answers one question: *give me a random peer, interested in
//! the same feed, matching some amount of partial global information*.
//! The four reference semantics:
//!
//! | Oracle | Filter applied to candidate `j` for enquirer `i` |
//! |---|---|
//! | `Random` (O1) | none — any other online peer |
//! | `Random-Capacity` (O2a) | `j` has unused fanout |
//! | `Random-Delay-Capacity` (O2b) | `DelayAt(j) < l_i` **and** unused fanout |
//! | `Random-Delay` (O3) | `DelayAt(j) < l_i` |
//!
//! `DelayAt(j)` is the *actual observed* delay, which only exists for
//! peers whose chain reaches the source; the delay-filtered oracles
//! therefore return nothing until the first peers root themselves (the
//! timeout path to the source bootstraps them). The paper's headline
//! result is that O3 dominates: capacity filtering (O2a/O2b) starves the
//! construction of the very interactions that enable reconfiguration.

use std::fmt;

use serde::{Deserialize, Serialize};

use lagover_sim::SimRng;

use crate::node::{PeerId, Population};
use crate::overlay::Overlay;

/// Read-only snapshot the oracle consults.
#[derive(Debug, Clone, Copy)]
pub struct OracleView<'a> {
    overlay: &'a Overlay,
    population: &'a Population,
    online: &'a [bool],
}

impl<'a> OracleView<'a> {
    /// Bundles the pieces of state an oracle may consult.
    ///
    /// # Panics
    ///
    /// Panics if the online bitmap size disagrees with the population.
    pub fn new(overlay: &'a Overlay, population: &'a Population, online: &'a [bool]) -> Self {
        assert_eq!(online.len(), population.len(), "bitmap/population mismatch");
        OracleView {
            overlay,
            population,
            online,
        }
    }

    /// Whether `p` is currently online.
    pub fn is_online(&self, p: PeerId) -> bool {
        self.online[p.index()]
    }

    /// Actual observed delay of `p` (None while its chain is unrooted).
    pub fn delay(&self, p: PeerId) -> Option<u32> {
        self.overlay.delay(p)
    }

    /// Whether `p` has unused fanout.
    pub fn has_free_fanout(&self, p: PeerId) -> bool {
        self.overlay.has_free_fanout(crate::node::Member::Peer(p))
    }

    /// Latency constraint of `p`.
    pub fn latency(&self, p: PeerId) -> u32 {
        self.population.latency(p)
    }

    /// The population size.
    pub fn len(&self) -> usize {
        self.population.len()
    }

    /// Whether the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.population.is_empty()
    }

    /// The overlay snapshot.
    pub fn overlay(&self) -> &Overlay {
        self.overlay
    }
}

/// A source of random interaction partners.
pub trait Oracle {
    /// Returns a random peer for `enquirer` matching this oracle's
    /// filter, or `None` if no peer qualifies right now (the enquirer
    /// waits and retries next round).
    fn sample(
        &mut self,
        enquirer: PeerId,
        view: &OracleView<'_>,
        rng: &mut SimRng,
    ) -> Option<PeerId>;

    /// Short display name (used in experiment tables).
    fn name(&self) -> &'static str;
}

/// Selector for the four reference oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OracleKind {
    /// O1 — no global information.
    Random,
    /// O2a — free capacity only.
    RandomCapacity,
    /// O2b — latency satisfied and free capacity.
    RandomDelayCapacity,
    /// O3 — latency satisfied (the paper's recommendation).
    RandomDelay,
}

impl OracleKind {
    /// All four kinds, in the paper's O1/O2a/O2b/O3 order (Figure 3).
    pub const ALL: [OracleKind; 4] = [
        OracleKind::Random,
        OracleKind::RandomCapacity,
        OracleKind::RandomDelayCapacity,
        OracleKind::RandomDelay,
    ];

    /// Instantiates the reference implementation.
    pub fn build(self) -> Box<dyn Oracle> {
        match self {
            OracleKind::Random => Box::new(RandomOracle),
            OracleKind::RandomCapacity => Box::new(RandomCapacityOracle),
            OracleKind::RandomDelayCapacity => Box::new(RandomDelayCapacityOracle),
            OracleKind::RandomDelay => Box::new(RandomDelayOracle),
        }
    }

    /// The paper's figure label (O1, O2a, O2b, O3).
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Random => "O1",
            OracleKind::RandomCapacity => "O2a",
            OracleKind::RandomDelayCapacity => "O2b",
            OracleKind::RandomDelay => "O3",
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OracleKind::Random => "Random",
            OracleKind::RandomCapacity => "Random-Capacity",
            OracleKind::RandomDelayCapacity => "Random-Delay-Capacity",
            OracleKind::RandomDelay => "Random-Delay",
        };
        f.write_str(name)
    }
}

/// Uniform sampling over candidates that pass `filter`, excluding the
/// enquirer and offline peers. Shared by all reference oracles.
///
/// Allocation-free two-pass counting selection: the first pass counts
/// eligible peers, a single RNG draw picks an index, and the second
/// pass walks to it. This consumes *exactly* the same RNG stream as the
/// original collect-then-`choose` implementation (one `index(count)`
/// draw when any candidate exists, none otherwise), so experiment
/// outputs stay bit-identical while the per-query `Vec` disappears.
fn sample_filtered<F>(
    enquirer: PeerId,
    view: &OracleView<'_>,
    rng: &mut SimRng,
    filter: F,
) -> Option<PeerId>
where
    F: Fn(PeerId) -> bool,
{
    let eligible = |p: PeerId| p != enquirer && view.is_online(p) && filter(p);
    let count = (0..view.len() as u32)
        .map(PeerId::new)
        .filter(|&p| eligible(p))
        .count();
    if count == 0 {
        return None;
    }
    let k = rng.index(count);
    (0..view.len() as u32)
        .map(PeerId::new)
        .filter(|&p| eligible(p))
        .nth(k)
}

/// Oracle O1: any other online peer interested in the feed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomOracle;

impl Oracle for RandomOracle {
    fn sample(
        &mut self,
        enquirer: PeerId,
        view: &OracleView<'_>,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        sample_filtered(enquirer, view, rng, |_| true)
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

/// Oracle O2a: any online peer with unused fanout.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomCapacityOracle;

impl Oracle for RandomCapacityOracle {
    fn sample(
        &mut self,
        enquirer: PeerId,
        view: &OracleView<'_>,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        sample_filtered(enquirer, view, rng, |p| view.has_free_fanout(p))
    }

    fn name(&self) -> &'static str {
        "Random-Capacity"
    }
}

/// Uniform sampling over candidates with `DelayAt < l` that also pass
/// `extra`, excluding the enquirer and offline peers — enumerated in
/// *(delay asc, id asc)* order. Shared by O2b/O3.
///
/// The delay-filtered oracles enumerate by delay bucket rather than by
/// id because that is the only order the engine's incremental sampling
/// index ([`crate::oracle_index`]) can serve in O(log n); this naive
/// path mirrors it so indexed and unindexed runs draw identical peers
/// from identical RNG streams. The draw-order contract is unchanged:
/// one `rng.index(count)` draw when any candidate exists, none
/// otherwise, and the selection is uniform over the same candidate set
/// as the historical id-order scan.
fn sample_delay_ordered<F>(
    enquirer: PeerId,
    view: &OracleView<'_>,
    rng: &mut SimRng,
    extra: F,
) -> Option<PeerId>
where
    F: Fn(PeerId) -> bool,
{
    let l = view.latency(enquirer);
    let eligible = |p: PeerId| -> Option<u32> {
        if p == enquirer || !view.is_online(p) || !extra(p) {
            return None;
        }
        match view.delay(p) {
            Some(d) if d < l => Some(d),
            _ => None,
        }
    };
    // Observed delays never exceed the population size (depth of the
    // deepest possible chain), so the histogram stays O(n) even for
    // huge latency constraints.
    let lim = (l as usize).min(view.len() + 1);
    let mut hist = vec![0usize; lim];
    let mut count = 0usize;
    for p in (0..view.len() as u32).map(PeerId::new) {
        if let Some(d) = eligible(p) {
            hist[d as usize] += 1;
            count += 1;
        }
    }
    if count == 0 {
        return None;
    }
    let mut k = rng.index(count);
    let mut target = 0u32;
    for (d, &c) in hist.iter().enumerate() {
        if k < c {
            target = d as u32;
            break;
        }
        k -= c;
    }
    (0..view.len() as u32)
        .map(PeerId::new)
        .filter(|&p| eligible(p) == Some(target))
        .nth(k)
}

/// Oracle O2b: observed delay satisfies the enquirer's constraint
/// (`DelayAt(j) < l_i`) *and* unused fanout.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomDelayCapacityOracle;

impl Oracle for RandomDelayCapacityOracle {
    fn sample(
        &mut self,
        enquirer: PeerId,
        view: &OracleView<'_>,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        sample_delay_ordered(enquirer, view, rng, |p| view.has_free_fanout(p))
    }

    fn name(&self) -> &'static str {
        "Random-Delay-Capacity"
    }
}

/// Oracle O3: observed delay satisfies the enquirer's constraint,
/// capacity ignored — saturated peers are still useful because the
/// overlay can be *reconfigured* around them (§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomDelayOracle;

impl Oracle for RandomDelayOracle {
    fn sample(
        &mut self,
        enquirer: PeerId,
        view: &OracleView<'_>,
        rng: &mut SimRng,
    ) -> Option<PeerId> {
        sample_delay_ordered(enquirer, view, rng, |_| true)
    }

    fn name(&self) -> &'static str {
        "Random-Delay"
    }
}

use lagover_jsonio::{FromJson, Json, JsonError, ToJson};

impl ToJson for OracleKind {
    fn to_json(&self) -> Json {
        let name = match self {
            OracleKind::Random => "Random",
            OracleKind::RandomCapacity => "RandomCapacity",
            OracleKind::RandomDelayCapacity => "RandomDelayCapacity",
            OracleKind::RandomDelay => "RandomDelay",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for OracleKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "Random" => Ok(OracleKind::Random),
            "RandomCapacity" => Ok(OracleKind::RandomCapacity),
            "RandomDelayCapacity" => Ok(OracleKind::RandomDelayCapacity),
            "RandomDelay" => Ok(OracleKind::RandomDelay),
            other => Err(JsonError(format!("unknown oracle kind '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Constraints, Member, Population};

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    /// Population: 0 (f=1,l=1) rooted at source; 1 (f=0,l=2) child of 0;
    /// 2 (f=2,l=3) unattached; 3 (f=1,l=2) unattached & offline.
    fn fixture() -> (Overlay, Population, Vec<bool>) {
        let pop = Population::new(
            2,
            vec![
                Constraints::new(1, 1),
                Constraints::new(0, 2),
                Constraints::new(2, 3),
                Constraints::new(1, 2),
            ],
        );
        let mut o = Overlay::new(&pop);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        let online = vec![true, true, true, false];
        (o, pop, online)
    }

    #[test]
    fn random_oracle_excludes_self_and_offline() {
        let (o, pop, online) = fixture();
        let view = OracleView::new(&o, &pop, &online);
        let mut rng = SimRng::seed_from(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = RandomOracle.sample(p(2), &view, &mut rng).unwrap();
            assert_ne!(s, p(2));
            assert_ne!(s, p(3), "offline peer must not be sampled");
            seen.insert(s);
        }
        assert!(seen.contains(&p(0)) && seen.contains(&p(1)));
    }

    #[test]
    fn capacity_oracle_only_returns_free_peers() {
        let (o, pop, online) = fixture();
        let view = OracleView::new(&o, &pop, &online);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let s = RandomCapacityOracle.sample(p(1), &view, &mut rng).unwrap();
            // 0 is full (child 1), 1 has f=0, so only 2 qualifies.
            assert_eq!(s, p(2));
        }
    }

    #[test]
    fn delay_capacity_oracle_requires_both() {
        let (o, pop, online) = fixture();
        let view = OracleView::new(&o, &pop, &online);
        let mut rng = SimRng::seed_from(3);
        // Enquirer 2 has l=3: candidates need delay < 3 AND free fanout.
        // 0 is rooted (delay 1) but full; 1 is rooted (delay 2) but f=0;
        // 2 is the enquirer. Nothing qualifies.
        assert_eq!(
            RandomDelayCapacityOracle.sample(p(2), &view, &mut rng),
            None
        );
    }

    #[test]
    fn delay_oracle_ignores_capacity() {
        let (o, pop, online) = fixture();
        let view = OracleView::new(&o, &pop, &online);
        let mut rng = SimRng::seed_from(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = RandomDelayOracle.sample(p(2), &view, &mut rng).unwrap();
            // delay(0)=1 < 3, delay(1)=2 < 3 — both valid despite being
            // saturated; unrooted peers are not.
            assert!(s == p(0) || s == p(1));
            seen.insert(s);
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn delay_oracle_strict_inequality() {
        let (o, pop, online) = fixture();
        let view = OracleView::new(&o, &pop, &online);
        let mut rng = SimRng::seed_from(5);
        // Enquirer 1 (l=2): only delay < 2 qualifies => peer 0 alone.
        for _ in 0..50 {
            assert_eq!(RandomDelayOracle.sample(p(1), &view, &mut rng), Some(p(0)));
        }
        // Enquirer 0 (l=1): needs delay < 1 — impossible.
        assert_eq!(RandomDelayOracle.sample(p(0), &view, &mut rng), None);
    }

    #[test]
    fn kinds_build_their_named_oracle() {
        for kind in OracleKind::ALL {
            let oracle = kind.build();
            assert_eq!(oracle.name(), kind.to_string());
        }
        assert_eq!(OracleKind::RandomDelay.label(), "O3");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn view_checks_bitmap_length() {
        let (o, pop, _) = fixture();
        let bad = vec![true; 2];
        let _ = OracleView::new(&o, &pop, &bad);
    }
}
