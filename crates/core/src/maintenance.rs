//! The maintenance protocol (Algorithm 1 and §3.4).
//!
//! A node whose chain reaches the source but whose latency constraint is
//! violated must eventually discard its parent and re-enter
//! construction — but *knee-jerk* reactions waste the structure already
//! built (§3.2), so only the node best positioned to act should leave:
//!
//! * **Greedy** — the §3.2 lemma proves the *first* (most upstream)
//!   violated node in a chain observes exactly `DelayAt = l + 1`, and
//!   only it needs to act; it leaves immediately. We implement the
//!   direct generalization "violated while my parent is satisfied",
//!   which coincides with the lemma's condition on greedily-built
//!   chains and stays safe after source displacements.
//! * **Hybrid** — edges carry no latency ordering, so any violated node
//!   may need to act; to dampen reactions it waits
//!   `maintenance_timeout` consecutive violated rounds before leaving
//!   (§3.4: "a more aggressive manner of discarding parent node is
//!   necessary … node i waits for a (maintenance) timeout").
//!
//! Maintenance applies only to *rooted* nodes (`Root(i) = 0` is part of
//! the paper's trigger); fragments keep negotiating through their root.

use crate::config::Algorithm;
use crate::engine::Engine;
use crate::node::{Member, PeerId};

/// One maintenance evaluation at parented peer `p`.
///
/// Before the latency check, `p` probes its parent's liveness: a
/// crash-stop failed parent is still in the overlay (crashes are
/// silent), so `p` counts consecutive silent rounds and — once
/// `detection_timeout` of them accumulate — declares the parent dead
/// and detaches, keeping its own subtree. Graceful churn never reaches
/// this path: a churn departure clears its edges in the same round, so
/// a parented peer's parent is online in every churn-only run.
pub(crate) fn maintain(engine: &mut Engine, p: PeerId) {
    if let Some(Member::Peer(q)) = engine.overlay.parent(p) {
        if !engine.online[q.index()] {
            engine.proto[p.index()].parent_silent_rounds += 1;
            if engine.proto[p.index()].parent_silent_rounds >= engine.config.detection_timeout {
                engine.failure_detach(p);
            }
            return;
        }
        engine.proto[p.index()].parent_silent_rounds = 0;
    }
    let Some(delay) = engine.overlay.delay(p) else {
        // Not rooted: no actual DelayAt; the fragment root negotiates.
        engine.proto[p.index()].violation_rounds = 0;
        return;
    };
    let l = engine.population.latency(p);
    if delay <= l {
        engine.proto[p.index()].violation_rounds = 0;
        return;
    }
    match engine.config.algorithm {
        Algorithm::Greedy => {
            if parent_is_satisfied(engine, p) {
                engine.maintenance_detach(p);
            }
        }
        Algorithm::Hybrid => {
            engine.proto[p.index()].violation_rounds += 1;
            if engine.proto[p.index()].violation_rounds >= engine.config.maintenance_timeout {
                engine.maintenance_detach(p);
            }
        }
    }
}

/// Whether `p`'s parent meets its own latency constraint (the source
/// trivially does) — i.e. `p` is the most upstream violated node of its
/// chain.
fn parent_is_satisfied(engine: &Engine, p: PeerId) -> bool {
    match engine.overlay.parent(p) {
        Some(Member::Source) => true,
        Some(Member::Peer(q)) => {
            matches!(engine.overlay.delay(q), Some(d) if d <= engine.population.latency(q))
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::node::{Constraints, Population};
    use crate::oracle::OracleKind;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    /// source(f1) -> a(l1) -> b(l1!) -> c(l3): b is violated (delay 2),
    /// c is violated only transitively (delay 3 <= 3 actually fine).
    fn violated_engine(algorithm: Algorithm) -> Engine {
        let pop = Population::new(
            1,
            vec![
                Constraints::new(1, 1),
                Constraints::new(1, 1),
                Constraints::new(0, 3),
            ],
        );
        let config =
            ConstructionConfig::new(algorithm, OracleKind::Random).with_maintenance_timeout(2);
        let mut e = Engine::new(&pop, &config, 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        e.overlay.attach(p(2), Member::Peer(p(1))).unwrap();
        e
    }

    #[test]
    fn greedy_detaches_first_violated_node_immediately() {
        let mut e = violated_engine(Algorithm::Greedy);
        // b (peer 1) observes DelayAt = l + 1 = 2 and its parent is
        // satisfied: the lemma condition.
        assert_eq!(e.overlay.delay(p(1)), Some(2));
        maintain(&mut e, p(1));
        assert_eq!(e.overlay.parent(p(1)), None);
        assert_eq!(e.counters.maintenance_detaches, 1);
        // c rides along in b's fragment.
        assert_eq!(e.overlay.parent(p(2)), Some(Member::Peer(p(1))));
    }

    #[test]
    fn greedy_downstream_node_does_not_react() {
        let pop = Population::new(
            1,
            vec![
                Constraints::new(1, 1),
                Constraints::new(1, 1),
                Constraints::new(0, 2),
            ],
        );
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut e = Engine::new(&pop, &config, 1);
        e.overlay.attach(p(0), Member::Source).unwrap();
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        e.overlay.attach(p(2), Member::Peer(p(1))).unwrap();
        // c (peer 2, delay 3 > l=2) is violated, but so is its parent b:
        // only b acts (§3.2 proof: downstream nodes "do not need to do
        // any thing").
        maintain(&mut e, p(2));
        assert_eq!(e.overlay.parent(p(2)), Some(Member::Peer(p(1))));
        maintain(&mut e, p(1));
        assert_eq!(e.overlay.parent(p(1)), None);
    }

    #[test]
    fn satisfied_node_is_left_alone() {
        let mut e = violated_engine(Algorithm::Greedy);
        maintain(&mut e, p(0));
        maintain(&mut e, p(2));
        assert_eq!(e.counters.maintenance_detaches, 0);
    }

    #[test]
    fn hybrid_waits_for_the_timeout() {
        let mut e = violated_engine(Algorithm::Hybrid);
        maintain(&mut e, p(1));
        assert!(e.overlay.parent(p(1)).is_some(), "damped");
        maintain(&mut e, p(1));
        assert_eq!(e.overlay.parent(p(1)), None, "timeout of 2 reached");
        assert_eq!(e.counters.maintenance_detaches, 1);
    }

    #[test]
    fn hybrid_violation_counter_resets_when_cleared() {
        let mut e = violated_engine(Algorithm::Hybrid);
        maintain(&mut e, p(1));
        assert_eq!(e.proto[1].violation_rounds, 1);
        // The violation clears: a (peer 0) leaves, chain unroots.
        e.overlay.detach(p(0)).unwrap();
        maintain(&mut e, p(1));
        assert_eq!(e.proto[1].violation_rounds, 0, "unrooted resets damping");
    }

    #[test]
    fn silent_parent_is_detected_after_timeout() {
        // detection_timeout defaults to 3.
        let mut e = violated_engine(Algorithm::Hybrid);
        e.inject_crash(p(0));
        // The edge survives while b is still counting silence.
        for observed in 1..3 {
            maintain(&mut e, p(1));
            assert!(
                e.overlay.parent(p(1)).is_some(),
                "still counting after {observed} silent round(s)"
            );
            assert_eq!(e.proto[1].parent_silent_rounds, observed);
        }
        maintain(&mut e, p(1));
        assert_eq!(e.overlay.parent(p(1)), None, "parent declared crashed");
        assert_eq!(e.counters.failure_detections, 1);
        assert_eq!(e.counters.maintenance_detaches, 0, "not a latency detach");
        // c rides along in b's fragment, exactly like a maintenance
        // detach.
        assert_eq!(e.overlay.parent(p(2)), Some(Member::Peer(p(1))));
    }

    #[test]
    fn silence_counter_resets_while_parent_is_alive() {
        let mut e = violated_engine(Algorithm::Hybrid);
        e.proto[1].parent_silent_rounds = 2;
        maintain(&mut e, p(1));
        assert_eq!(e.proto[1].parent_silent_rounds, 0);
    }

    #[test]
    fn unrooted_fragments_never_trigger_maintenance() {
        let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 1)]);
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let mut e = Engine::new(&pop, &config, 1);
        e.overlay.attach(p(1), Member::Peer(p(0))).unwrap();
        // Peer 1's speculative delay (2) violates l=1, but the chain is
        // unrooted: Root(i) = 0 is part of the paper's trigger.
        maintain(&mut e, p(1));
        assert_eq!(e.overlay.parent(p(1)), Some(Member::Peer(p(0))));
        assert_eq!(e.counters.maintenance_detaches, 0);
    }
}
