//! Structural analysis of a (partially) constructed overlay: depth
//! profiles, constraint slack, and fanout utilization.
//!
//! These are the quantities a deployment would watch on a dashboard —
//! and the quantities the gradation property is *about*: a LagOver is
//! healthy when slack is non-negative everywhere and capacity near the
//! source is neither hoarded nor exhausted.

use serde::{Deserialize, Serialize};

use crate::node::{Member, PeerId, Population};
use crate::overlay::Overlay;
use crate::runner::parallel_fold;

/// Elementwise sum of two histogram vectors of possibly different
/// lengths (the [`parallel_fold`] combiner for per-level profiles).
fn merge_hist<T: Copy + std::ops::AddAssign>(mut a: Vec<T>, b: Vec<T>, zero: T) -> Vec<T> {
    if a.len() < b.len() {
        a.resize(b.len(), zero);
    }
    for (slot, v) in a.iter_mut().zip(b) {
        *slot += v;
    }
    a
}

/// Depth histogram and summary of a forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthProfile {
    /// `counts[d]` = rooted peers at delay `d` (`counts[0]` is unused
    /// and always 0; delays start at 1).
    pub counts: Vec<usize>,
    /// Peers not reachable from the source.
    pub unrooted: usize,
    /// Maximum observed delay.
    pub max_depth: u32,
    /// Mean delay over rooted peers (0.0 when none).
    pub mean_depth: f64,
}

/// Slack statistics: `slack(i) = l_i - DelayAt(i)` for rooted peers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackProfile {
    /// Rooted peers with `slack < 0` (violated).
    pub violated: usize,
    /// Rooted peers with `slack == 0` (tight — any upstream growth
    /// breaks them).
    pub tight: usize,
    /// Rooted peers with `slack > 0`.
    pub slackful: usize,
    /// Minimum slack (negative iff violations exist); `None` when no
    /// peer is rooted.
    pub min_slack: Option<i64>,
    /// Mean slack over rooted peers.
    pub mean_slack: f64,
}

/// Capacity usage per tree level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationProfile {
    /// `used[d]` / `capacity[d]`: child slots used and offered by peers
    /// at delay `d` (index 0 = the source).
    pub used: Vec<u64>,
    /// Capacity offered per level (see `used`).
    pub capacity: Vec<u64>,
}

impl UtilizationProfile {
    /// Utilization ratio of level `d` (`None` if the level offers no
    /// capacity or is out of range).
    pub fn ratio(&self, level: usize) -> Option<f64> {
        match (self.used.get(level), self.capacity.get(level)) {
            (Some(&u), Some(&c)) if c > 0 => Some(u as f64 / c as f64),
            _ => None,
        }
    }
}

/// Computes the depth profile. Scans chunks of the population in
/// parallel on large inputs (all accumulators are integers, so the
/// chunk-ordered combine is exact and thread-count independent).
pub fn depth_profile(overlay: &Overlay, population: &Population) -> DepthProfile {
    struct Acc {
        counts: Vec<usize>,
        unrooted: usize,
        sum: u64,
        rooted: usize,
    }
    let acc = parallel_fold(
        population.len(),
        |range| {
            let mut acc = Acc {
                counts: Vec::new(),
                unrooted: 0,
                sum: 0,
                rooted: 0,
            };
            for i in range {
                match overlay.delay(PeerId::new(i as u32)) {
                    Some(d) => {
                        let d = d as usize;
                        if acc.counts.len() <= d {
                            acc.counts.resize(d + 1, 0);
                        }
                        acc.counts[d] += 1;
                        acc.sum += d as u64;
                        acc.rooted += 1;
                    }
                    None => acc.unrooted += 1,
                }
            }
            acc
        },
        |a, b| Acc {
            counts: merge_hist(a.counts, b.counts, 0),
            unrooted: a.unrooted + b.unrooted,
            sum: a.sum + b.sum,
            rooted: a.rooted + b.rooted,
        },
    );
    DepthProfile {
        max_depth: acc.counts.len().saturating_sub(1) as u32,
        mean_depth: if acc.rooted == 0 {
            0.0
        } else {
            acc.sum as f64 / acc.rooted as f64
        },
        counts: acc.counts,
        unrooted: acc.unrooted,
    }
}

/// Computes the slack profile. Scans chunks of the population in
/// parallel on large inputs.
pub fn slack_profile(overlay: &Overlay, population: &Population) -> SlackProfile {
    struct Acc {
        violated: usize,
        tight: usize,
        slackful: usize,
        min_slack: Option<i64>,
        sum: i64,
        rooted: usize,
    }
    let latencies = population.latencies();
    let acc = parallel_fold(
        population.len(),
        |range| {
            let mut acc = Acc {
                violated: 0,
                tight: 0,
                slackful: 0,
                min_slack: None,
                sum: 0,
                rooted: 0,
            };
            for i in range {
                if let Some(d) = overlay.delay(PeerId::new(i as u32)) {
                    let slack = i64::from(latencies[i]) - i64::from(d);
                    match slack {
                        s if s < 0 => acc.violated += 1,
                        0 => acc.tight += 1,
                        _ => acc.slackful += 1,
                    }
                    acc.min_slack = Some(acc.min_slack.map_or(slack, |m| m.min(slack)));
                    acc.sum += slack;
                    acc.rooted += 1;
                }
            }
            acc
        },
        |a, b| Acc {
            violated: a.violated + b.violated,
            tight: a.tight + b.tight,
            slackful: a.slackful + b.slackful,
            min_slack: match (a.min_slack, b.min_slack) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            },
            sum: a.sum + b.sum,
            rooted: a.rooted + b.rooted,
        },
    );
    SlackProfile {
        violated: acc.violated,
        tight: acc.tight,
        slackful: acc.slackful,
        min_slack: acc.min_slack,
        mean_slack: if acc.rooted == 0 {
            0.0
        } else {
            acc.sum as f64 / acc.rooted as f64
        },
    }
}

/// Computes per-level capacity utilization. Level 0 is the source;
/// level `d >= 1` aggregates the rooted peers at delay `d`.
pub fn utilization_profile(overlay: &Overlay, population: &Population) -> UtilizationProfile {
    let fanouts = population.fanouts();
    let (peer_used, peer_capacity) = parallel_fold(
        population.len(),
        |range| {
            let mut used: Vec<u64> = Vec::new();
            let mut capacity: Vec<u64> = Vec::new();
            for i in range {
                let p = PeerId::new(i as u32);
                if let Some(d) = overlay.delay(p) {
                    let d = d as usize;
                    if used.len() <= d {
                        used.resize(d + 1, 0);
                        capacity.resize(d + 1, 0);
                    }
                    used[d] += overlay.children(p).len() as u64;
                    capacity[d] += u64::from(fanouts[i]);
                }
            }
            (used, capacity)
        },
        |(ua, ca), (ub, cb)| (merge_hist(ua, ub, 0), merge_hist(ca, cb, 0)),
    );
    // Level 0 is the source's own slot usage.
    let mut used = vec![overlay.source_children().len() as u64];
    let mut capacity = vec![u64::from(population.source_fanout())];
    used.extend(peer_used.into_iter().skip(1));
    capacity.extend(peer_capacity.into_iter().skip(1));
    UtilizationProfile { used, capacity }
}

/// The *latency gradation* coefficient: the fraction of edges
/// `parent -> child` (among peer-to-peer edges) where
/// `l_parent <= l_child`. The greedy algorithm yields 1.0 by invariant;
/// the hybrid trades gradation for capacity, and this measures by how
/// much.
pub fn gradation_coefficient(overlay: &Overlay, population: &Population) -> Option<f64> {
    let latencies = population.latencies();
    let (ordered, edges) = parallel_fold(
        population.len(),
        |range| {
            let mut ordered = 0usize;
            let mut edges = 0usize;
            for i in range {
                if let Some(Member::Peer(q)) = overlay.parent(PeerId::new(i as u32)) {
                    edges += 1;
                    if latencies[q.index()] <= latencies[i] {
                        ordered += 1;
                    }
                }
            }
            (ordered, edges)
        },
        |(oa, ea), (ob, eb)| (oa + ob, ea + eb),
    );
    (edges > 0).then(|| ordered as f64 / edges as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::engine::Engine;
    use crate::node::{Constraints, PeerId};
    use crate::oracle::OracleKind;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    /// source -> 0 (l=2) -> 1 (l=2, tight); 2 unrooted.
    fn fixture() -> (Overlay, Population) {
        let population = Population::new(
            1,
            vec![
                Constraints::new(2, 2),
                Constraints::new(1, 2),
                Constraints::new(0, 3),
            ],
        );
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        (o, population)
    }

    #[test]
    fn depth_profile_counts_levels_and_unrooted() {
        let (o, population) = fixture();
        let d = depth_profile(&o, &population);
        assert_eq!(d.counts, vec![0, 1, 1]);
        assert_eq!(d.unrooted, 1);
        assert_eq!(d.max_depth, 2);
        assert!((d.mean_depth - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slack_profile_classifies() {
        let (o, population) = fixture();
        let s = slack_profile(&o, &population);
        // Peer 0: slack 1; peer 1: slack 0.
        assert_eq!(s.violated, 0);
        assert_eq!(s.tight, 1);
        assert_eq!(s.slackful, 1);
        assert_eq!(s.min_slack, Some(0));
        assert!((s.mean_slack - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slack_profile_detects_violation() {
        let population = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 1)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap(); // delay 2 > l 1
        let s = slack_profile(&o, &population);
        assert_eq!(s.violated, 1);
        assert_eq!(s.min_slack, Some(-1));
    }

    #[test]
    fn utilization_tracks_used_and_offered() {
        let (o, population) = fixture();
        let u = utilization_profile(&o, &population);
        assert_eq!(u.used, vec![1, 1, 0]);
        assert_eq!(u.capacity, vec![1, 2, 1]);
        assert_eq!(u.ratio(0), Some(1.0));
        assert_eq!(u.ratio(1), Some(0.5));
        assert_eq!(u.ratio(9), None);
    }

    #[test]
    fn gradation_is_one_for_greedy_runs() {
        let population = Population::new(
            2,
            vec![
                Constraints::new(2, 1),
                Constraints::new(2, 2),
                Constraints::new(0, 3),
                Constraints::new(0, 3),
                Constraints::new(0, 4),
            ],
        );
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(3_000);
        let mut engine = Engine::new(&population, &config, 8);
        engine.run_to_convergence().expect("converges");
        assert_eq!(
            gradation_coefficient(engine.overlay(), &population),
            Some(1.0)
        );
    }

    #[test]
    fn empty_forest_profiles_are_sane() {
        let population = Population::new(1, vec![Constraints::new(1, 1)]);
        let o = Overlay::new(&population);
        let d = depth_profile(&o, &population);
        assert_eq!(d.unrooted, 1);
        assert_eq!(d.mean_depth, 0.0);
        let s = slack_profile(&o, &population);
        assert_eq!(s.min_slack, None);
        assert_eq!(gradation_coefficient(&o, &population), None);
    }
}
