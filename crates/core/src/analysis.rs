//! Structural analysis of a (partially) constructed overlay: depth
//! profiles, constraint slack, and fanout utilization.
//!
//! These are the quantities a deployment would watch on a dashboard —
//! and the quantities the gradation property is *about*: a LagOver is
//! healthy when slack is non-negative everywhere and capacity near the
//! source is neither hoarded nor exhausted.

use serde::{Deserialize, Serialize};

use crate::node::{Member, Population};
use crate::overlay::Overlay;

/// Depth histogram and summary of a forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthProfile {
    /// `counts[d]` = rooted peers at delay `d` (`counts[0]` is unused
    /// and always 0; delays start at 1).
    pub counts: Vec<usize>,
    /// Peers not reachable from the source.
    pub unrooted: usize,
    /// Maximum observed delay.
    pub max_depth: u32,
    /// Mean delay over rooted peers (0.0 when none).
    pub mean_depth: f64,
}

/// Slack statistics: `slack(i) = l_i - DelayAt(i)` for rooted peers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackProfile {
    /// Rooted peers with `slack < 0` (violated).
    pub violated: usize,
    /// Rooted peers with `slack == 0` (tight — any upstream growth
    /// breaks them).
    pub tight: usize,
    /// Rooted peers with `slack > 0`.
    pub slackful: usize,
    /// Minimum slack (negative iff violations exist); `None` when no
    /// peer is rooted.
    pub min_slack: Option<i64>,
    /// Mean slack over rooted peers.
    pub mean_slack: f64,
}

/// Capacity usage per tree level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationProfile {
    /// `used[d]` / `capacity[d]`: child slots used and offered by peers
    /// at delay `d` (index 0 = the source).
    pub used: Vec<u64>,
    /// Capacity offered per level (see `used`).
    pub capacity: Vec<u64>,
}

impl UtilizationProfile {
    /// Utilization ratio of level `d` (`None` if the level offers no
    /// capacity or is out of range).
    pub fn ratio(&self, level: usize) -> Option<f64> {
        match (self.used.get(level), self.capacity.get(level)) {
            (Some(&u), Some(&c)) if c > 0 => Some(u as f64 / c as f64),
            _ => None,
        }
    }
}

/// Computes the depth profile.
pub fn depth_profile(overlay: &Overlay, population: &Population) -> DepthProfile {
    let mut counts: Vec<usize> = Vec::new();
    let mut unrooted = 0usize;
    let mut sum = 0u64;
    let mut rooted = 0usize;
    for p in population.peer_ids() {
        match overlay.delay(p) {
            Some(d) => {
                let d = d as usize;
                if counts.len() <= d {
                    counts.resize(d + 1, 0);
                }
                counts[d] += 1;
                sum += d as u64;
                rooted += 1;
            }
            None => unrooted += 1,
        }
    }
    DepthProfile {
        max_depth: counts.len().saturating_sub(1) as u32,
        mean_depth: if rooted == 0 {
            0.0
        } else {
            sum as f64 / rooted as f64
        },
        counts,
        unrooted,
    }
}

/// Computes the slack profile.
pub fn slack_profile(overlay: &Overlay, population: &Population) -> SlackProfile {
    let mut violated = 0;
    let mut tight = 0;
    let mut slackful = 0;
    let mut min_slack: Option<i64> = None;
    let mut sum = 0i64;
    let mut rooted = 0usize;
    for p in population.peer_ids() {
        if let Some(d) = overlay.delay(p) {
            let slack = i64::from(population.latency(p)) - i64::from(d);
            match slack {
                s if s < 0 => violated += 1,
                0 => tight += 1,
                _ => slackful += 1,
            }
            min_slack = Some(min_slack.map_or(slack, |m| m.min(slack)));
            sum += slack;
            rooted += 1;
        }
    }
    SlackProfile {
        violated,
        tight,
        slackful,
        min_slack,
        mean_slack: if rooted == 0 {
            0.0
        } else {
            sum as f64 / rooted as f64
        },
    }
}

/// Computes per-level capacity utilization. Level 0 is the source;
/// level `d >= 1` aggregates the rooted peers at delay `d`.
pub fn utilization_profile(overlay: &Overlay, population: &Population) -> UtilizationProfile {
    let mut used = vec![overlay.source_children().len() as u64];
    let mut capacity = vec![u64::from(population.source_fanout())];
    for p in population.peer_ids() {
        if let Some(d) = overlay.delay(p) {
            let d = d as usize;
            if used.len() <= d {
                used.resize(d + 1, 0);
                capacity.resize(d + 1, 0);
            }
            used[d] += overlay.children(p).len() as u64;
            capacity[d] += u64::from(population.fanout(p));
        }
    }
    UtilizationProfile { used, capacity }
}

/// The *latency gradation* coefficient: the fraction of edges
/// `parent -> child` (among peer-to-peer edges) where
/// `l_parent <= l_child`. The greedy algorithm yields 1.0 by invariant;
/// the hybrid trades gradation for capacity, and this measures by how
/// much.
pub fn gradation_coefficient(overlay: &Overlay, population: &Population) -> Option<f64> {
    let mut ordered = 0usize;
    let mut edges = 0usize;
    for p in population.peer_ids() {
        if let Some(Member::Peer(q)) = overlay.parent(p) {
            edges += 1;
            if population.latency(q) <= population.latency(p) {
                ordered += 1;
            }
        }
    }
    (edges > 0).then(|| ordered as f64 / edges as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, ConstructionConfig};
    use crate::engine::Engine;
    use crate::node::{Constraints, PeerId};
    use crate::oracle::OracleKind;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    /// source -> 0 (l=2) -> 1 (l=2, tight); 2 unrooted.
    fn fixture() -> (Overlay, Population) {
        let population = Population::new(
            1,
            vec![
                Constraints::new(2, 2),
                Constraints::new(1, 2),
                Constraints::new(0, 3),
            ],
        );
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap();
        (o, population)
    }

    #[test]
    fn depth_profile_counts_levels_and_unrooted() {
        let (o, population) = fixture();
        let d = depth_profile(&o, &population);
        assert_eq!(d.counts, vec![0, 1, 1]);
        assert_eq!(d.unrooted, 1);
        assert_eq!(d.max_depth, 2);
        assert!((d.mean_depth - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slack_profile_classifies() {
        let (o, population) = fixture();
        let s = slack_profile(&o, &population);
        // Peer 0: slack 1; peer 1: slack 0.
        assert_eq!(s.violated, 0);
        assert_eq!(s.tight, 1);
        assert_eq!(s.slackful, 1);
        assert_eq!(s.min_slack, Some(0));
        assert!((s.mean_slack - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slack_profile_detects_violation() {
        let population = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 1)]);
        let mut o = Overlay::new(&population);
        o.attach(p(0), Member::Source).unwrap();
        o.attach(p(1), Member::Peer(p(0))).unwrap(); // delay 2 > l 1
        let s = slack_profile(&o, &population);
        assert_eq!(s.violated, 1);
        assert_eq!(s.min_slack, Some(-1));
    }

    #[test]
    fn utilization_tracks_used_and_offered() {
        let (o, population) = fixture();
        let u = utilization_profile(&o, &population);
        assert_eq!(u.used, vec![1, 1, 0]);
        assert_eq!(u.capacity, vec![1, 2, 1]);
        assert_eq!(u.ratio(0), Some(1.0));
        assert_eq!(u.ratio(1), Some(0.5));
        assert_eq!(u.ratio(9), None);
    }

    #[test]
    fn gradation_is_one_for_greedy_runs() {
        let population = Population::new(
            2,
            vec![
                Constraints::new(2, 1),
                Constraints::new(2, 2),
                Constraints::new(0, 3),
                Constraints::new(0, 3),
                Constraints::new(0, 4),
            ],
        );
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(3_000);
        let mut engine = Engine::new(&population, &config, 8);
        engine.run_to_convergence().expect("converges");
        assert_eq!(
            gradation_coefficient(engine.overlay(), &population),
            Some(1.0)
        );
    }

    #[test]
    fn empty_forest_profiles_are_sane() {
        let population = Population::new(1, vec![Constraints::new(1, 1)]);
        let o = Overlay::new(&population);
        let d = depth_profile(&o, &population);
        assert_eq!(d.unrooted, 1);
        assert_eq!(d.mean_depth, 0.0);
        let s = slack_profile(&o, &population);
        assert_eq!(s.min_slack, None);
        assert_eq!(gradation_coefficient(&o, &population), None);
    }
}
