//! Event-driven (asynchronous) construction (§5.3 extended
//! experiments).
//!
//! In real deployments *"synchronization of peer interactions is
//! unrealistic"*: each peer's interaction takes its own amount of time.
//! [`run_async`] drives the same per-peer logic as the round-based
//! engine, but each peer schedules its next action `duration(peer)`
//! time units after the previous one completes, so peers drift out of
//! lockstep. The paper's observation — asynchrony slows construction
//! but does not prevent convergence — is experiment E6.

use lagover_obs::{wall_mark, HealthSample, Journal, Profiler, Scrape, Work};
use lagover_sim::{EventQueue, SimRng, TimeSeries, VirtualTime};

use crate::config::ConstructionConfig;
use crate::engine::Engine;
use crate::node::{PeerId, Population};
use crate::runner::ConstructionOutcome;

/// Supplies per-peer interaction durations. Implemented by
/// `lagover-net`'s models; kept as a local trait so `lagover-core` does
/// not depend on the network substrate.
pub trait InteractionDurations {
    /// Strictly positive duration of the next action of `peer`.
    fn duration(&mut self, peer: PeerId, rng: &mut SimRng) -> f64;
}

impl<F> InteractionDurations for F
where
    F: FnMut(PeerId, &mut SimRng) -> f64,
{
    fn duration(&mut self, peer: PeerId, rng: &mut SimRng) -> f64 {
        self(peer, rng)
    }
}

/// Every action takes the same fixed duration — the lockstep baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedActionDuration(pub f64);

impl InteractionDurations for FixedActionDuration {
    fn duration(&mut self, _peer: PeerId, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

/// Outcome of an asynchronous run: virtual-time convergence instant plus
/// the equivalent-rounds normalization used to compare against the
/// synchronous engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncOutcome {
    /// Virtual time at which every peer was satisfied, if reached.
    pub converged_at: Option<f64>,
    /// Total actions (events) processed.
    pub actions: u64,
    /// Satisfied fraction sampled after each action (x = virtual time).
    pub satisfied_series: TimeSeries,
    /// Final satisfied fraction.
    pub final_satisfied_fraction: f64,
}

impl AsyncOutcome {
    /// Whether the run converged before the time limit.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

/// Runs asynchronous construction until convergence or `max_time`.
///
/// Every peer's first action is scheduled at an independent offset in
/// `[0, 1)` so the initial conditions are already desynchronized.
///
/// # Example
///
/// ```
/// use lagover_core::{run_async, Algorithm, ConstructionConfig, OracleKind};
/// use lagover_core::node::{Constraints, Population, PeerId};
/// use lagover_sim::SimRng;
///
/// let pop = Population::new(1, vec![Constraints::new(1, 1), Constraints::new(0, 2)]);
/// let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
/// // Heterogeneous action durations: peers alternate fast and slow.
/// let durations = |p: PeerId, rng: &mut SimRng| {
///     0.5 + rng.f64() * (p.index() as f64 % 2.0 + 1.0) / 2.0
/// };
/// let outcome = run_async(&pop, &config, durations, 1_000.0, 3);
/// assert!(outcome.converged());
/// ```
pub fn run_async<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    durations: D,
    max_time: f64,
    seed: u64,
) -> AsyncOutcome {
    run_async_inner(population, config, durations, max_time, seed, None).0
}

/// An asynchronous run with the observability pipeline attached.
///
/// The event-driven engine has no rounds, so scrape/health entries are
/// indexed by sample ordinal; [`ObservedAsyncRun::sample_times`] carries
/// the virtual time of each entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedAsyncRun {
    /// The plain outcome (identical to [`run_async`]'s).
    pub outcome: AsyncOutcome,
    /// The bounded event journal recorded over the run.
    pub journal: Journal,
    /// Registry scrapes at each sample instant.
    pub scrapes: Vec<Scrape>,
    /// Health probes at the same instants.
    pub health: Vec<HealthSample>,
    /// Virtual time of each scrape/health entry.
    pub sample_times: Vec<f64>,
    /// Per-action work profile (`construction` / `maintenance` phases).
    pub profile: Profiler,
    /// Engine counters accumulated over the run (the event-driven
    /// outcome shape does not carry them).
    pub counters: crate::engine::EngineCounters,
}

/// [`run_async`] with the observability pipeline enabled: journals
/// every protocol event, probes health and scrapes the registry every
/// `sample_interval` virtual-time units, and attributes each action's
/// work to its phase. The outcome is bit-identical to the unobserved
/// run's.
pub fn run_async_observed<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    durations: D,
    max_time: f64,
    seed: u64,
    journal_capacity: usize,
    sample_interval: f64,
) -> ObservedAsyncRun {
    assert!(sample_interval > 0.0, "sample interval must be positive");
    run_async_inner(
        population,
        config,
        durations,
        max_time,
        seed,
        Some((journal_capacity, sample_interval)),
    )
    .1
    .expect("observation requested")
}

fn run_async_inner<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    mut durations: D,
    max_time: f64,
    seed: u64,
    observe: Option<(usize, f64)>,
) -> (AsyncOutcome, Option<ObservedAsyncRun>) {
    let mut engine = Engine::new(population, config, seed);
    if let Some((capacity, _)) = observe {
        engine
            .obs_mut()
            .enable_journal(capacity)
            .enable_registry()
            .enable_profiler();
    }
    let mut schedule_rng = SimRng::seed_from(seed).split(0x5EED_A57C);
    let mut queue: EventQueue<PeerId> = EventQueue::with_capacity(population.len() + 1);
    for p in population.peer_ids() {
        let offset = schedule_rng.f64();
        queue.schedule(VirtualTime::new(offset).expect("offset in [0,1)"), p);
    }

    let mut series = TimeSeries::new("satisfied_fraction");
    series.push(0.0, engine.satisfied_fraction());
    let mut actions = 0u64;
    let mut converged_at = None;
    let mut scrapes = Vec::new();
    let mut health = Vec::new();
    let mut sample_times = Vec::new();
    let mut next_sample = 0.0f64;
    if let Some((_, interval)) = observe {
        health.push(engine.health_sample());
        scrapes.push(engine.scrape().expect("registry enabled"));
        sample_times.push(0.0);
        next_sample = interval;
    }

    while let Some(t) = queue.peek_time() {
        if t.get() > max_time {
            break;
        }
        let (now, p) = queue.pop().expect("peeked");
        if engine.is_online(p) {
            if observe.is_some() {
                // Per-action profiling, mirroring the synchronous
                // engine's phase attribution.
                let mark = wall_mark();
                let draws0 = engine.rng_draws();
                let counters0 = *engine.counters();
                let phase = if engine.overlay().parent(p).is_none() {
                    "construction"
                } else {
                    "maintenance"
                };
                engine.act_on(p);
                let c = engine.counters();
                let work = Work {
                    actions: 1,
                    rng_draws: engine.rng_draws() - draws0,
                    oracle_queries: c.oracle_queries - counters0.oracle_queries,
                    interactions: c.interactions - counters0.interactions,
                    attaches: c.attaches - counters0.attaches,
                    detaches: c.detaches - counters0.detaches,
                    messages_lost: c.messages_lost - counters0.messages_lost,
                };
                engine.obs_mut().record_phase(phase, work, mark);
            } else {
                engine.act_on(p);
            }
            actions += 1;
            series.push(now.get(), engine.satisfied_fraction());
            if engine.is_converged() {
                converged_at = Some(now.get());
                if observe.is_some() {
                    health.push(engine.health_sample());
                    scrapes.push(engine.scrape().expect("registry enabled"));
                    sample_times.push(now.get());
                }
                break;
            }
            if let Some((_, interval)) = observe {
                if now.get() >= next_sample {
                    health.push(engine.health_sample());
                    scrapes.push(engine.scrape().expect("registry enabled"));
                    sample_times.push(now.get());
                    while next_sample <= now.get() {
                        next_sample += interval;
                    }
                }
            }
        }
        let d = durations.duration(p, &mut schedule_rng);
        assert!(d > 0.0, "interaction durations must be positive");
        queue.schedule_after(d, p);
    }

    let outcome = AsyncOutcome {
        converged_at,
        actions,
        final_satisfied_fraction: engine.satisfied_fraction(),
        satisfied_series: series,
    };
    let observed = observe.map(|_| ObservedAsyncRun {
        outcome: outcome.clone(),
        counters: *engine.counters(),
        journal: engine.obs_mut().take_journal().expect("journal enabled"),
        scrapes,
        health,
        sample_times,
        profile: engine.obs().profiler().cloned().expect("profiler enabled"),
    });
    (outcome, observed)
}

/// Convenience: the synchronous baseline expressed through the
/// asynchronous machinery (every action takes exactly one time unit).
/// Used to validate that the event-driven path reproduces the
/// round-based behaviour.
pub fn run_async_lockstep(
    population: &Population,
    config: &ConstructionConfig,
    max_time: f64,
    seed: u64,
) -> AsyncOutcome {
    run_async(population, config, FixedActionDuration(1.0), max_time, seed)
}

/// Converts an [`AsyncOutcome`] into the [`ConstructionOutcome`] shape
/// (rounds := ceil(virtual time)) so async and sync results tabulate
/// together.
pub fn as_construction_outcome(outcome: &AsyncOutcome) -> ConstructionOutcome {
    ConstructionOutcome {
        converged_at: outcome.converged_at.map(|t| t.ceil() as u64),
        rounds_run: outcome
            .satisfied_series
            .last()
            .map(|(x, _)| x.ceil() as u64)
            .unwrap_or(0),
        satisfied_series: outcome.satisfied_series.clone(),
        final_satisfied_fraction: outcome.final_satisfied_fraction,
        counters: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::node::Constraints;
    use crate::oracle::OracleKind;

    fn population() -> Population {
        Population::new(
            2,
            vec![
                Constraints::new(2, 1),
                Constraints::new(1, 2),
                Constraints::new(0, 2),
                Constraints::new(0, 3),
            ],
        )
    }

    #[test]
    fn lockstep_async_converges() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let outcome = run_async_lockstep(&population(), &config, 5_000.0, 7);
        assert!(outcome.converged());
        assert_eq!(outcome.final_satisfied_fraction, 1.0);
    }

    #[test]
    fn heterogeneous_durations_still_converge() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        // Peers 0/1 fast, peers 2/3 up to 4x slower.
        let outcome = run_async(
            &population(),
            &config,
            |p: PeerId, rng: &mut SimRng| {
                if p.index() < 2 {
                    0.5 + rng.f64() * 0.1
                } else {
                    1.5 + rng.f64() * 2.5
                }
            },
            10_000.0,
            11,
        );
        assert!(outcome.converged());
        assert!(outcome.actions > 0);
    }

    #[test]
    fn time_limit_truncates() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let outcome = run_async(&population(), &config, FixedActionDuration(10.0), 5.0, 3);
        // Only the initial offsets fit inside the limit.
        assert!(outcome.actions <= 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_durations_rejected() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random);
        let _ = run_async(&population(), &config, FixedActionDuration(0.0), 10.0, 3);
    }

    #[test]
    fn observed_async_run_matches_plain_run() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let plain = run_async_lockstep(&population(), &config, 5_000.0, 7);
        let observed = run_async_observed(
            &population(),
            &config,
            FixedActionDuration(1.0),
            5_000.0,
            7,
            1024,
            5.0,
        );
        assert_eq!(observed.outcome, plain, "observation must not perturb");
        assert!(!observed.journal.is_empty());
        assert_eq!(observed.health.len(), observed.scrapes.len());
        assert_eq!(observed.health.len(), observed.sample_times.len());
        assert_eq!(observed.profile.total().actions, plain.actions);
    }

    fn wide_population(n: u32) -> Population {
        // Feasible by construction: 4 peers per latency tier, fanout 3
        // each, so tier k offers 12 slots to tier k+1's 4 demands.
        let constraints = (0..n).map(|i| Constraints::new(3, i / 4 + 1)).collect();
        Population::new(4, constraints)
    }

    #[test]
    fn async_recovery_heals_after_interior_crash() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let outcome = run_async_recovery_lockstep(&wide_population(24), &config, 0.2, 10_000.0, 7);
        assert!(outcome.construction_converged_at.is_some());
        assert!(outcome.crashed_peers > 0, "cohort must crash somebody");
        assert!(outcome.healed(), "overlay must re-converge: {outcome:?}");
        assert_eq!(outcome.final_stale_chains, 0);
        assert!(outcome.healed_at > outcome.construction_converged_at);
    }

    #[test]
    fn async_recovery_zero_fraction_heals_instantly() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let outcome = run_async_recovery_lockstep(&wide_population(16), &config, 0.0, 10_000.0, 3);
        assert_eq!(outcome.crashed_peers, 0);
        assert_eq!(outcome.healed_at, outcome.construction_converged_at);
    }

    #[test]
    fn observed_async_recovery_matches_plain_run() {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let pop = wide_population(24);
        let plain = run_async_recovery_lockstep(&pop, &config, 0.2, 10_000.0, 7);
        let observed = run_async_recovery_observed(
            &pop,
            &config,
            FixedActionDuration(1.0),
            0.2,
            10_000.0,
            7,
            8_192,
        );
        assert_eq!(observed.outcome, plain, "observation must not perturb");
        assert!(!observed.journal.is_empty());
        let counts = observed.journal.counts_by_kind();
        assert!(
            counts
                .iter()
                .any(|(kind, n)| *kind == lagover_obs::EventKind::Crash && *n > 0),
            "journal must record the injected crashes: {counts:?}"
        );
    }

    #[test]
    fn conversion_to_construction_outcome() {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let outcome = run_async_lockstep(&population(), &config, 5_000.0, 7);
        let converted = as_construction_outcome(&outcome);
        assert_eq!(converted.converged(), outcome.converged());
        assert_eq!(
            converted.final_satisfied_fraction,
            outcome.final_satisfied_fraction
        );
    }
}

/// Outcome of an asynchronous crash-recovery run: the E15 scenario
/// (converge, crash an interior cohort, heal) expressed on the
/// event-driven clock. This is the deterministic twin the
/// `lagover-node` runtime replays against.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncRecoveryOutcome {
    /// Virtual time at which construction first converged, if reached.
    pub construction_converged_at: Option<f64>,
    /// Size of the crashed interior cohort (0 if construction never
    /// converged, so no crash was injected).
    pub crashed_peers: usize,
    /// Virtual time at which the overlay was satisfied *and* stale-free
    /// again after the crash, if reached.
    pub healed_at: Option<f64>,
    /// Total actions (events) processed.
    pub actions: u64,
    /// Final satisfied fraction over online peers.
    pub final_satisfied_fraction: f64,
    /// Stale root chains left at the end (0 when healed).
    pub final_stale_chains: usize,
}

impl AsyncRecoveryOutcome {
    /// Whether the overlay healed before the time limit.
    pub fn healed(&self) -> bool {
        self.healed_at.is_some()
    }
}

/// [`run_async_recovery`] with the event journal attached.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedAsyncRecovery {
    /// The plain outcome (identical to [`run_async_recovery`]'s).
    pub outcome: AsyncRecoveryOutcome,
    /// The bounded event journal recorded over the run (construction,
    /// crash injection, detection, and re-attachment events).
    pub journal: Journal,
    /// Engine counters accumulated over the run.
    pub counters: crate::engine::EngineCounters,
}

/// Runs the E15 recovery scenario on the asynchronous engine: lockstep
/// offsets and scheduling identical to [`run_async`], construction to
/// convergence, then an interior cohort crash (same cohort stream as
/// the round-based `run_recovery`: `split(0xFA17_C0DE)` over online
/// peers with children), then further actions until the overlay is
/// satisfied and stale-free again or `max_time` passes.
///
/// Crash injection happens at the exact action where convergence is
/// first observed, so the whole trajectory is a pure function of
/// `(population, config, seed)` — the property the multi-process node
/// harness relies on to replicate it.
pub fn run_async_recovery<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    durations: D,
    crash_fraction: f64,
    max_time: f64,
    seed: u64,
) -> AsyncRecoveryOutcome {
    run_async_recovery_inner(
        population,
        config,
        durations,
        crash_fraction,
        max_time,
        seed,
        None,
    )
    .0
}

/// [`run_async_recovery`] with the journal enabled; the outcome is
/// bit-identical to the unobserved run's.
pub fn run_async_recovery_observed<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    durations: D,
    crash_fraction: f64,
    max_time: f64,
    seed: u64,
    journal_capacity: usize,
) -> ObservedAsyncRecovery {
    run_async_recovery_inner(
        population,
        config,
        durations,
        crash_fraction,
        max_time,
        seed,
        Some(journal_capacity),
    )
    .1
    .expect("observation requested")
}

/// Convenience: the recovery twin with every action taking one time
/// unit — the schedule the `lagover-node` transports replicate.
pub fn run_async_recovery_lockstep(
    population: &Population,
    config: &ConstructionConfig,
    crash_fraction: f64,
    max_time: f64,
    seed: u64,
) -> AsyncRecoveryOutcome {
    run_async_recovery(
        population,
        config,
        FixedActionDuration(1.0),
        crash_fraction,
        max_time,
        seed,
    )
}

fn run_async_recovery_inner<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    mut durations: D,
    crash_fraction: f64,
    max_time: f64,
    seed: u64,
    observe: Option<usize>,
) -> (AsyncRecoveryOutcome, Option<ObservedAsyncRecovery>) {
    let mut engine = Engine::new(population, config, seed);
    if let Some(capacity) = observe {
        engine.obs_mut().enable_journal(capacity);
    }
    let mut schedule_rng = SimRng::seed_from(seed).split(0x5EED_A57C);
    let mut queue: EventQueue<PeerId> = EventQueue::with_capacity(population.len() + 1);
    for p in population.peer_ids() {
        let offset = schedule_rng.f64();
        queue.schedule(VirtualTime::new(offset).expect("offset in [0,1)"), p);
    }

    let mut actions = 0u64;
    let mut construction_converged_at = None;
    let mut crashed: Option<usize> = None;
    let mut healed_at = None;

    while let Some(t) = queue.peek_time() {
        if t.get() > max_time {
            break;
        }
        let (now, p) = queue.pop().expect("peeked");
        if engine.is_online(p) {
            engine.act_on(p);
            actions += 1;
            if crashed.is_none() {
                if engine.is_converged() {
                    construction_converged_at = Some(now.get());
                    // Interior cohort at the instant of convergence —
                    // the same predicate and rng stream as the
                    // round-based recovery runner.
                    let interior: Vec<u32> = population
                        .peer_ids()
                        .filter(|&q| {
                            engine.is_online(q) && !engine.overlay().children(q).is_empty()
                        })
                        .map(|q| q.get())
                        .collect();
                    let mut cohort_rng = SimRng::seed_from(seed).split(0xFA17_C0DE);
                    let victims = lagover_sim::faults::crash_cohort(
                        &interior,
                        crash_fraction,
                        &mut cohort_rng,
                    );
                    for &v in &victims {
                        engine.inject_crash(PeerId::new(v));
                    }
                    crashed = Some(victims.len());
                    if victims.is_empty() {
                        healed_at = Some(now.get());
                        break;
                    }
                }
            } else if engine.is_converged() && engine.stale_chain_count() == 0 {
                healed_at = Some(now.get());
                break;
            }
        }
        let d = durations.duration(p, &mut schedule_rng);
        assert!(d > 0.0, "interaction durations must be positive");
        queue.schedule_after(d, p);
    }

    let outcome = AsyncRecoveryOutcome {
        construction_converged_at,
        crashed_peers: crashed.unwrap_or(0),
        healed_at,
        actions,
        final_satisfied_fraction: engine.satisfied_fraction(),
        final_stale_chains: engine.stale_chain_count(),
    };
    let observed = observe.map(|_| ObservedAsyncRecovery {
        outcome: outcome.clone(),
        counters: *engine.counters(),
        journal: engine.obs_mut().take_journal().expect("journal enabled"),
    });
    (outcome, observed)
}

/// Outcome of an asynchronous run under churn.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncChurnOutcome {
    /// Virtual time at which every *online* peer was first satisfied,
    /// if that ever happened.
    pub first_converged_at: Option<f64>,
    /// Actions processed.
    pub actions: u64,
    /// Satisfied fraction sampled after each churn tick (x = virtual
    /// time).
    pub satisfied_series: TimeSeries,
    /// Mean satisfied fraction over the final quarter of the run.
    pub steady_state_fraction: f64,
}

/// Event payload for the churn-aware asynchronous runner.
enum AsyncEvent {
    /// A peer's next own-action.
    Act(PeerId),
    /// The once-per-time-unit churn tick.
    ChurnTick,
}

/// Runs asynchronous construction with churn applied once per unit of
/// virtual time (the paper's per-round churn semantics mapped onto the
/// continuous clock).
///
/// # Example
///
/// ```
/// use lagover_core::{run_async_with_churn, Algorithm, ConstructionConfig, OracleKind};
/// use lagover_core::async_engine::FixedActionDuration;
/// use lagover_core::node::{Constraints, Population};
/// use lagover_sim::BernoulliChurn;
///
/// let pop = Population::new(2, vec![Constraints::new(1, 1), Constraints::new(0, 2)]);
/// let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay);
/// let mut churn = BernoulliChurn::new(0.01, 0.2);
/// let outcome = run_async_with_churn(
///     &pop, &config, FixedActionDuration(1.0), &mut churn, 500.0, 3,
/// );
/// assert!(outcome.steady_state_fraction > 0.5);
/// ```
pub fn run_async_with_churn<D: InteractionDurations>(
    population: &Population,
    config: &ConstructionConfig,
    mut durations: D,
    churn: &mut dyn lagover_sim::ChurnProcess,
    max_time: f64,
    seed: u64,
) -> AsyncChurnOutcome {
    let mut engine = Engine::new(population, config, seed);
    let mut schedule_rng = SimRng::seed_from(seed).split(0x5EED_A57D);
    let mut queue: EventQueue<AsyncEvent> = EventQueue::with_capacity(population.len() + 1);
    for p in population.peer_ids() {
        let offset = schedule_rng.f64();
        queue.schedule(
            VirtualTime::new(offset).expect("offset in [0,1)"),
            AsyncEvent::Act(p),
        );
    }
    queue.schedule(
        VirtualTime::new(1.0).expect("positive"),
        AsyncEvent::ChurnTick,
    );

    let mut series = TimeSeries::new("satisfied_fraction");
    series.push(0.0, engine.satisfied_fraction());
    let mut actions = 0u64;
    let mut first_converged_at = None;

    while let Some(t) = queue.peek_time() {
        if t.get() > max_time {
            break;
        }
        let (now, event) = queue.pop().expect("peeked");
        match event {
            AsyncEvent::Act(p) => {
                if engine.is_online(p) {
                    engine.act_on(p);
                    actions += 1;
                    if first_converged_at.is_none() && engine.is_converged() {
                        first_converged_at = Some(now.get());
                    }
                }
                let d = durations.duration(p, &mut schedule_rng);
                assert!(d > 0.0, "interaction durations must be positive");
                queue.schedule_after(d, AsyncEvent::Act(p));
            }
            AsyncEvent::ChurnTick => {
                engine.apply_churn(churn);
                series.push(now.get(), engine.satisfied_fraction());
                queue.schedule_after(1.0, AsyncEvent::ChurnTick);
            }
        }
    }

    let window = (series.len() / 4).max(1);
    AsyncChurnOutcome {
        first_converged_at,
        actions,
        steady_state_fraction: series.tail_mean(window).unwrap_or(0.0),
        satisfied_series: series,
    }
}
