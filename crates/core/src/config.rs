//! Construction configuration: algorithm, oracle, source mode, timers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::oracle::OracleKind;

/// Which LagOver construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// §3.1 — order the tree strictly by latency constraint
    /// (`l_parent <= l_child` along every edge).
    Greedy,
    /// §3.4, Algorithm 2 — jointly optimize latency and capacity,
    /// preferring high-fanout parents whenever no latency constraint is
    /// violated.
    Hybrid,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Algorithm::Greedy => "Greedy",
            Algorithm::Hybrid => "Hybrid",
        })
    }
}

/// Whether the source only serves pulls (the RSS case the paper
/// focuses on, §2.1.2) or can push to its direct children (Algorithm 2
/// lines 29–33, kept as an extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceMode {
    /// Pull-only source: direct children with the strictest latency
    /// constraints are preferred (displacement by latency).
    Pull,
    /// Push-capable source: any node may sit at depth 1, so displacement
    /// at the source is decided by fanout.
    Push,
}

impl fmt::Display for SourceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SourceMode::Pull => "pull",
            SourceMode::Push => "push",
        })
    }
}

/// Tunable parameters of a construction run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstructionConfig {
    /// The construction algorithm.
    pub algorithm: Algorithm,
    /// Which reference oracle brokers interactions.
    pub oracle: OracleKind,
    /// Pull-only (paper default) or push-capable source.
    pub source_mode: SourceMode,
    /// A parent-less peer contacts the source directly after this many
    /// fruitless rounds (Algorithm 2's `Timeout`).
    pub timeout_rounds: u32,
    /// Rounds a hybrid-built node tolerates `DelayAt > l` before
    /// discarding its parent (§3.4's damped maintenance; the greedy
    /// algorithm discards immediately per the §3.2 lemma).
    pub maintenance_timeout: u32,
    /// Hard cap on construction rounds for convergence runs.
    pub max_rounds: u64,
    /// Consecutive silent rounds after which a child declares its
    /// parent crashed (crash-stop failures are silent, so liveness is
    /// inferred, never announced). Graceful churn is unaffected.
    pub detection_timeout: u32,
    /// Cap (in rounds) on the exponential backoff a peer applies after
    /// a *fault-induced* contact failure (lost interaction or oracle
    /// blackout). The timeout-fallback-to-source rule bypasses backoff,
    /// so this only paces oracle retries.
    pub backoff_cap: u32,
}

impl ConstructionConfig {
    /// Creates a configuration with the defaults used throughout the
    /// evaluation: pull source, timeout 4, maintenance timeout 3,
    /// 20 000-round cap.
    pub fn new(algorithm: Algorithm, oracle: OracleKind) -> Self {
        ConstructionConfig {
            algorithm,
            oracle,
            source_mode: SourceMode::Pull,
            timeout_rounds: 4,
            maintenance_timeout: 3,
            max_rounds: 20_000,
            detection_timeout: 3,
            backoff_cap: 8,
        }
    }

    /// Builder-style override of the source mode.
    #[must_use]
    pub fn with_source_mode(mut self, mode: SourceMode) -> Self {
        self.source_mode = mode;
        self
    }

    /// Builder-style override of the source-contact timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` (a zero timeout would stampede the source
    /// every round).
    #[must_use]
    pub fn with_timeout_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "timeout must be at least one round");
        self.timeout_rounds = rounds;
        self
    }

    /// Builder-style override of the maintenance damping timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn with_maintenance_timeout(mut self, rounds: u32) -> Self {
        assert!(
            rounds >= 1,
            "maintenance timeout must be at least one round"
        );
        self.maintenance_timeout = rounds;
        self
    }

    /// Builder-style override of the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Builder-style override of the crash-detection timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` (a peer cannot be declared dead before
    /// a single silent round has been observed).
    #[must_use]
    pub fn with_detection_timeout(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "detection timeout must be at least one round");
        self.detection_timeout = rounds;
        self
    }

    /// Builder-style override of the retry-backoff cap.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn with_backoff_cap(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "backoff cap must be at least one round");
        self.backoff_cap = rounds;
        self
    }
}

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};

impl ToJson for Algorithm {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Algorithm {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "Greedy" => Ok(Algorithm::Greedy),
            "Hybrid" => Ok(Algorithm::Hybrid),
            other => Err(JsonError(format!("unknown algorithm '{other}'"))),
        }
    }
}

impl ToJson for SourceMode {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for SourceMode {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "pull" => Ok(SourceMode::Pull),
            "push" => Ok(SourceMode::Push),
            other => Err(JsonError(format!("unknown source mode '{other}'"))),
        }
    }
}

impl ToJson for ConstructionConfig {
    fn to_json(&self) -> Json {
        object(vec![
            ("algorithm", self.algorithm.to_json()),
            ("oracle", self.oracle.to_json()),
            ("source_mode", self.source_mode.to_json()),
            ("timeout_rounds", self.timeout_rounds.to_json()),
            ("maintenance_timeout", self.maintenance_timeout.to_json()),
            ("max_rounds", self.max_rounds.to_json()),
            ("detection_timeout", self.detection_timeout.to_json()),
            ("backoff_cap", self.backoff_cap.to_json()),
        ])
    }
}

impl FromJson for ConstructionConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ConstructionConfig {
            algorithm: Algorithm::from_json(value.get("algorithm")?)?,
            oracle: crate::OracleKind::from_json(value.get("oracle")?)?,
            source_mode: SourceMode::from_json(value.get("source_mode")?)?,
            timeout_rounds: u32::from_json(value.get("timeout_rounds")?)?,
            maintenance_timeout: u32::from_json(value.get("maintenance_timeout")?)?,
            max_rounds: u64::from_json(value.get("max_rounds")?)?,
            // Absent in configs serialized before the fault subsystem
            // existed; fall back to the documented defaults.
            detection_timeout: match value.get_opt("detection_timeout")? {
                Some(v) => u32::from_json(v)?,
                None => 3,
            },
            backoff_cap: match value.get_opt("backoff_cap")? {
                Some(v) => u32::from_json(v)?,
                None => 8,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documentation() {
        let c = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay);
        assert_eq!(c.source_mode, SourceMode::Pull);
        assert_eq!(c.timeout_rounds, 4);
        assert_eq!(c.maintenance_timeout, 3);
        assert_eq!(c.max_rounds, 20_000);
        assert_eq!(c.detection_timeout, 3);
        assert_eq!(c.backoff_cap, 8);
    }

    #[test]
    fn builders_override() {
        let c = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::Random)
            .with_source_mode(SourceMode::Push)
            .with_timeout_rounds(7)
            .with_maintenance_timeout(2)
            .with_max_rounds(100)
            .with_detection_timeout(5)
            .with_backoff_cap(16);
        assert_eq!(c.source_mode, SourceMode::Push);
        assert_eq!(c.timeout_rounds, 7);
        assert_eq!(c.maintenance_timeout, 2);
        assert_eq!(c.max_rounds, 100);
        assert_eq!(c.detection_timeout, 5);
        assert_eq!(c.backoff_cap, 16);
    }

    #[test]
    #[should_panic(expected = "detection timeout")]
    fn zero_detection_timeout_rejected() {
        let _ = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random)
            .with_detection_timeout(0);
    }

    #[test]
    fn pre_fault_json_parses_with_defaults() {
        // Configs serialized before detection_timeout/backoff_cap
        // existed must still round-trip.
        let old = "{\"algorithm\":\"Hybrid\",\"oracle\":\"RandomDelay\",\
                   \"source_mode\":\"pull\",\"timeout_rounds\":4,\
                   \"maintenance_timeout\":3,\"max_rounds\":20000}";
        let c: ConstructionConfig = lagover_jsonio::from_str(old).unwrap();
        assert_eq!(c.detection_timeout, 3);
        assert_eq!(c.backoff_cap, 8);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_timeout_rejected() {
        let _ =
            ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random).with_timeout_rounds(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Greedy.to_string(), "Greedy");
        assert_eq!(Algorithm::Hybrid.to_string(), "Hybrid");
        assert_eq!(SourceMode::Pull.to_string(), "pull");
        assert_eq!(SourceMode::Push.to_string(), "push");
    }
}
