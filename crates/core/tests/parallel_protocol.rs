//! Concurrency model tests for the `parallel_runs` scope-and-chunk
//! protocol (`cargo xtask loom` runs exactly this suite).
//!
//! The protocol under test: indices `0..count` are split into contiguous
//! chunks ([`lagover_core::chunk_plan`]), one scoped worker thread owns
//! each chunk and writes each of its slots exactly once, and the scope
//! join is the only synchronization before the results are read.
//!
//! Offline constraint: the `loom` crate cannot be vendored into this
//! workspace, so the interleaving exploration is a small in-repo model
//! checker — every worker is a straight-line sequence of "write slot"
//! operations, and [`explore`] enumerates *all* interleavings of those
//! sequences, checking the data-race and write-once invariants loom
//! would check. The protocol has no internal synchronization (disjoint
//! slots, join-at-scope-end), so straight-line write sequences model it
//! exactly; there is no hidden state for a DPOR-style checker to miss.
//! The `with_loom` module at the bottom carries the equivalent real-loom
//! model for environments where the dependency is available.

use lagover_core::{chunk_plan, parallel_fold, parallel_runs_with};

/// One shared-memory write by a worker: (owning chunk, slot index).
#[derive(Clone, Copy, Debug)]
struct WriteOp {
    chunk: usize,
    slot: usize,
}

/// Per-slot model state.
#[derive(Clone, Copy, PartialEq)]
enum Slot {
    Empty,
    Written { by_chunk: usize },
}

/// Enumerates every interleaving of the workers' write sequences and
/// checks, at each step, that no slot is ever written twice (the model
/// equivalent of a data race on a `&mut` slot) and that the writer owns
/// the slot it writes. Returns the number of complete interleavings.
fn explore(programs: &[Vec<WriteOp>], count: usize) -> u64 {
    fn step(programs: &[Vec<WriteOp>], pc: &mut [usize], slots: &mut [Slot], explored: &mut u64) {
        let mut any_runnable = false;
        for t in 0..programs.len() {
            if pc[t] >= programs[t].len() {
                continue;
            }
            any_runnable = true;
            let op = programs[t][pc[t]];
            assert_eq!(op.chunk, t, "worker {t} executing another chunk's op");
            assert!(
                slots[op.slot] == Slot::Empty,
                "slot {} written twice (second writer: chunk {t})",
                op.slot
            );
            slots[op.slot] = Slot::Written { by_chunk: t };
            pc[t] += 1;
            step(programs, pc, slots, explored);
            pc[t] -= 1;
            slots[op.slot] = Slot::Empty;
        }
        if !any_runnable {
            // Scope join: every slot must now hold its owner's write.
            for (i, s) in slots.iter().enumerate() {
                match s {
                    Slot::Written { .. } => {}
                    Slot::Empty => panic!("slot {i} unwritten at join"),
                }
            }
            *explored += 1;
        }
    }
    let mut pc = vec![0usize; programs.len()];
    let mut slots = vec![Slot::Empty; count];
    let mut explored = 0;
    step(programs, &mut pc, &mut slots, &mut explored);
    explored
}

/// Builds the worker programs exactly as `parallel_runs_with` does: one
/// worker per chunk, slots written in offset order.
fn programs_for(count: usize, threads: usize) -> Vec<Vec<WriteOp>> {
    chunk_plan(count, threads)
        .into_iter()
        .enumerate()
        .map(|(chunk, (start, len))| {
            (0..len)
                .map(|offset| WriteOp {
                    chunk,
                    slot: start + offset,
                })
                .collect()
        })
        .collect()
}

#[test]
fn chunk_plan_partitions_every_index_range() {
    for count in 0..=40 {
        for threads in 1..=10 {
            let plan = chunk_plan(count, threads);
            let mut covered = vec![false; count];
            let mut previous_end = 0;
            for &(start, len) in &plan {
                assert!(len >= 1, "empty chunk in plan for {count}/{threads}");
                assert_eq!(start, previous_end, "chunks not contiguous/ordered");
                for (slot, seen) in covered.iter_mut().enumerate().skip(start).take(len) {
                    assert!(!*seen, "slot {slot} assigned twice");
                    *seen = true;
                }
                previous_end = start + len;
            }
            assert_eq!(previous_end, count, "plan does not cover 0..{count}");
            assert!(covered.iter().all(|&c| c), "uncovered slot");
        }
    }
}

#[test]
fn every_interleaving_writes_each_slot_exactly_once() {
    // Small enough for exhaustive exploration, large enough to cover
    // uneven final chunks (5/2 -> 3+2, 7/3 -> 3+3+1) and the
    // single-chunk degenerate case.
    for (count, threads) in [(4, 2), (5, 2), (6, 3), (7, 3), (3, 1), (2, 2)] {
        let programs = programs_for(count, threads);
        let explored = explore(&programs, count);
        assert!(
            explored > 0,
            "no interleavings explored for {count}/{threads}"
        );
    }
}

#[test]
fn parallel_results_match_sequential_for_all_worker_counts() {
    let job = |i: usize| {
        // A job whose value depends only on its index, like the
        // seed-derived experiment runs.
        (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
    };
    let expected: Vec<u64> = (0..23).map(job).collect();
    for threads in 1..=9 {
        assert_eq!(
            parallel_runs_with(23, threads, job),
            expected,
            "results diverge at {threads} threads"
        );
    }
}

#[test]
fn every_interleaving_of_fold_result_writes_is_race_free() {
    // `parallel_fold` follows the same protocol with one write per
    // chunk: worker `c` writes result slot `c` exactly once, and the
    // scope join is the only synchronization before the chunk-ordered
    // combine reads the slots.
    for (count, threads) in [(4, 2), (7, 3), (9, 4)] {
        let chunks = chunk_plan(count, threads).len();
        let programs: Vec<Vec<WriteOp>> = (0..chunks)
            .map(|chunk| vec![WriteOp { chunk, slot: chunk }])
            .collect();
        let explored = explore(&programs, chunks);
        assert!(explored > 0, "no interleavings for {count}/{threads}");
    }
}

#[test]
fn parallel_fold_matches_sequential_above_the_parallel_threshold() {
    // Large enough that the fold actually goes wide on any machine.
    let n = 1 << 16;
    let term = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let expected: u64 = (0..n).map(term).fold(0, u64::wrapping_add);
    let got = parallel_fold(
        n,
        |range| range.map(term).fold(0, u64::wrapping_add),
        u64::wrapping_add,
    );
    assert_eq!(got, expected);
}

#[test]
fn parallel_fold_combines_in_chunk_order() {
    // A non-commutative combine (range concatenation) only reproduces
    // the sequential left-to-right result if chunk results are combined
    // in chunk order — which is the determinism contract.
    let n = (1 << 15) + 137;
    let got = parallel_fold(
        n,
        |range| vec![(range.start, range.end)],
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    let mut previous_end = 0;
    for &(start, end) in &got {
        assert_eq!(start, previous_end, "chunks combined out of order");
        previous_end = end;
    }
    assert_eq!(previous_end, n);
}

#[test]
fn parallel_fold_handles_empty_and_small_ranges_inline() {
    assert_eq!(parallel_fold(0, |r| r.len(), |a, b| a + b), 0);
    assert_eq!(parallel_fold(10, |r| r.len(), |a, b| a + b), 10);
}

/// Real-loom model of the same protocol, for environments where the
/// `loom` crate is available: build with
/// `RUSTFLAGS="--cfg loom"` after adding `loom` as a dev-dependency.
/// Not compiled in this offline workspace.
#[cfg(loom)]
mod with_loom {
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::Arc;

    #[test]
    fn chunked_slot_writes_are_race_free_under_loom() {
        loom::model(|| {
            let slots: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
            let plan = [(0usize, 2usize), (2, 2)];
            let handles: Vec<_> = plan
                .iter()
                .map(|&(start, len)| {
                    let slots = Arc::clone(&slots);
                    loom::thread::spawn(move || {
                        for offset in 0..len {
                            slots[start + offset].store(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for s in slots.iter() {
                assert_eq!(s.load(Ordering::Relaxed), 1);
            }
        });
    }
}
