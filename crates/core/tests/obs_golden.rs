//! Golden-file pin: the event journal of a small fixed-seed
//! construction run, byte for byte. Any change to the protocol's event
//! emission — ordering, payloads, new or dropped events, JSON encoding
//! — shows up here as a diff against a reviewable fixture.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! LAGOVER_BLESS=1 cargo test -p lagover-core --test obs_golden
//! cargo test -p lagover-core --test obs_golden   # recompiles the fixture in
//! ```

use lagover_core::{construct_observed, Algorithm, ConstructionConfig, OracleKind};
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

const PEERS: usize = 12;
const SEED: u64 = 11;

fn journal_json() -> String {
    let population = WorkloadSpec::new(TopologicalConstraint::Rand, PEERS)
        .generate(SEED)
        .expect("repairable");
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(400);
    let observed = construct_observed(&population, &config, SEED, 4_096, 5);
    assert!(
        observed.outcome.converged(),
        "the pinned run must converge so the journal is complete"
    );
    assert_eq!(observed.journal.dropped(), 0, "capacity covers the run");
    assert!(
        observed.journal.len() > 10,
        "the pinned run should produce a non-trivial journal"
    );
    lagover_jsonio::to_string_pretty(&observed.journal)
}

#[test]
fn journal_of_a_small_fixed_seed_run_matches_the_golden_file() {
    let actual = journal_json();
    if std::env::var_os("LAGOVER_BLESS").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/journal_small.json"
        );
        std::fs::write(path, &actual).expect("writable golden fixture");
        return;
    }
    let expected = include_str!("golden/journal_small.json");
    assert_eq!(
        actual, expected,
        "journal drifted from the golden fixture; if the change is \
         intentional, rerun with LAGOVER_BLESS=1 and commit the diff"
    );
}

#[test]
fn golden_journal_parses_back_to_the_recorded_events() {
    let journal: lagover_obs::Journal =
        lagover_jsonio::from_str(include_str!("golden/journal_small.json"))
            .expect("golden fixture parses");
    let live = journal_json();
    let reparsed: lagover_obs::Journal = lagover_jsonio::from_str(&live).expect("live parses");
    assert_eq!(journal.len(), reparsed.len());
    assert_eq!(
        journal.counts_by_kind(),
        reparsed.counts_by_kind(),
        "fixture and live run disagree on event composition"
    );
}
