//! Property-based tests for the core invariants.
//!
//! Strategy overview:
//!
//! * arbitrary populations are drawn as `(source_fanout, Vec<(f, l)>)`;
//! * arbitrary *op sequences* drive the overlay through
//!   attach/detach/remove operations, after which the full structural
//!   validator must pass;
//! * full construction runs must never violate fanout, create cycles,
//!   or (greedy) break the `l_parent <= l_child` invariant — regardless
//!   of workload, oracle, or seed.

use proptest::prelude::*;

use lagover_core::node::{Constraints, Member, PeerId, Population};
use lagover_core::overlay::Overlay;
use lagover_core::sufficiency::{check, exact_feasibility, validate_assignment};
use lagover_core::{
    construct, run_stabilization, Algorithm, ConstructionConfig, Engine, OracleKind,
};
use lagover_sim::{BernoulliChurn, CorruptionClass, CorruptionPlan, SimRng};

/// Strategy: a population of 1..=12 peers with fanout 0..=4 and latency
/// 1..=6, source fanout 1..=3.
fn population_strategy() -> impl Strategy<Value = Population> {
    (
        1u32..=3,
        prop::collection::vec((0u32..=4, 1u32..=6), 1..=12),
    )
        .prop_map(|(source_fanout, specs)| {
            Population::new(
                source_fanout,
                specs
                    .into_iter()
                    .map(|(f, l)| Constraints::new(f, l))
                    .collect(),
            )
        })
}

/// An abstract overlay mutation.
#[derive(Debug, Clone)]
enum Op {
    Attach { child: usize, parent: Option<usize> },
    Detach { peer: usize },
    Remove { peer: usize },
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, prop::option::weighted(0.8, 0..n))
            .prop_map(|(child, parent)| Op::Attach { child, parent }),
        (0..n).prop_map(|peer| Op::Detach { peer }),
        (0..n).prop_map(|peer| Op::Remove { peer }),
    ]
}

proptest! {
    /// Any sequence of overlay mutations leaves the structure valid:
    /// parent/child links consistent, fanouts respected, no cycles.
    #[test]
    fn overlay_survives_arbitrary_op_sequences(
        population in population_strategy(),
        ops in prop::collection::vec(op_strategy(12), 0..60),
    ) {
        let n = population.len();
        let mut overlay = Overlay::new(&population);
        for op in ops {
            match op {
                Op::Attach { child, parent } => {
                    if child < n {
                        let parent = match parent {
                            Some(p) if p < n => Member::Peer(PeerId::new(p as u32)),
                            _ => Member::Source,
                        };
                        // May legitimately fail; must never corrupt.
                        let _ = overlay.attach(PeerId::new(child as u32), parent);
                    }
                }
                Op::Detach { peer } => {
                    if peer < n {
                        let _ = overlay.detach(PeerId::new(peer as u32));
                    }
                }
                Op::Remove { peer } => {
                    if peer < n {
                        let _ = overlay.remove_peer(PeerId::new(peer as u32));
                    }
                }
            }
            prop_assert_eq!(overlay.validate(), Ok(()));
        }
    }

    /// Cache coherence: after any random sequence of attach/detach/
    /// remove (churn) mutations, the incrementally maintained `root`,
    /// `hops_to_root`, and `delay` caches equal a fresh chain-walk
    /// recomputation for every peer — checked after *every* mutation,
    /// not just at the end.
    #[test]
    fn cached_root_and_delay_match_chain_walk(
        population in population_strategy(),
        ops in prop::collection::vec(op_strategy(12), 0..60),
    ) {
        let n = population.len();
        let mut overlay = Overlay::new(&population);
        for op in ops {
            match op {
                Op::Attach { child, parent } => {
                    if child < n {
                        let parent = match parent {
                            Some(p) if p < n => Member::Peer(PeerId::new(p as u32)),
                            _ => Member::Source,
                        };
                        let _ = overlay.attach(PeerId::new(child as u32), parent);
                    }
                }
                Op::Detach { peer } => {
                    if peer < n {
                        let _ = overlay.detach(PeerId::new(peer as u32));
                    }
                }
                Op::Remove { peer } => {
                    if peer < n {
                        let _ = overlay.remove_peer(PeerId::new(peer as u32));
                    }
                }
            }
            for p in population.peer_ids() {
                prop_assert_eq!(overlay.root(p), overlay.walk_root(p));
                prop_assert_eq!(overlay.hops_to_root(p), overlay.walk_hops_to_root(p));
                prop_assert_eq!(overlay.delay(p), overlay.walk_delay(p));
            }
        }
    }

    /// Cache coherence under full engine dynamics: a construction run
    /// under churn (displacements, adoptions, maintenance detaches,
    /// departures) keeps the cached queries equal to chain walks.
    #[test]
    fn engine_churn_keeps_caches_coherent(
        population in population_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let mut engine = Engine::new(&population, &config, seed);
        let mut churn = BernoulliChurn::new(0.1, 0.3);
        for _ in 0..30 {
            engine.apply_churn(&mut churn);
            engine.step();
            for p in population.peer_ids() {
                prop_assert_eq!(engine.overlay().root(p), engine.overlay().walk_root(p));
                prop_assert_eq!(engine.overlay().delay(p), engine.overlay().walk_delay(p));
            }
        }
    }

    /// DelayAt is defined exactly for rooted peers, equals the hop
    /// count, and the speculative delay coincides with it when rooted.
    #[test]
    fn delay_definitions_are_consistent(
        population in population_strategy(),
        ops in prop::collection::vec(op_strategy(12), 0..40),
    ) {
        let n = population.len();
        let mut overlay = Overlay::new(&population);
        for op in ops {
            if let Op::Attach { child, parent } = op {
                if child < n {
                    let parent = match parent {
                        Some(p) if p < n => Member::Peer(PeerId::new(p as u32)),
                        _ => Member::Source,
                    };
                    let _ = overlay.attach(PeerId::new(child as u32), parent);
                }
            }
        }
        for p in population.peer_ids() {
            match overlay.delay(p) {
                Some(d) => {
                    prop_assert!(overlay.is_rooted(p));
                    prop_assert_eq!(d, overlay.hops_to_root(p));
                    prop_assert_eq!(overlay.speculative_delay(p), d);
                    prop_assert!(d >= 1);
                }
                None => {
                    prop_assert!(!overlay.is_rooted(p));
                    prop_assert_eq!(
                        overlay.speculative_delay(p),
                        overlay.hops_to_root(p) + 1
                    );
                }
            }
        }
    }

    /// The §3.3 lemma, empirically: sufficiency implies a feasible
    /// depth assignment exists.
    #[test]
    fn sufficiency_implies_feasibility(population in population_strategy()) {
        if check(&population).satisfied {
            let depths = exact_feasibility(&population);
            prop_assert!(depths.is_some(), "sufficient but infeasible: {population:?}");
            validate_assignment(&population, &depths.unwrap())
                .map_err(|e| TestCaseError::fail(e))?;
        }
    }

    /// Feasibility witnesses returned by the exact search always
    /// validate.
    #[test]
    fn exact_feasibility_witnesses_validate(population in population_strategy()) {
        if let Some(depths) = exact_feasibility(&population) {
            validate_assignment(&population, &depths)
                .map_err(|e| TestCaseError::fail(e))?;
        }
    }

    /// Full construction runs keep the overlay valid and, if they
    /// converge, satisfy every constraint; the greedy run additionally
    /// preserves `l_parent <= l_child` on every edge.
    #[test]
    fn construction_preserves_invariants(
        population in population_strategy(),
        algorithm_is_greedy in any::<bool>(),
        oracle_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let algorithm = if algorithm_is_greedy {
            Algorithm::Greedy
        } else {
            Algorithm::Hybrid
        };
        let oracle = OracleKind::ALL[oracle_idx];
        let config = ConstructionConfig::new(algorithm, oracle).with_max_rounds(300);
        let mut engine = Engine::new(&population, &config, seed);
        let converged = engine.run_to_convergence();
        prop_assert_eq!(engine.overlay().validate(), Ok(()));
        if converged.is_some() {
            for p in population.peer_ids() {
                let d = engine.overlay().delay(p);
                prop_assert!(
                    matches!(d, Some(d) if d <= population.latency(p)),
                    "converged but {p} unsatisfied"
                );
            }
        }
        if algorithm_is_greedy {
            for p in population.peer_ids() {
                if let Some(Member::Peer(q)) = engine.overlay().parent(p) {
                    prop_assert!(
                        population.latency(q) <= population.latency(p),
                        "greedy invariant broken on {q} -> {p}"
                    );
                }
            }
        }
    }

    /// Construction under churn never corrupts the overlay, and offline
    /// peers are always fully out of it.
    #[test]
    fn churn_preserves_structure(
        population in population_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(10_000);
        let mut engine = Engine::new(&population, &config, seed);
        let mut churn = BernoulliChurn::new(0.1, 0.3);
        for _ in 0..50 {
            engine.apply_churn(&mut churn);
            engine.step();
            prop_assert_eq!(engine.overlay().validate(), Ok(()));
            for p in population.peer_ids() {
                if !engine.is_online(p) {
                    prop_assert_eq!(engine.overlay().parent(p), None);
                    prop_assert!(engine.overlay().children(p).is_empty());
                }
            }
        }
    }

    /// The convergence predicate is exactly "every online peer rooted
    /// within its constraint".
    #[test]
    fn convergence_predicate_matches_definition(
        population in population_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::Random)
            .with_max_rounds(150);
        let outcome = construct(&population, &config, seed);
        if let Some(at) = outcome.converged_at {
            prop_assert!(at <= 150);
            prop_assert_eq!(outcome.final_satisfied_fraction, 1.0);
        }
        // The satisfied series never exceeds 1 and never goes negative.
        for (_, y) in outcome.satisfied_series.iter() {
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    /// Deterministic replay: the same (population, config, seed) gives
    /// the identical outcome.
    #[test]
    fn construction_is_deterministic(
        population in population_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(200);
        let a = construct(&population, &config, seed);
        let b = construct(&population, &config, seed);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasible-and-sufficient populations always converge under the
    /// hybrid algorithm with the recommended oracle — the engine's
    /// completeness on its intended domain.
    #[test]
    fn hybrid_converges_on_sufficient_populations(
        population in population_strategy(),
        seed in 0u64..100_000,
    ) {
        if check(&population).satisfied {
            let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
                .with_max_rounds(5_000);
            let outcome = construct(&population, &config, seed);
            prop_assert!(
                outcome.converged(),
                "hybrid failed on a sufficient population: {population:?}"
            );
        }
    }

    /// RNG determinism and stream independence: the engine's behaviour
    /// is a pure function of the seed.
    #[test]
    fn seeds_fully_determine_runs(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash-stop detection completes: after `detection_timeout + 1`
    /// further rounds every trace of an arbitrary crashed cohort is
    /// gone — no live peer's parent chain traverses a corpse, crashed
    /// peers hold no edges, and both the structural and the liveness
    /// validators pass.
    #[test]
    fn crash_detection_clears_every_stale_chain(
        population in population_strategy(),
        crash_mask in prop::collection::vec(any::<bool>(), 12..13),
        seed in 0u64..100_000,
    ) {
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let mut engine = Engine::new(&population, &config, seed);
        engine.run_to_convergence();
        for p in population.peer_ids() {
            if crash_mask.get(p.index()).copied().unwrap_or(false) {
                engine.inject_crash(p);
            }
        }
        for _ in 0..=config.detection_timeout {
            engine.step();
        }
        prop_assert_eq!(engine.stale_chain_count(), 0);
        let detected: Vec<bool> = population
            .peer_ids()
            .map(|p| engine.is_crashed(p))
            .collect();
        prop_assert_eq!(engine.overlay().validate(), Ok(()));
        prop_assert_eq!(engine.overlay().validate_liveness(&detected), Ok(()));
        for p in population.peer_ids() {
            if engine.is_crashed(p) {
                prop_assert_eq!(engine.overlay().parent(p), None);
                prop_assert!(engine.overlay().children(p).is_empty());
            }
        }
    }

    /// Cache coherence survives the fault path: crash injection,
    /// delayed detection, blackout backoff, and message loss never let
    /// the incrementally maintained `root`/`delay` caches drift from a
    /// fresh chain-walk recomputation.
    #[test]
    fn fault_dynamics_keep_caches_coherent(
        population in population_strategy(),
        crash_mask in prop::collection::vec(any::<bool>(), 12..13),
        seed in 0u64..100_000,
    ) {
        use lagover_sim::FaultPlan;
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(5_000);
        let mut engine = Engine::new(&population, &config, seed);
        engine.run_to_convergence();
        for p in population.peer_ids() {
            if crash_mask.get(p.index()).copied().unwrap_or(false) {
                engine.inject_crash(p);
            }
        }
        engine.set_faults(
            FaultPlan::none()
                .with_message_loss(0.2)
                .with_blackout(engine.round().get(), 5),
        );
        for _ in 0..20 {
            engine.step();
            for p in population.peer_ids() {
                prop_assert_eq!(engine.overlay().root(p), engine.overlay().walk_root(p));
                prop_assert_eq!(engine.overlay().delay(p), engine.overlay().walk_delay(p));
            }
        }
    }
}

/// Deterministic population of `n` peers derived from `seed`: mixed
/// fanout 0..=6 and latency 1..=10 so every oracle sees empty,
/// partial, and saturated candidate sets over a run.
fn sized_population(n: usize, seed: u64) -> Population {
    let mut rng = SimRng::seed_from(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    let source_fanout = 1 + rng.index(4) as u32;
    let peers = (0..n)
        .map(|_| Constraints::new(rng.index(7) as u32, 1 + rng.index(10) as u32))
        .collect();
    Population::new(source_fanout, peers)
}

/// Asserts two engines are on byte-identical trajectories: same RNG
/// draw count, same counters, and the same overlay down to children
/// order and online sets.
fn engines_agree(a: &Engine, b: &Engine, population: &Population) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rng_draws(), b.rng_draws(), "RNG streams diverged");
    prop_assert_eq!(a.counters(), b.counters());
    for p in population.peer_ids() {
        prop_assert_eq!(
            a.overlay().parent(p),
            b.overlay().parent(p),
            "parent of {}",
            p
        );
        prop_assert_eq!(a.overlay().delay(p), b.overlay().delay(p), "delay of {}", p);
        prop_assert_eq!(a.overlay().children(p), b.overlay().children(p));
        prop_assert_eq!(a.is_online(p), b.is_online(p));
    }
    prop_assert_eq!(a.overlay().source_children(), b.overlay().source_children());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The indexed oracle sampler (Fenwick / delay-bucket path) against
    /// the retained naive reference path: identical attach/detach
    /// trajectories, depths, and RNG draw counts at the sizes the scale
    /// scenarios care about, for every oracle kind.
    #[test]
    fn indexed_oracle_matches_reference_path(
        size_idx in 0usize..3,
        oracle_idx in 0usize..4,
        seed in 0u64..100_000,
    ) {
        let n = [16, 120, 1_000][size_idx];
        let population = sized_population(n, seed);
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::ALL[oracle_idx])
            .with_max_rounds(5_000);
        let mut indexed = Engine::new(&population, &config, seed);
        prop_assert!(indexed.oracle_indexing(), "indexing is the default");
        let mut reference = Engine::new(&population, &config, seed);
        reference.set_oracle_indexing(false);
        prop_assert!(!reference.oracle_indexing());
        let rounds = if n >= 1_000 { 25 } else { 60 };
        for _ in 0..rounds {
            indexed.step();
            reference.step();
            engines_agree(&indexed, &reference, &population)?;
        }
    }

    /// The same equivalence through the fault paths: churn departures
    /// and arrivals, plus a mid-run crash cohort, never let the index
    /// drift from the reference sampler.
    #[test]
    fn indexed_oracle_matches_reference_under_churn_and_crashes(
        oracle_idx in 0usize..4,
        seed in 0u64..100_000,
    ) {
        let population = sized_population(120, seed);
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::ALL[oracle_idx])
            .with_max_rounds(5_000);
        let mut indexed = Engine::new(&population, &config, seed);
        let mut reference = Engine::new(&population, &config, seed);
        reference.set_oracle_indexing(false);
        let mut churn_a = BernoulliChurn::new(0.05, 0.25);
        let mut churn_b = BernoulliChurn::new(0.05, 0.25);
        for round in 0..40 {
            indexed.apply_churn(&mut churn_a);
            reference.apply_churn(&mut churn_b);
            if round == 10 {
                for p in population.peer_ids().filter(|p| p.index() % 7 == 3) {
                    indexed.inject_crash(p);
                    reference.inject_crash(p);
                }
            }
            indexed.step();
            reference.step();
            engines_agree(&indexed, &reference, &population)?;
        }
    }
}

proptest! {
    /// Analysis profiles are consistent with the overlay they describe:
    /// depth counts + unrooted = population, slack classes partition the
    /// rooted peers, and per-level usage never exceeds capacity.
    #[test]
    fn analysis_profiles_are_consistent(
        population in population_strategy(),
        ops in prop::collection::vec(op_strategy(12), 0..50),
    ) {
        use lagover_core::analysis::{depth_profile, slack_profile, utilization_profile};
        let n = population.len();
        let mut overlay = Overlay::new(&population);
        for op in ops {
            if let Op::Attach { child, parent } = op {
                if child < n {
                    let parent = match parent {
                        Some(p) if p < n => Member::Peer(PeerId::new(p as u32)),
                        _ => Member::Source,
                    };
                    let _ = overlay.attach(PeerId::new(child as u32), parent);
                }
            }
        }
        let d = depth_profile(&overlay, &population);
        prop_assert_eq!(d.counts.iter().sum::<usize>() + d.unrooted, n);
        let s = slack_profile(&overlay, &population);
        prop_assert_eq!(s.violated + s.tight + s.slackful + d.unrooted, n);
        let u = utilization_profile(&overlay, &population);
        for (level, (&used, &cap)) in u.used.iter().zip(u.capacity.iter()).enumerate() {
            prop_assert!(used <= cap, "level {level}: {used} > {cap}");
        }
    }
}

/// A constructible population of `n` peers: the [`sized_population`]
/// shape (mixed fanout 0..=6, latency 1..=10) pushed through the same
/// minimal latency-relaxation repair the workload generators use —
/// while some level is overloaded per the §3.3 check, the first peer
/// at that level has its constraint relaxed by one time unit — so
/// stabilization runs always start from a convergeable overlay.
fn sufficient_population(n: usize, seed: u64) -> Population {
    let mut rng = SimRng::seed_from(seed ^ 0x5EED_C0DE);
    let source_fanout = 2 + rng.index(3) as u32;
    let mut peers: Vec<Constraints> = (0..n)
        .map(|_| Constraints::new(rng.index(7) as u32, 1 + rng.index(10) as u32))
        .collect();
    loop {
        let population = Population::new(source_fanout, peers.clone());
        let Some(level) = check(&population).first_violation else {
            return population;
        };
        let victim = peers
            .iter()
            .position(|c| c.latency == level)
            .expect("a violated level has at least one occupant");
        peers[victim].latency += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Self-stabilization: for *every* generated corruption — an
    /// arbitrary subset of the six corruption classes at arbitrary
    /// severity, injected into a converged overlay of 16, 120, or
    /// 1000 peers — the always-on local detect-and-repair rule returns
    /// the engine to a `validate()`-clean, fully converged,
    /// stale-chain-free state within a bounded round count.
    #[test]
    fn stabilization_recovers_from_arbitrary_corruption(
        size_idx in 0usize..3,
        class_mask in 1u32..64,
        severity in 0.05f64..0.5,
        seed in 0u64..100_000,
    ) {
        let n = [16, 120, 1_000][size_idx];
        let population = sufficient_population(n, seed);
        let mut plan = CorruptionPlan::new(seed ^ 0xBAD5_EED).with_severity(severity);
        for (i, &class) in CorruptionClass::ALL.iter().enumerate() {
            if class_mask & (1 << i) != 0 {
                plan = plan.with_class(class);
            }
        }
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(20_000);
        let horizon = 2_500;
        let outcome = run_stabilization(&population, &config, &plan, horizon, seed);
        prop_assert!(
            outcome.construction_converged_at.is_some(),
            "pre-corruption construction failed on a sufficient population"
        );
        prop_assert!(
            outcome.stabilized(),
            "no recovery within {} rounds (n {}, seed {}, classes {:?}, severity {}, \
             {} states corrupted, constructed at {:?})",
            horizon,
            n,
            seed,
            plan.classes(),
            severity,
            outcome.corrupted_states,
            outcome.construction_converged_at
        );
        if outcome.corrupted_states > 0 {
            prop_assert!(
                outcome.counters.inconsistencies_detected > 0,
                "corruption applied but never detected"
            );
        }
    }
}

/// Every corruption class in isolation, at every scale the scale
/// scenarios care about: injection visibly perturbs the overlay, the
/// structural classes defeat `Overlay::validate`, and the engine
/// re-converges to a clean state within the horizon.
#[test]
fn every_corruption_class_recovers_at_all_scales() {
    let structural = [
        CorruptionClass::ParentCycle,
        CorruptionClass::DanglingParent,
        CorruptionClass::OrphanGraft,
        CorruptionClass::FanoutOverflow,
    ];
    for &n in &[16usize, 120, 1_000] {
        let population = sufficient_population(n, 4242);
        let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
            .with_max_rounds(20_000);
        for class in CorruptionClass::ALL {
            let plan = CorruptionPlan::new(9).with_class(class).with_severity(0.35);
            let outcome = run_stabilization(&population, &config, &plan, 2_500, 7);
            assert!(
                outcome.construction_converged_at.is_some(),
                "n={n} {class}: construction failed"
            );
            assert!(
                outcome.corrupted_states > 0,
                "n={n} {class}: plan was a no-op"
            );
            if structural.contains(&class) {
                assert!(
                    !outcome.valid_after_injection,
                    "n={n} {class}: snapshot still validates after injection"
                );
            }
            assert!(
                outcome.stabilized(),
                "n={n} {class}: no recovery within 2500 rounds ({} states corrupted)",
                outcome.corrupted_states
            );
            assert!(
                outcome.counters.inconsistencies_detected > 0,
                "n={n} {class}: corruption never detected"
            );
        }
    }
}
