//! Engine edge cases: adversarial oracles, trace coherence, and
//! referral robustness.

use std::collections::HashMap;

use lagover_core::node::{Constraints, Member, PeerId, Population};
use lagover_core::oracle::{Oracle, OracleView};
use lagover_core::trace::TraceEvent;
use lagover_core::{Algorithm, ConstructionConfig, Engine, OracleKind};
use lagover_sim::{ChurnProcess, SimRng, Transitions};

fn population() -> Population {
    Population::new(
        2,
        vec![
            Constraints::new(2, 1),
            Constraints::new(1, 2),
            Constraints::new(0, 2),
            Constraints::new(0, 3),
        ],
    )
}

/// An oracle that always answers with a fixed peer — even if it is the
/// enquirer, offline, or out of range semantics-wise.
struct StubbornOracle(PeerId);

impl Oracle for StubbornOracle {
    fn sample(&mut self, _: PeerId, _: &OracleView<'_>, _: &mut SimRng) -> Option<PeerId> {
        Some(self.0)
    }

    fn name(&self) -> &'static str {
        "stubborn"
    }
}

/// An oracle that never answers.
struct SilentOracle;

impl Oracle for SilentOracle {
    fn sample(&mut self, _: PeerId, _: &OracleView<'_>, _: &mut SimRng) -> Option<PeerId> {
        None
    }

    fn name(&self) -> &'static str {
        "silent"
    }
}

#[test]
fn construction_survives_an_oracle_returning_the_enquirer() {
    // Peer 0's own id is returned to everyone, including peer 0: the
    // engine must treat self-answers as misses and still converge via
    // timeouts (the population is a feasible two-level tree).
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(2_000);
    let mut engine = Engine::with_oracle(
        &population(),
        &config,
        Box::new(StubbornOracle(PeerId::new(0))),
        1,
    );
    assert!(engine.run_to_convergence().is_some());
    // Peer 0's answers to everyone else were legitimate interactions;
    // its answers to itself were misses.
    assert!(engine.counters().oracle_misses > 0);
}

#[test]
fn silent_oracle_builds_flat_trees_via_timeouts() {
    // Everyone demands depth 1 and the source has room: timeout-driven
    // source contacts suffice, no oracle needed.
    let flat = Population::new(4, vec![Constraints::new(0, 1); 4]);
    let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
        .with_timeout_rounds(2)
        .with_max_rounds(200);
    let mut engine = Engine::with_oracle(&flat, &config, Box::new(SilentOracle), 2);
    assert!(engine.run_to_convergence().is_some());
    assert_eq!(
        engine.counters().oracle_misses,
        engine.counters().oracle_queries
    );
    assert!(engine.counters().source_contacts > 0);
}

#[test]
fn silent_oracle_cannot_build_depth() {
    // The layered population needs peers to find each other: with no
    // oracle the only depth-2 placements come from displacement
    // adoptions at the source, which cannot serve everyone. The engine
    // must stall gracefully (partial tree, no panic, no corruption) —
    // this documents *why* the oracle exists.
    let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay)
        .with_timeout_rounds(2)
        .with_max_rounds(500);
    let mut engine = Engine::with_oracle(&population(), &config, Box::new(SilentOracle), 2);
    assert!(engine.run_to_convergence().is_none());
    engine.overlay().validate().unwrap();
    // The source itself still fills up.
    assert_eq!(engine.overlay().source_children().len(), 2);
    assert!(engine.satisfied_fraction() >= 0.5);
}

#[test]
fn oracle_answers_pointing_at_offline_peers_are_misses() {
    struct KillPeer3;
    impl ChurnProcess for KillPeer3 {
        fn step(&mut self, online: &mut [bool], _rng: &mut SimRng) -> Transitions {
            if online[3] {
                online[3] = false;
                Transitions {
                    departures: 1,
                    arrivals: 0,
                }
            } else {
                Transitions::default()
            }
        }
    }
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(2_000);
    let mut engine = Engine::with_oracle(
        &population(),
        &config,
        Box::new(StubbornOracle(PeerId::new(3))),
        3,
    );
    engine.apply_churn(&mut KillPeer3);
    // Every oracle answer now names an offline peer: all misses, and the
    // remaining three peers still converge through timeouts.
    assert!(engine.run_to_convergence().is_some());
    assert!(engine.counters().oracle_misses > 0);
}

#[test]
fn trace_replay_reconstructs_the_final_overlay() {
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(5_000);
    let population =
        lagover_workload::WorkloadSpec::new(lagover_workload::TopologicalConstraint::Rand, 30)
            .generate(5)
            .unwrap();
    let mut engine = Engine::new(&population, &config, 5);
    engine.enable_trace(1_000_000);
    engine.run_to_convergence().expect("converges");

    // Replay every structural event over an empty parent map; the
    // result must equal the engine's final parent map. This proves the
    // trace is complete (no untraced mutation paths).
    let mut parents: HashMap<PeerId, Member> = HashMap::new();
    let log = engine.trace().expect("enabled");
    assert_eq!(log.dropped(), 0, "capacity must not truncate this test");
    for event in log.iter() {
        match *event {
            TraceEvent::Attach { child, parent, .. } => {
                let prev = parents.insert(child, parent);
                assert!(prev.is_none(), "attach over existing parent for {child}");
            }
            TraceEvent::Detach { child, parent, .. } => {
                let prev = parents.remove(&child);
                assert_eq!(prev, Some(parent), "detach mismatch for {child}");
            }
        }
    }
    for p in population.peer_ids() {
        assert_eq!(
            parents.get(&p).copied(),
            engine.overlay().parent(p),
            "replayed parent of {p} disagrees"
        );
    }
}

#[test]
fn trace_survives_churn_runs() {
    let population =
        lagover_workload::WorkloadSpec::new(lagover_workload::TopologicalConstraint::BiCorr, 40)
            .generate(9)
            .unwrap();
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(10_000);
    let mut engine = Engine::new(&population, &config, 9);
    engine.enable_trace(100_000);
    let mut churn = lagover_sim::BernoulliChurn::new(0.05, 0.3);
    for _ in 0..200 {
        engine.apply_churn(&mut churn);
        engine.step();
    }
    let log = engine.take_trace().expect("enabled");
    assert!(engine.trace().is_none(), "take_trace disables tracing");
    // Churn-caused detaches must appear.
    let churn_detaches = log
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Detach {
                    cause: lagover_core::DetachCause::Churn,
                    ..
                }
            )
        })
        .count();
    assert!(churn_detaches > 0, "no churn detaches traced");
}

#[test]
fn disabled_trace_costs_nothing_and_returns_none() {
    let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay);
    let mut engine = Engine::new(&population(), &config, 7);
    assert!(engine.trace().is_none());
    engine.run_to_convergence().expect("converges");
    assert!(engine.take_trace().is_none());
}

#[test]
fn async_with_churn_sustains_satisfaction() {
    use lagover_core::async_engine::FixedActionDuration;
    use lagover_core::run_async_with_churn;
    let population =
        lagover_workload::WorkloadSpec::new(lagover_workload::TopologicalConstraint::Rand, 40)
            .generate(21)
            .unwrap();
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(10_000);
    let mut churn = lagover_sim::BernoulliChurn::paper();
    let outcome = run_async_with_churn(
        &population,
        &config,
        FixedActionDuration(1.0),
        &mut churn,
        800.0,
        21,
    );
    assert!(outcome.actions > 1_000);
    assert!(
        outcome.steady_state_fraction > 0.7,
        "steady state {} too low",
        outcome.steady_state_fraction
    );
    assert!(outcome.first_converged_at.is_some());
}

#[test]
fn async_with_heterogeneous_durations_and_churn() {
    use lagover_core::run_async_with_churn;
    let population =
        lagover_workload::WorkloadSpec::new(lagover_workload::TopologicalConstraint::BiUnCorr, 30)
            .generate(4)
            .unwrap();
    let config =
        ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay).with_max_rounds(10_000);
    let mut churn = lagover_sim::BernoulliChurn::new(0.005, 0.2);
    let durations = |p: PeerId, rng: &mut SimRng| 1.0 + rng.f64() * (1.0 + p.index() as f64 % 3.0);
    let outcome = run_async_with_churn(&population, &config, durations, &mut churn, 1_500.0, 4);
    assert!(
        outcome.steady_state_fraction > 0.6,
        "steady state {}",
        outcome.steady_state_fraction
    );
}

#[test]
fn snapshot_restore_replays_bit_exactly() {
    let population =
        lagover_workload::WorkloadSpec::new(lagover_workload::TopologicalConstraint::BiCorr, 40)
            .generate(33)
            .unwrap();
    let config =
        ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay).with_max_rounds(10_000);
    let mut original = Engine::new(&population, &config, 33);
    let mut churn = lagover_sim::BernoulliChurn::new(0.02, 0.3);
    for _ in 0..25 {
        original.apply_churn(&mut churn);
        original.step();
    }
    // Checkpoint through JSON (prove the snapshot is persistable).
    let snapshot = original.snapshot();
    let json = snapshot.to_json_string();
    let restored_snapshot =
        lagover_core::EngineSnapshot::from_json_str(&json).expect("snapshot deserializes");
    assert_eq!(restored_snapshot.round(), original.round());
    let mut restored = Engine::restore(restored_snapshot);

    // The churn process is external state: give both the same fresh one.
    let mut churn_a = lagover_sim::BernoulliChurn::new(0.02, 0.3);
    let mut churn_b = lagover_sim::BernoulliChurn::new(0.02, 0.3);
    for _ in 0..25 {
        original.apply_churn(&mut churn_a);
        original.step();
        restored.apply_churn(&mut churn_b);
        restored.step();
    }
    assert_eq!(original.overlay(), restored.overlay(), "replay diverged");
    assert_eq!(original.counters(), restored.counters());
    assert_eq!(original.round(), restored.round());
}

#[test]
fn snapshot_preserves_overlay_view() {
    let config = ConstructionConfig::new(Algorithm::Greedy, OracleKind::RandomDelay);
    let mut engine = Engine::new(&population(), &config, 44);
    engine.run_to_convergence().expect("converges");
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.overlay(), engine.overlay());
}
