//! A simulated Chord ring with successor lists, finger tables,
//! iterative lookup, and incremental stabilization.
//!
//! The simulation keeps global membership in one structure (we are not
//! testing Chord's networking, only its *behaviour as a directory
//! substrate*), but routing is honest: every hop consults only the
//! current node's possibly-stale local pointers, dead pointers cost a
//! timeout, and lookups can fail while stabilization lags churn.

use std::collections::BTreeMap;

use lagover_sim::SimRng;

use crate::id::Key;

/// Number of successors each node tracks (Chord's `r`).
const SUCCESSOR_LIST_LEN: usize = 4;
/// Number of finger-table entries maintained (top bits of the key
/// space dominate routing; 32 fingers route 2^64 comfortably).
const FINGER_COUNT: u32 = 32;
/// Routing gives up after this many hops.
const MAX_HOPS: usize = 128;

/// Local routing state of one ring member.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeState {
    /// Immediate successors, nearest first. May contain dead keys until
    /// stabilization prunes them.
    successors: Vec<Key>,
    /// `fingers[i]` is this node's belief of `lookup(self + 2^(64-1-i))`
    /// for `i` in `0..FINGER_COUNT` — i.e. finger 0 is the farthest.
    fingers: Vec<Key>,
    /// Round-robin cursor over the finger table for incremental repair.
    next_finger_to_fix: u32,
}

/// Telemetry for a single lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupStats {
    /// Overlay hops taken (contacted nodes).
    pub hops: usize,
    /// Dead pointers encountered (each costs a timeout in a deployment).
    pub timeouts: usize,
}

/// A simulated Chord ring.
///
/// # Example
///
/// ```
/// use lagover_dht::{Key, Ring};
/// use lagover_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(2);
/// let ring = Ring::bootstrap(16, &mut rng);
/// let owner = ring.lookup(Key::new(42)).unwrap();
/// assert!(ring.contains(owner));
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    nodes: BTreeMap<u64, NodeState>,
}

impl Ring {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Ring {
            nodes: BTreeMap::new(),
        }
    }

    /// Creates a ring of `n` random nodes with *correct* initial state
    /// (as after full stabilization).
    pub fn bootstrap(n: usize, rng: &mut SimRng) -> Self {
        let mut ring = Ring::new();
        for _ in 0..n {
            let mut key = Key::random(rng);
            while ring.nodes.contains_key(&key.get()) {
                key = Key::random(rng);
            }
            ring.nodes.insert(
                key.get(),
                NodeState {
                    successors: Vec::new(),
                    fingers: Vec::new(),
                    next_finger_to_fix: 0,
                },
            );
        }
        let keys: Vec<Key> = ring.member_keys();
        for key in keys {
            ring.refresh_node_fully(key);
        }
        ring
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `key` is a current member.
    pub fn contains(&self, key: Key) -> bool {
        self.nodes.contains_key(&key.get())
    }

    /// All member keys in ring order.
    pub fn member_keys(&self) -> Vec<Key> {
        self.nodes.keys().map(|&k| Key::new(k)).collect()
    }

    /// Ground-truth successor of `key`: the first member at or clockwise
    /// after it. Used by tests and by joins (a joining node is assumed to
    /// know one live contact).
    pub fn true_successor(&self, key: Key) -> Option<Key> {
        self.nodes
            .range(key.get()..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(&k, _)| Key::new(k))
    }

    /// Whether member `node` is responsible for `key` (i.e. `node` is the
    /// first member at or after `key`).
    pub fn is_responsible(&self, node: Key, key: Key) -> bool {
        self.true_successor(key) == Some(node)
    }

    /// Joins a new node. Its own pointers are initialized by lookups
    /// through the existing ring; *other* nodes' pointers to it appear
    /// only through later [`Ring::stabilize_step`] calls, as in Chord.
    ///
    /// Returns `false` (no-op) if the key is already a member.
    pub fn join(&mut self, key: Key) -> bool {
        if self.nodes.contains_key(&key.get()) {
            return false;
        }
        self.nodes.insert(
            key.get(),
            NodeState {
                successors: Vec::new(),
                fingers: Vec::new(),
                next_finger_to_fix: 0,
            },
        );
        self.refresh_node_fully(key);
        true
    }

    /// Removes a node without notice (a crash). Pointers at other nodes
    /// dangle until stabilization prunes them.
    ///
    /// Returns `false` if the key was not a member.
    pub fn leave(&mut self, key: Key) -> bool {
        self.nodes.remove(&key.get()).is_some()
    }

    /// Iterative lookup of the node responsible for `key`, starting from
    /// a random live member, using only local (possibly stale) pointers.
    ///
    /// Returns `None` on an empty ring or if routing fails within
    /// the routing hop cap (128).
    pub fn lookup(&self, key: Key) -> Option<Key> {
        self.lookup_with_stats(key).map(|(k, _)| k)
    }

    /// [`Ring::lookup`] with hop/timeout telemetry, starting at the
    /// first member (deterministic; use [`Ring::lookup_from`] to choose).
    pub fn lookup_with_stats(&self, key: Key) -> Option<(Key, LookupStats)> {
        let start = self.nodes.keys().next().map(|&k| Key::new(k))?;
        self.lookup_from(start, key)
    }

    /// Iterative lookup starting from a specific member.
    pub fn lookup_from(&self, start: Key, key: Key) -> Option<(Key, LookupStats)> {
        let mut stats = LookupStats::default();
        let mut current = start;
        if !self.contains(current) {
            return None;
        }
        while stats.hops < MAX_HOPS {
            stats.hops += 1;
            let state = self.nodes.get(&current.get())?;
            // Am I done? key in (current, successor] means the first live
            // successor is responsible.
            let mut live_succ = None;
            for s in &state.successors {
                if self.contains(*s) {
                    live_succ = Some(*s);
                    break;
                } else {
                    stats.timeouts += 1;
                }
            }
            // Total successor-list death: routing is stuck.
            let succ = live_succ?;
            if key.in_half_open(current, succ) {
                return Some((succ, stats));
            }
            // Otherwise forward through the closest preceding live finger.
            let next = self.closest_preceding_live(current, key, &mut stats);
            if next == current {
                // No finger helps; fall through the successor.
                current = succ;
            } else {
                current = next;
            }
        }
        None
    }

    /// The closest live pointer (finger or successor) of `node` strictly
    /// between `node` and `key` on the ring; returns `node` if none.
    fn closest_preceding_live(&self, node: Key, key: Key, stats: &mut LookupStats) -> Key {
        let state = &self.nodes[&node.get()];
        // Fingers are stored farthest-first; scan for the farthest live
        // pointer that still precedes the key.
        for f in state.fingers.iter().chain(state.successors.iter()) {
            if f.in_open(node, key) {
                if self.contains(*f) {
                    return *f;
                }
                stats.timeouts += 1;
            }
        }
        node
    }

    /// Runs one incremental stabilization step at `node`: prune dead
    /// successors, re-extend the successor list from ground truth of the
    /// first live successor (models `notify`/successor-list gossip), and
    /// repair one finger (round-robin), as Chord's periodic tasks do.
    ///
    /// Returns `false` if `node` is not a member.
    pub fn stabilize_step(&mut self, node: Key) -> bool {
        if !self.nodes.contains_key(&node.get()) {
            return false;
        }
        // Rebuild successor list from current membership, starting just
        // past the node. (A real node learns this from its successor's
        // list; membership here is the oracle for that exchange.)
        let successors = self.successors_after(node, SUCCESSOR_LIST_LEN);
        // Repair one finger via a fresh lookup through the current state.
        let state = &self.nodes[&node.get()];
        let finger_idx = state.next_finger_to_fix;
        let bit = Key::BITS - 1 - finger_idx;
        let target = node.finger_target(bit);
        let repaired = self
            .lookup_from(node, target)
            .map(|(k, _)| k)
            .or_else(|| self.true_successor(target));
        let state = self.nodes.get_mut(&node.get()).expect("checked above");
        state.successors = successors;
        if let Some(f) = repaired {
            let idx = finger_idx as usize;
            if state.fingers.len() <= idx {
                state.fingers.resize(idx + 1, f);
            }
            state.fingers[idx] = f;
        }
        state.next_finger_to_fix = (finger_idx + 1) % FINGER_COUNT;
        true
    }

    /// Runs one stabilization step at every member, in ring order.
    pub fn stabilize_all(&mut self) {
        for key in self.member_keys() {
            self.stabilize_step(key);
        }
    }

    /// Runs stabilization at `count` random members.
    pub fn stabilize_random(&mut self, count: usize, rng: &mut SimRng) {
        let keys = self.member_keys();
        if keys.is_empty() {
            return;
        }
        for _ in 0..count {
            let k = keys[rng.index(keys.len())];
            self.stabilize_step(k);
        }
    }

    /// Ground-truth list of the `count` members clockwise after `node`.
    fn successors_after(&self, node: Key, count: usize) -> Vec<Key> {
        let mut out = Vec::with_capacity(count);
        let mut iter = self
            .nodes
            .range(node.get().wrapping_add(1)..)
            .chain(self.nodes.range(..=node.get()))
            .map(|(&k, _)| Key::new(k));
        for _ in 0..count.min(self.nodes.len().saturating_sub(1).max(1)) {
            match iter.next() {
                Some(k) if k != node => out.push(k),
                Some(_) | None => break,
            }
        }
        if out.is_empty() {
            out.push(node); // single-node ring: own successor
        }
        out
    }

    /// Fully (re)builds `node`'s successor list and finger table from
    /// ground truth — what a completed join plus full stabilization
    /// would produce.
    fn refresh_node_fully(&mut self, node: Key) {
        let successors = self.successors_after(node, SUCCESSOR_LIST_LEN);
        let mut fingers = Vec::with_capacity(FINGER_COUNT as usize);
        for i in 0..FINGER_COUNT {
            let bit = Key::BITS - 1 - i;
            let target = node.finger_target(bit);
            if let Some(s) = self.true_successor(target) {
                fingers.push(s);
            }
        }
        if let Some(state) = self.nodes.get_mut(&node.get()) {
            state.successors = successors;
            state.fingers = fingers;
        }
    }
}

impl Default for Ring {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_lookup_finds_true_successor() {
        let mut rng = SimRng::seed_from(1);
        let ring = Ring::bootstrap(64, &mut rng);
        for _ in 0..200 {
            let key = Key::random(&mut rng);
            let found = ring.lookup(key).expect("lookup succeeds");
            assert_eq!(Some(found), ring.true_successor(key));
        }
    }

    #[test]
    fn lookup_hop_count_is_logarithmic() {
        let mut rng = SimRng::seed_from(2);
        let ring = Ring::bootstrap(256, &mut rng);
        let mut max_hops = 0;
        for _ in 0..100 {
            let key = Key::random(&mut rng);
            let (_, stats) = ring.lookup_with_stats(key).unwrap();
            max_hops = max_hops.max(stats.hops);
        }
        // log2(256) = 8; allow slack for the iterative variant.
        assert!(max_hops <= 24, "max hops {max_hops}");
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let mut ring = Ring::new();
        ring.join(Key::new(7));
        assert_eq!(ring.lookup(Key::new(0)), Some(Key::new(7)));
        assert_eq!(ring.lookup(Key::new(u64::MAX)), Some(Key::new(7)));
    }

    #[test]
    fn join_is_routable_after_stabilization() {
        let mut rng = SimRng::seed_from(3);
        let mut ring = Ring::bootstrap(32, &mut rng);
        let newcomer = Key::new(0x8000_0000_0000_0001);
        assert!(ring.join(newcomer));
        assert!(!ring.join(newcomer), "duplicate join is a no-op");
        for _ in 0..8 {
            ring.stabilize_all();
        }
        let probe = Key::new(0x8000_0000_0000_0000);
        assert_eq!(ring.true_successor(probe), Some(newcomer));
        assert_eq!(ring.lookup(probe), Some(newcomer));
    }

    #[test]
    fn lookups_survive_crashes_after_stabilization() {
        let mut rng = SimRng::seed_from(4);
        let mut ring = Ring::bootstrap(64, &mut rng);
        let members = ring.member_keys();
        // Crash 10 random nodes.
        for i in 0..10 {
            ring.leave(members[i * 6]);
        }
        for _ in 0..FINGER_COUNT {
            ring.stabilize_all();
        }
        for _ in 0..100 {
            let key = Key::random(&mut rng);
            let found = ring.lookup(key).expect("post-churn lookup");
            assert_eq!(Some(found), ring.true_successor(key));
        }
    }

    #[test]
    fn lookups_degrade_but_often_survive_before_stabilization() {
        let mut rng = SimRng::seed_from(5);
        let mut ring = Ring::bootstrap(64, &mut rng);
        let members = ring.member_keys();
        for i in 0..8 {
            ring.leave(members[i * 8]);
        }
        // No stabilization: timeouts should appear, successor lists keep
        // most lookups alive.
        let mut successes = 0;
        let mut timeouts = 0;
        for _ in 0..100 {
            let key = Key::random(&mut rng);
            if let Some((found, stats)) = ring.lookup_with_stats(key) {
                timeouts += stats.timeouts;
                if Some(found) == ring.true_successor(key) {
                    successes += 1;
                }
            }
        }
        assert!(successes >= 80, "successes {successes}");
        assert!(timeouts > 0, "expected dead-pointer timeouts");
    }

    #[test]
    fn leave_unknown_key_is_false() {
        let mut ring = Ring::new();
        assert!(!ring.leave(Key::new(1)));
    }

    #[test]
    fn empty_ring_lookup_is_none() {
        let ring = Ring::new();
        assert_eq!(ring.lookup(Key::new(5)), None);
    }

    #[test]
    fn stabilize_on_nonmember_is_false() {
        let mut rng = SimRng::seed_from(6);
        let mut ring = Ring::bootstrap(4, &mut rng);
        assert!(!ring.stabilize_step(Key::new(12345)));
        ring.stabilize_random(10, &mut rng);
    }

    #[test]
    fn is_responsible_matches_true_successor() {
        let mut rng = SimRng::seed_from(7);
        let ring = Ring::bootstrap(16, &mut rng);
        let key = Key::random(&mut rng);
        let owner = ring.true_successor(key).unwrap();
        assert!(ring.is_responsible(owner, key));
    }
}
