//! A feed directory stored on the ring — the deployable stand-in for
//! Syndic8 / OpenDHT that the paper's informed Oracles assume.
//!
//! Consumers periodically *publish* a small metadata record (observed
//! delay, free capacity, latency constraint) under the feed's key; an
//! enquiring peer *queries* the directory with a predicate and receives a
//! uniformly random matching record. Records expire after a TTL and are
//! lost when the ring node storing them crashes, so answers can be stale
//! or incomplete — the realistic imperfection experiment E9 quantifies
//! against the in-memory reference oracles.

use std::collections::BTreeMap;

use lagover_sim::SimRng;

use crate::id::Key;
use crate::ring::Ring;

/// Metadata one consumer publishes about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryEntry {
    /// The consumer's identifier in the LagOver population.
    pub peer: usize,
    /// The consumer's actual observed delay, if its chain reaches the
    /// source (`None` while disconnected).
    pub delay: Option<u32>,
    /// Whether the consumer has unused fanout.
    pub free_capacity: bool,
    /// The consumer's latency constraint `l`.
    pub latency_constraint: u32,
    /// Publication timestamp (round).
    pub refreshed_at: u64,
}

/// Directory tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Number of replicas (the responsible node plus `replication - 1`
    /// of its successors) each record is written to.
    pub replication: usize,
    /// Rounds after which an un-refreshed record stops being served.
    pub entry_ttl: u64,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            replication: 2,
            entry_ttl: 8,
        }
    }
}

/// The ring-hosted directory service.
///
/// # Example
///
/// ```
/// use lagover_dht::{Directory, DirectoryConfig, DirectoryEntry, Key};
/// use lagover_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(3);
/// let mut dir = Directory::bootstrap(16, DirectoryConfig::default(), &mut rng);
/// let feed = Key::hash_str("planet-rust");
/// dir.publish(feed, DirectoryEntry {
///     peer: 4, delay: Some(2), free_capacity: true,
///     latency_constraint: 5, refreshed_at: 0,
/// });
/// let hit = dir.query(feed, 1, |e| e.free_capacity, &mut rng);
/// assert_eq!(hit.map(|e| e.peer), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    ring: Ring,
    config: DirectoryConfig,
    /// Records held by each ring node: `ring node -> (feed, peer) -> entry`.
    /// Ordered maps so every iteration (queries, repair, accounting) is
    /// deterministic without per-call-site sorting.
    store: BTreeMap<u64, BTreeMap<(u64, usize), DirectoryEntry>>,
}

impl Directory {
    /// Creates a directory over a freshly bootstrapped ring of
    /// `ring_size` nodes.
    pub fn bootstrap(ring_size: usize, config: DirectoryConfig, rng: &mut SimRng) -> Self {
        Directory {
            ring: Ring::bootstrap(ring_size, rng),
            config,
            store: BTreeMap::new(),
        }
    }

    /// Wraps an existing ring.
    pub fn over_ring(ring: Ring, config: DirectoryConfig) -> Self {
        Directory {
            ring,
            config,
            store: BTreeMap::new(),
        }
    }

    /// Read access to the underlying ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Crashes a ring node, losing the records it stored.
    pub fn node_crash(&mut self, node: Key) -> bool {
        self.store.remove(&node.get());
        self.ring.leave(node)
    }

    /// Joins a ring node.
    pub fn node_join(&mut self, node: Key) -> bool {
        self.ring.join(node)
    }

    /// Runs one stabilization step at every ring member.
    pub fn stabilize(&mut self) {
        self.ring.stabilize_all();
    }

    /// Publishes (or refreshes) `entry` under `feed`.
    ///
    /// The record is routed to the responsible node and replicated on its
    /// successors. Publication silently fails (as in a deployment) if
    /// routing fails; the next refresh retries.
    pub fn publish(&mut self, feed: Key, entry: DirectoryEntry) {
        let Some(primary) = self.ring.lookup(feed) else {
            return;
        };
        let mut targets = vec![primary];
        // Replicate on ground-truth successors of the primary; a real
        // implementation asks the primary for its successor list.
        let mut cursor = primary;
        while targets.len() < self.config.replication {
            match self
                .ring
                .true_successor(Key::new(cursor.get().wrapping_add(1)))
            {
                Some(next) if next != primary => {
                    targets.push(next);
                    cursor = next;
                }
                _ => break,
            }
        }
        for t in targets {
            self.store
                .entry(t.get())
                .or_default()
                .insert((feed.get(), entry.peer), entry);
        }
    }

    /// Removes the record for `peer` under `feed` from all replicas that
    /// still hold it (a graceful unsubscribe).
    pub fn retract(&mut self, feed: Key, peer: usize) {
        for records in self.store.values_mut() {
            records.remove(&(feed.get(), peer));
        }
    }

    /// Queries the directory: routes to the feed's responsible node and
    /// returns a uniformly random non-expired record matching `pred`.
    ///
    /// Returns `None` if routing fails or nothing matches — the paper's
    /// "the Oracle finds no suitable j, and the peer needs to wait and
    /// try again" case.
    pub fn query<F>(&self, feed: Key, now: u64, pred: F, rng: &mut SimRng) -> Option<DirectoryEntry>
    where
        F: Fn(&DirectoryEntry) -> bool,
    {
        let primary = self.ring.lookup(feed)?;
        let records = self.store.get(&primary.get())?;
        let matches: Vec<DirectoryEntry> = records
            .iter()
            .filter(|((f, _), e)| {
                *f == feed.get()
                    && now.saturating_sub(e.refreshed_at) <= self.config.entry_ttl
                    && pred(e)
            })
            .map(|(_, e)| *e)
            .collect();
        if matches.is_empty() {
            return None;
        }
        // Matches arrive in ascending (feed, peer) key order; pick
        // uniformly.
        Some(matches[rng.index(matches.len())])
    }

    /// Total records currently stored (including replicas).
    pub fn stored_records(&self) -> usize {
        self.store.values().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(peer: usize, delay: Option<u32>, free: bool, at: u64) -> DirectoryEntry {
        DirectoryEntry {
            peer,
            delay,
            free_capacity: free,
            latency_constraint: 5,
            refreshed_at: at,
        }
    }

    #[test]
    fn publish_then_query_round_trips() {
        let mut rng = SimRng::seed_from(10);
        let mut dir = Directory::bootstrap(32, DirectoryConfig::default(), &mut rng);
        let feed = Key::hash_str("feed");
        dir.publish(feed, entry(1, Some(3), true, 0));
        dir.publish(feed, entry(2, None, false, 0));
        let hit = dir.query(feed, 0, |e| e.free_capacity, &mut rng);
        assert_eq!(hit.map(|e| e.peer), Some(1));
    }

    #[test]
    fn expired_entries_are_not_served() {
        let mut rng = SimRng::seed_from(11);
        let config = DirectoryConfig {
            replication: 1,
            entry_ttl: 3,
        };
        let mut dir = Directory::bootstrap(8, config, &mut rng);
        let feed = Key::hash_str("feed");
        dir.publish(feed, entry(7, Some(1), true, 0));
        assert!(dir.query(feed, 3, |_| true, &mut rng).is_some());
        assert!(dir.query(feed, 4, |_| true, &mut rng).is_none());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut rng = SimRng::seed_from(12);
        let mut dir = Directory::bootstrap(8, DirectoryConfig::default(), &mut rng);
        let feed = Key::hash_str("feed");
        dir.publish(feed, entry(7, Some(1), true, 0));
        dir.publish(feed, entry(7, Some(2), true, 10));
        let hit = dir.query(feed, 12, |_| true, &mut rng).unwrap();
        assert_eq!(hit.delay, Some(2));
    }

    #[test]
    fn retract_removes_from_all_replicas() {
        let mut rng = SimRng::seed_from(13);
        let config = DirectoryConfig {
            replication: 3,
            entry_ttl: 100,
        };
        let mut dir = Directory::bootstrap(16, config, &mut rng);
        let feed = Key::hash_str("feed");
        dir.publish(feed, entry(5, None, true, 0));
        assert!(dir.stored_records() >= 2, "replication happened");
        dir.retract(feed, 5);
        assert_eq!(dir.stored_records(), 0);
        assert!(dir.query(feed, 0, |_| true, &mut rng).is_none());
    }

    #[test]
    fn primary_crash_loses_records_until_republish() {
        let mut rng = SimRng::seed_from(14);
        let config = DirectoryConfig {
            replication: 1,
            entry_ttl: 100,
        };
        let mut dir = Directory::bootstrap(16, config, &mut rng);
        let feed = Key::hash_str("feed");
        dir.publish(feed, entry(3, Some(1), true, 0));
        let primary = dir.ring().lookup(feed).unwrap();
        dir.node_crash(primary);
        for _ in 0..40 {
            dir.stabilize();
        }
        // Record was only on the crashed primary.
        assert!(dir.query(feed, 0, |_| true, &mut rng).is_none());
        // A republish lands on the new responsible node and is served.
        dir.publish(feed, entry(3, Some(1), true, 1));
        assert!(dir.query(feed, 1, |_| true, &mut rng).is_some());
    }

    #[test]
    fn replication_survives_primary_crash() {
        let mut rng = SimRng::seed_from(15);
        let config = DirectoryConfig {
            replication: 3,
            entry_ttl: 100,
        };
        let mut dir = Directory::bootstrap(32, config, &mut rng);
        let feed = Key::hash_str("feed");
        dir.publish(feed, entry(9, Some(2), false, 0));
        let primary = dir.ring().lookup(feed).unwrap();
        dir.node_crash(primary);
        for _ in 0..40 {
            dir.stabilize();
        }
        // The new responsible node is the old first replica, which holds
        // a copy.
        let hit = dir.query(feed, 0, |_| true, &mut rng);
        assert_eq!(hit.map(|e| e.peer), Some(9));
    }

    #[test]
    fn query_filters_by_predicate() {
        let mut rng = SimRng::seed_from(16);
        let mut dir = Directory::bootstrap(8, DirectoryConfig::default(), &mut rng);
        let feed = Key::hash_str("feed");
        for p in 0..10 {
            dir.publish(feed, entry(p, Some(p as u32), p % 2 == 0, 0));
        }
        for _ in 0..50 {
            let hit = dir
                .query(feed, 0, |e| e.delay < Some(5) && e.free_capacity, &mut rng)
                .unwrap();
            assert!(hit.peer.is_multiple_of(2) && hit.delay < Some(5));
        }
    }

    #[test]
    fn feeds_are_isolated() {
        let mut rng = SimRng::seed_from(17);
        let mut dir = Directory::bootstrap(8, DirectoryConfig::default(), &mut rng);
        dir.publish(Key::hash_str("a"), entry(1, None, true, 0));
        assert!(dir
            .query(Key::hash_str("b"), 0, |_| true, &mut rng)
            .is_none());
    }
}

impl Directory {
    /// Re-replicates stored records onto the *current* responsible node
    /// and its successors — the repair a deployment runs after ring
    /// churn so crashes do not slowly erode the replication factor.
    ///
    /// Records whose every replica crashed are gone (only a publisher
    /// refresh can restore them); records held by surviving replicas
    /// are copied to the current replica set. Returns the number of
    /// record copies written.
    pub fn repair_replication(&mut self) -> usize {
        // Snapshot all surviving records (newest refresh wins per key).
        let mut newest: BTreeMap<(u64, usize), DirectoryEntry> = BTreeMap::new();
        for records in self.store.values() {
            for (&key, &entry) in records {
                let keep = newest
                    .get(&key)
                    .map(|e| entry.refreshed_at > e.refreshed_at)
                    .unwrap_or(true);
                if keep {
                    newest.insert(key, entry);
                }
            }
        }
        let mut written = 0usize;
        for ((feed, _), entry) in newest {
            let before = self.stored_records();
            self.publish(Key::new(feed), entry);
            written += self.stored_records().saturating_sub(before);
        }
        written
    }
}

#[cfg(test)]
mod repair_tests {
    use super::*;

    #[test]
    fn repair_restores_replication_after_crashes() {
        let mut rng = SimRng::seed_from(31);
        let config = DirectoryConfig {
            replication: 3,
            entry_ttl: 1_000,
        };
        let mut dir = Directory::bootstrap(32, config, &mut rng);
        let feed = Key::hash_str("repair-me");
        dir.publish(
            feed,
            DirectoryEntry {
                peer: 7,
                delay: Some(2),
                free_capacity: true,
                latency_constraint: 4,
                refreshed_at: 0,
            },
        );
        assert_eq!(dir.stored_records(), 3);

        // Crash the primary; one replica is gone for good.
        let primary = dir.ring().lookup(feed).unwrap();
        dir.node_crash(primary);
        for _ in 0..40 {
            dir.stabilize();
        }
        assert!(dir.stored_records() < 3);

        let written = dir.repair_replication();
        assert!(written > 0, "repair wrote nothing");
        assert_eq!(dir.stored_records(), 3, "replication factor not restored");
        // And the record is still served.
        assert_eq!(
            dir.query(feed, 0, |_| true, &mut rng).map(|e| e.peer),
            Some(7)
        );
    }

    #[test]
    fn repair_keeps_the_freshest_version() {
        let mut rng = SimRng::seed_from(32);
        let config = DirectoryConfig {
            replication: 2,
            entry_ttl: 1_000,
        };
        let mut dir = Directory::bootstrap(16, config, &mut rng);
        let feed = Key::hash_str("versions");
        let entry = |at: u64, delay: u32| DirectoryEntry {
            peer: 3,
            delay: Some(delay),
            free_capacity: false,
            latency_constraint: 9,
            refreshed_at: at,
        };
        dir.publish(feed, entry(1, 5));
        dir.publish(feed, entry(8, 2));
        dir.repair_replication();
        let served = dir.query(feed, 10, |_| true, &mut rng).unwrap();
        assert_eq!(served.refreshed_at, 8);
        assert_eq!(served.delay, Some(2));
    }

    #[test]
    fn repair_on_empty_directory_is_a_noop() {
        let mut rng = SimRng::seed_from(33);
        let mut dir = Directory::bootstrap(8, DirectoryConfig::default(), &mut rng);
        assert_eq!(dir.repair_replication(), 0);
    }
}
