//! Ring identifiers and wrap-around interval arithmetic.

use std::fmt;

use lagover_sim::SimRng;
use rand::RngCore;

/// A 64-bit identifier on the Chord ring.
///
/// # Example
///
/// ```
/// use lagover_dht::id::Key;
/// let a = Key::new(10);
/// let b = Key::new(20);
/// assert!(Key::new(15).in_half_open(a, b));
/// assert!(!Key::new(25).in_half_open(a, b));
/// // Intervals wrap around the ring.
/// assert!(Key::new(5).in_half_open(b, a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(u64);

impl Key {
    /// Number of bits in the identifier space.
    pub const BITS: u32 = 64;

    /// Creates a key from a raw value.
    pub fn new(value: u64) -> Self {
        Key(value)
    }

    /// Draws a uniformly random key.
    pub fn random(rng: &mut SimRng) -> Self {
        Key(rng.next_u64())
    }

    /// Hashes a string into the key space (FNV-1a; adequate and
    /// dependency-free for a simulated ring).
    pub fn hash_str(s: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Key(h)
    }

    /// The raw identifier value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Whether `self` lies in the half-open wrap-around interval
    /// `(from, to]`. When `from == to` the interval covers the whole
    /// ring (Chord's single-node convention).
    pub fn in_half_open(self, from: Key, to: Key) -> bool {
        if from == to {
            return true;
        }
        if from < to {
            from < self && self <= to
        } else {
            self > from || self <= to
        }
    }

    /// Whether `self` lies strictly between `from` and `to` on the ring.
    pub fn in_open(self, from: Key, to: Key) -> bool {
        if from == to {
            return self != from;
        }
        if from < to {
            from < self && self < to
        } else {
            self > from || self < to
        }
    }

    /// The key exactly `2^i` past `self` on the ring (finger targets).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn finger_target(self, i: u32) -> Key {
        assert!(i < Self::BITS, "finger index out of range");
        Key(self.0.wrapping_add(1u64 << i))
    }

    /// Clockwise distance from `self` to `other`.
    pub fn distance_to(self, other: Key) -> u64 {
        other.0.wrapping_sub(self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_no_wrap() {
        let a = Key::new(100);
        let b = Key::new(200);
        assert!(Key::new(150).in_half_open(a, b));
        assert!(Key::new(200).in_half_open(a, b));
        assert!(!Key::new(100).in_half_open(a, b));
        assert!(!Key::new(250).in_half_open(a, b));
    }

    #[test]
    fn half_open_wraps() {
        let a = Key::new(u64::MAX - 10);
        let b = Key::new(10);
        assert!(Key::new(u64::MAX).in_half_open(a, b));
        assert!(Key::new(5).in_half_open(a, b));
        assert!(Key::new(10).in_half_open(a, b));
        assert!(!Key::new(u64::MAX - 10).in_half_open(a, b));
        assert!(!Key::new(500).in_half_open(a, b));
    }

    #[test]
    fn degenerate_interval_covers_ring() {
        let a = Key::new(42);
        assert!(Key::new(0).in_half_open(a, a));
        assert!(Key::new(42).in_half_open(a, a));
    }

    #[test]
    fn open_interval_excludes_endpoints() {
        let a = Key::new(10);
        let b = Key::new(20);
        assert!(!Key::new(10).in_open(a, b));
        assert!(!Key::new(20).in_open(a, b));
        assert!(Key::new(15).in_open(a, b));
    }

    #[test]
    fn finger_targets_wrap() {
        let k = Key::new(u64::MAX);
        assert_eq!(k.finger_target(0), Key::new(0));
        assert_eq!(Key::new(0).finger_target(63).get(), 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn finger_index_bounds_checked() {
        Key::new(0).finger_target(64);
    }

    #[test]
    fn distance_is_clockwise() {
        assert_eq!(Key::new(10).distance_to(Key::new(15)), 5);
        assert_eq!(Key::new(15).distance_to(Key::new(10)), u64::MAX - 4);
    }

    #[test]
    fn hash_str_is_stable_and_spread() {
        let a = Key::hash_str("feed-a");
        let b = Key::hash_str("feed-b");
        assert_eq!(a, Key::hash_str("feed-a"));
        assert_ne!(a, b);
    }

    #[test]
    fn random_keys_differ() {
        let mut rng = SimRng::seed_from(6);
        assert_ne!(Key::random(&mut rng), Key::random(&mut rng));
    }
}
