#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # lagover-dht
//!
//! Chord-style distributed-hash-table substrate realizing the
//! directory-service Oracles.
//!
//! The paper (§2.1.4) proposes that the informed Oracles
//! (*Random-Capacity*, *Random-Delay-Capacity*, *Random-Delay*) be
//! realized by a directory service — "a centralized authority like
//! Syndic8 … but can also be realized if the nodes organize as a
//! distributed hash table", concretely naming OpenDHT as the open
//! service to use. Neither Syndic8 nor OpenDHT exists anymore, so this
//! crate builds the substitution (DESIGN.md §3): a simulated Chord ring
//! ([`ring::Ring`]) with successor lists, finger tables, iterative
//! lookup, and periodic stabilization, plus a feed [`directory`] stored
//! on the ring. Directory entries are *refreshed* by their owners and
//! therefore go stale under churn — exactly the imperfection a deployed
//! oracle would exhibit, which experiment E9 measures.
//!
//! # Example
//!
//! ```
//! use lagover_dht::{Key, Ring};
//! use lagover_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(5);
//! let ring = Ring::bootstrap(32, &mut rng);
//! let key = Key::hash_str("feeds/boston-globe");
//! let owner = ring.lookup(key).expect("non-empty ring");
//! assert!(ring.is_responsible(owner, key));
//! ```

pub mod directory;
pub mod id;
pub mod ring;

pub use directory::{Directory, DirectoryConfig, DirectoryEntry};
pub use id::Key;
pub use ring::{LookupStats, Ring};
