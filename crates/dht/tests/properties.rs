//! Property-based tests for the Chord substrate.

use proptest::prelude::*;

use lagover_dht::{Directory, DirectoryConfig, DirectoryEntry, Key, Ring};
use lagover_sim::SimRng;

proptest! {
    /// Interval membership on the ring: for distinct a, b every key is
    /// in exactly one of (a, b] and (b, a].
    #[test]
    fn half_open_intervals_partition_the_ring(a in any::<u64>(), b in any::<u64>(), x in any::<u64>()) {
        prop_assume!(a != b);
        let (a, b, x) = (Key::new(a), Key::new(b), Key::new(x));
        let in_ab = x.in_half_open(a, b);
        let in_ba = x.in_half_open(b, a);
        prop_assert!(in_ab != in_ba, "{x} must be in exactly one arc");
    }

    /// The open interval is contained in the half-open one.
    #[test]
    fn open_interval_is_contained(a in any::<u64>(), b in any::<u64>(), x in any::<u64>()) {
        let (a, b, x) = (Key::new(a), Key::new(b), Key::new(x));
        if x.in_open(a, b) {
            prop_assert!(x.in_half_open(a, b) || x == b);
        }
    }

    /// Clockwise distances around the full circle sum to 0 (mod 2^64).
    #[test]
    fn distances_compose(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (Key::new(a), Key::new(b));
        let ab = a.distance_to(b);
        let ba = b.distance_to(a);
        prop_assert_eq!(ab.wrapping_add(ba), 0);
    }

    /// On a freshly bootstrapped ring, routing always agrees with
    /// ground truth.
    #[test]
    fn bootstrap_lookup_agrees_with_truth(
        seed in any::<u64>(),
        n in 1usize..80,
        probes in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let ring = Ring::bootstrap(n, &mut rng);
        for probe in probes {
            let key = Key::new(probe);
            prop_assert_eq!(ring.lookup(key), ring.true_successor(key));
        }
    }

    /// After enough stabilization following arbitrary crashes, routing
    /// self-heals (as long as at least one node survives).
    #[test]
    fn stabilization_heals_routing(
        seed in any::<u64>(),
        n in 8usize..48,
        crash_fraction in 0.0f64..0.45,
        probe in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut ring = Ring::bootstrap(n, &mut rng);
        let members = ring.member_keys();
        let crashes = ((n as f64) * crash_fraction) as usize;
        for key in members.into_iter().take(crashes) {
            ring.leave(key);
        }
        for _ in 0..40 {
            ring.stabilize_all();
        }
        let key = Key::new(probe);
        prop_assert_eq!(ring.lookup(key), ring.true_successor(key));
    }

    /// Directory round trip: a published record is served to a matching
    /// query while fresh, and never after its TTL.
    #[test]
    fn directory_ttl_semantics(
        seed in any::<u64>(),
        ttl in 1u64..20,
        age in 0u64..40,
        peer in 0usize..1000,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let config = DirectoryConfig { replication: 2, entry_ttl: ttl };
        let mut dir = Directory::bootstrap(16, config, &mut rng);
        let feed = Key::hash_str("prop-feed");
        dir.publish(feed, DirectoryEntry {
            peer,
            delay: Some(1),
            free_capacity: true,
            latency_constraint: 3,
            refreshed_at: 0,
        });
        let hit = dir.query(feed, age, |_| true, &mut rng);
        if age <= ttl {
            prop_assert_eq!(hit.map(|e| e.peer), Some(peer));
        } else {
            prop_assert_eq!(hit, None);
        }
    }

    /// Joins never make routing return a non-member.
    #[test]
    fn lookup_returns_members_across_joins(
        seed in any::<u64>(),
        joins in prop::collection::vec(any::<u64>(), 1..20),
        probe in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut ring = Ring::bootstrap(8, &mut rng);
        for j in joins {
            ring.join(Key::new(j));
            ring.stabilize_all();
            if let Some(found) = ring.lookup(Key::new(probe)) {
                prop_assert!(ring.contains(found));
            }
        }
    }
}
