//! Random membership graphs for the unstructured overlay.

use lagover_sim::SimRng;

/// An undirected membership graph over peers `0..n`.
///
/// Construction guarantees connectivity: a uniformly random spanning
/// backbone (random-permutation tree) is laid down first, then extra
/// random edges are added until the average degree target is met. The
/// result approximates an Erdős–Rényi graph conditioned on connectivity —
/// the standard model for gossip-membership overlays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipGraph {
    adjacency: Vec<Vec<usize>>,
}

impl MembershipGraph {
    /// Builds a connected random graph over `n` peers with roughly
    /// `avg_degree` average degree.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `avg_degree < 1`.
    pub fn random_connected(n: usize, avg_degree: usize, rng: &mut SimRng) -> Self {
        assert!(n >= 2, "need at least two peers");
        assert!(avg_degree >= 1, "need positive average degree");
        let mut g = MembershipGraph {
            adjacency: vec![Vec::new(); n],
        };
        // Random spanning tree: attach each node (in random order) to a
        // uniformly random predecessor.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for i in 1..n {
            let parent = order[rng.index(i)];
            g.add_edge(order[i], parent);
        }
        // Top up with random edges to hit the degree target. The target
        // edge count is n * avg_degree / 2; cap attempts to avoid an
        // unbounded loop on dense requests.
        let target_edges = n * avg_degree / 2;
        let mut attempts = 0;
        while g.edge_count() < target_edges && attempts < 20 * target_edges {
            attempts += 1;
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b && !g.adjacency[a].contains(&b) {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Builds a graph from an explicit edge list (used in tests).
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = MembershipGraph {
            adjacency: vec![Vec::new(); n],
        };
        for &(a, b) in edges {
            assert!(a != b, "self-loop");
            assert!(a < n && b < n, "endpoint out of range");
            assert!(!g.adjacency[a].contains(&b), "duplicate edge");
            g.add_edge(a, b);
        }
        g
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no peers.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Neighbors of `peer`.
    pub fn neighbors(&self, peer: usize) -> &[usize] {
        &self.adjacency[peer]
    }

    /// Degree of `peer`.
    pub fn degree(&self, peer: usize) -> usize {
        self.adjacency[peer].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether every peer can reach every other peer.
    pub fn is_connected(&self) -> bool {
        if self.adjacency.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adjacency.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &self.adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.adjacency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_connected() {
        let mut rng = SimRng::seed_from(1);
        for n in [2, 3, 10, 100, 500] {
            let g = MembershipGraph::random_connected(n, 4, &mut rng);
            assert!(g.is_connected(), "n={n} not connected");
            assert_eq!(g.len(), n);
        }
    }

    #[test]
    fn average_degree_near_target() {
        let mut rng = SimRng::seed_from(2);
        let n = 400;
        let g = MembershipGraph::random_connected(n, 6, &mut rng);
        let avg = 2.0 * g.edge_count() as f64 / n as f64;
        assert!((5.0..=7.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mut rng = SimRng::seed_from(3);
        let g = MembershipGraph::random_connected(50, 4, &mut rng);
        for v in 0..g.len() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "edge {v}-{w} not symmetric");
            }
        }
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = SimRng::seed_from(4);
        let g = MembershipGraph::random_connected(100, 5, &mut rng);
        for v in 0..g.len() {
            let mut ns = g.neighbors(v).to_vec();
            assert!(!ns.contains(&v), "self loop at {v}");
            let before = ns.len();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), before, "duplicate edge at {v}");
        }
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = MembershipGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.degree(1), 2);
        assert!(g.is_connected());
        let g2 = MembershipGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g2.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_edges_rejects_self_loop() {
        MembershipGraph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn random_graph_needs_two_peers() {
        MembershipGraph::random_connected(1, 2, &mut SimRng::seed_from(0));
    }
}
