#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # lagover-gossip
//!
//! Unstructured-overlay substrate realizing Oracle *Random*.
//!
//! The paper (§2.1.4) suggests that Oracle *Random* — "a random contact
//! which is interested in the same feed" with *no* global information —
//! can be realized with *random walkers on an unstructured network*.
//! This crate builds that substrate: a connected random membership graph
//! over the feed's consumers ([`graph::MembershipGraph`]) and two
//! random-walk samplers ([`walk`]):
//!
//! * a plain simple random walk, whose stationary distribution is biased
//!   towards high-degree peers, and
//! * a Metropolis–Hastings corrected walk, whose stationary distribution
//!   is uniform — the property Oracle *Random* actually needs.
//!
//! The experiment `realizations` (DESIGN.md E9) compares LagOver
//! construction using the reference in-memory oracle against this
//! realization.
//!
//! # Example
//!
//! ```
//! use lagover_gossip::{MembershipGraph, MhWalkSampler, PeerSampler};
//! use lagover_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(11);
//! let graph = MembershipGraph::random_connected(30, 4, &mut rng);
//! let mut sampler = MhWalkSampler::new(graph, 20);
//! let peer = sampler.sample_peer(0, &mut rng).unwrap();
//! assert_ne!(peer, 0);
//! ```

pub mod graph;
pub mod walk;

pub use graph::MembershipGraph;
pub use walk::{MhWalkSampler, PeerSampler, SimpleWalkSampler};
