//! Random-walk peer sampling.
//!
//! Oracle *Random* needs (approximately) uniform samples of the consumer
//! population without any directory. A simple random walk converges to a
//! degree-proportional distribution; the Metropolis–Hastings walk
//! corrects the transition probabilities so the stationary distribution
//! is uniform regardless of the degree sequence.

use lagover_sim::SimRng;

use crate::graph::MembershipGraph;

/// Anything that can produce a random peer for an enquiring peer.
pub trait PeerSampler {
    /// Samples a peer on behalf of `enquirer`; never returns the
    /// enquirer itself. Returns `None` only if no other peer is
    /// reachable.
    fn sample_peer(&mut self, enquirer: usize, rng: &mut SimRng) -> Option<usize>;
}

/// Simple random walk of fixed length (degree-biased stationary
/// distribution; kept as the baseline the MH walk is compared against).
#[derive(Debug, Clone)]
pub struct SimpleWalkSampler {
    graph: MembershipGraph,
    walk_length: usize,
}

impl SimpleWalkSampler {
    /// Creates a sampler walking `walk_length` hops per sample.
    ///
    /// # Panics
    ///
    /// Panics if `walk_length == 0`.
    pub fn new(graph: MembershipGraph, walk_length: usize) -> Self {
        assert!(walk_length > 0, "walk length must be positive");
        SimpleWalkSampler { graph, walk_length }
    }

    /// The membership graph being walked.
    pub fn graph(&self) -> &MembershipGraph {
        &self.graph
    }
}

impl PeerSampler for SimpleWalkSampler {
    fn sample_peer(&mut self, enquirer: usize, rng: &mut SimRng) -> Option<usize> {
        let mut current = enquirer;
        for _ in 0..self.walk_length {
            let ns = self.graph.neighbors(current);
            if ns.is_empty() {
                return None;
            }
            current = ns[rng.index(ns.len())];
        }
        if current == enquirer {
            // One bounce-off step; the walk ending at the enquirer would
            // waste the round otherwise.
            let ns = self.graph.neighbors(current);
            if ns.is_empty() {
                return None;
            }
            current = ns[rng.index(ns.len())];
        }
        (current != enquirer).then_some(current)
    }
}

/// Metropolis–Hastings random walk with uniform stationary distribution.
///
/// At peer `u`, a neighbor `v` is proposed uniformly; the move is
/// accepted with probability `min(1, deg(u) / deg(v))`, otherwise the
/// walk stays at `u`. This is the textbook degree correction and is what
/// a deployed Oracle *Random* realization would run.
#[derive(Debug, Clone)]
pub struct MhWalkSampler {
    graph: MembershipGraph,
    walk_length: usize,
}

impl MhWalkSampler {
    /// Creates a sampler walking `walk_length` (proposal) steps.
    ///
    /// # Panics
    ///
    /// Panics if `walk_length == 0`.
    pub fn new(graph: MembershipGraph, walk_length: usize) -> Self {
        assert!(walk_length > 0, "walk length must be positive");
        MhWalkSampler { graph, walk_length }
    }

    /// The membership graph being walked.
    pub fn graph(&self) -> &MembershipGraph {
        &self.graph
    }
}

impl PeerSampler for MhWalkSampler {
    fn sample_peer(&mut self, enquirer: usize, rng: &mut SimRng) -> Option<usize> {
        let mut current = enquirer;
        let mut moved = false;
        let mut steps = self.walk_length;
        // Allow a few extra steps so the sample is not the enquirer;
        // bounded to keep the walk O(walk_length).
        let max_steps = self.walk_length + 8;
        let mut taken = 0;
        while taken < max_steps && (steps > 0 || current == enquirer) {
            taken += 1;
            steps = steps.saturating_sub(1);
            let ns = self.graph.neighbors(current);
            if ns.is_empty() {
                return None;
            }
            let proposal = ns[rng.index(ns.len())];
            let accept = self.graph.degree(current) as f64 / self.graph.degree(proposal) as f64;
            if rng.chance(accept.min(1.0)) {
                current = proposal;
                moved = true;
            }
        }
        (moved && current != enquirer).then_some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chi-square-style uniformity check: every peer should be sampled
    /// with frequency within a factor-of-two band of uniform.
    fn uniformity_band(counts: &[usize], total: usize) -> (f64, f64) {
        let uniform = total as f64 / counts.len() as f64;
        let min = counts.iter().copied().min().unwrap() as f64 / uniform;
        let max = counts.iter().copied().max().unwrap() as f64 / uniform;
        (min, max)
    }

    #[test]
    fn mh_walk_is_close_to_uniform_on_irregular_graph() {
        let mut rng = SimRng::seed_from(42);
        // Star-plus-ring: node 0 has a very high degree.
        let n = 40;
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        for i in 1..n {
            let j = if i + 1 < n { i + 1 } else { 1 };
            if i != j {
                edges.push((i, j));
            }
        }
        let graph = MembershipGraph::from_edges(n, &edges);
        let mut sampler = MhWalkSampler::new(graph, 60);
        let mut counts = vec![0usize; n];
        let total = 40_000;
        for _ in 0..total {
            let s = sampler.sample_peer(5, &mut rng).unwrap();
            counts[s] += 1;
        }
        counts[5] = total / n; // the enquirer is excluded by design
        let (lo, hi) = uniformity_band(&counts, total);
        assert!(lo > 0.4, "most-undersampled ratio {lo}");
        assert!(hi < 2.5, "most-oversampled ratio {hi}");
    }

    #[test]
    fn simple_walk_is_degree_biased_on_star() {
        let mut rng = SimRng::seed_from(43);
        let n = 20;
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        for i in 1..n - 1 {
            edges.push((i, i + 1));
        }
        let graph = MembershipGraph::from_edges(n, &edges);
        let mut sampler = SimpleWalkSampler::new(graph, 15);
        let mut hub_hits = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if sampler.sample_peer(7, &mut rng) == Some(0) {
                hub_hits += 1;
            }
        }
        // Uniform would give 1/19 ≈ 5.3%; the hub should be visibly
        // oversampled by the uncorrected walk.
        let frac = hub_hits as f64 / total as f64;
        assert!(frac > 0.10, "hub fraction {frac} not degree-biased");
    }

    #[test]
    fn samplers_never_return_the_enquirer() {
        let mut rng = SimRng::seed_from(44);
        let graph = MembershipGraph::random_connected(30, 4, &mut rng);
        let mut simple = SimpleWalkSampler::new(graph.clone(), 5);
        let mut mh = MhWalkSampler::new(graph, 5);
        for _ in 0..2000 {
            if let Some(s) = simple.sample_peer(3, &mut rng) {
                assert_ne!(s, 3);
            }
            if let Some(s) = mh.sample_peer(3, &mut rng) {
                assert_ne!(s, 3);
            }
        }
    }

    #[test]
    fn walk_on_two_node_graph_reaches_the_other_node() {
        let graph = MembershipGraph::from_edges(2, &[(0, 1)]);
        let mut rng = SimRng::seed_from(45);
        let mut mh = MhWalkSampler::new(graph.clone(), 3);
        let mut simple = SimpleWalkSampler::new(graph, 3);
        assert_eq!(mh.sample_peer(0, &mut rng), Some(1));
        assert_eq!(simple.sample_peer(0, &mut rng), Some(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_walk_rejected() {
        let graph = MembershipGraph::from_edges(2, &[(0, 1)]);
        MhWalkSampler::new(graph, 0);
    }
}
