//! Property-based tests for the gossip substrate.

use proptest::prelude::*;

use lagover_gossip::{MembershipGraph, MhWalkSampler, PeerSampler, SimpleWalkSampler};
use lagover_sim::SimRng;

proptest! {
    /// Random membership graphs are always connected, symmetric, and
    /// free of self-loops and duplicate edges.
    #[test]
    fn random_graphs_are_well_formed(
        seed in any::<u64>(),
        n in 2usize..200,
        degree in 1usize..8,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let g = MembershipGraph::random_connected(n, degree, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.len(), n);
        for v in 0..n {
            let ns = g.neighbors(v);
            prop_assert!(!ns.contains(&v), "self-loop at {v}");
            let mut sorted = ns.to_vec();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), before, "duplicate edge at {}", v);
            for &w in ns {
                prop_assert!(g.neighbors(w).contains(&v), "asymmetric edge {v}-{w}");
            }
        }
    }

    /// Walk samplers always return valid, non-enquirer peers on
    /// connected graphs.
    #[test]
    fn walks_return_valid_peers(
        seed in any::<u64>(),
        n in 2usize..100,
        walk_len in 1usize..30,
        enquirer in 0usize..100,
    ) {
        let enquirer = enquirer % n;
        let mut rng = SimRng::seed_from(seed);
        let g = MembershipGraph::random_connected(n, 4, &mut rng);
        let mut simple = SimpleWalkSampler::new(g.clone(), walk_len);
        let mut mh = MhWalkSampler::new(g, walk_len);
        for _ in 0..16 {
            if let Some(s) = simple.sample_peer(enquirer, &mut rng) {
                prop_assert!(s < n && s != enquirer);
            }
            if let Some(s) = mh.sample_peer(enquirer, &mut rng) {
                prop_assert!(s < n && s != enquirer);
            }
        }
    }

    /// On any connected graph of at least three peers, a long MH walk
    /// eventually samples more than one distinct peer (it does not get
    /// stuck).
    #[test]
    fn mh_walk_mixes(seed in any::<u64>(), n in 3usize..60) {
        let mut rng = SimRng::seed_from(seed);
        let g = MembershipGraph::random_connected(n, 3, &mut rng);
        let mut mh = MhWalkSampler::new(g, 16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            if let Some(s) = mh.sample_peer(0, &mut rng) {
                seen.insert(s);
            }
        }
        prop_assert!(seen.len() >= 2, "walk stuck: only {seen:?}");
    }
}
