//! The environment-tagged wall-clock layer.
//!
//! Everything in this module is **nondeterministic by design** — it
//! measures the machine, not the protocol — which is exactly why it is
//! quarantined here: the work-unit layer never touches a clock, wall
//! samples never enter the committed `BENCH_baseline.json`, and
//! `cargo xtask bench-gate` only compares wall layers whose
//! [`EnvTag`]s match (same runner class). This file carries the one
//! `xtask lint` wall-clock allowance for the perf crate, and the
//! actual clock reads are additionally compile-time scoped behind the
//! default-on `wall-clock` feature (`cargo xtask analyze` rule
//! `feature-gate`): building with `--no-default-features` produces a
//! perf harness that records work units only and cannot touch a clock.

#[cfg(feature = "wall-clock")]
use std::time::Instant;

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};

/// Where a set of wall samples was taken. Two wall layers are only
/// comparable when their tags are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvTag {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Effective `LAGOVER_THREADS` setting (`"auto"` when unset).
    pub threads: String,
    /// Available hardware parallelism at sampling time.
    pub cpus: u64,
}

impl EnvTag {
    /// Captures the current environment.
    pub fn capture() -> EnvTag {
        EnvTag {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: std::env::var("LAGOVER_THREADS").unwrap_or_else(|_| "auto".to_string()),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        }
    }

    /// One-line rendering (`linux/x86_64 threads=auto cpus=8`).
    pub fn render(&self) -> String {
        format!(
            "{}/{} threads={} cpus={}",
            self.os, self.arch, self.threads, self.cpus
        )
    }
}

/// Median-of-K wall-clock samples for one scenario, plus peak RSS.
#[derive(Debug, Clone, PartialEq)]
pub struct WallLayer {
    /// The environment the samples were taken in.
    pub env: EnvTag,
    /// Raw elapsed-seconds samples, in measurement order.
    pub samples_secs: Vec<f64>,
    /// Median of the samples.
    pub median_secs: f64,
    /// Interquartile range of the samples (spread estimate that is
    /// robust to one slow outlier sample).
    pub iqr_secs: f64,
    /// Process peak RSS in kilobytes after the scenario ran, when the
    /// platform exposes it (`/proc/self/status` `VmHWM` on Linux).
    /// Monotonic across the process, so treat it as an upper bound per
    /// scenario, not an isolated measurement.
    pub peak_rss_kb: Option<u64>,
}

impl WallLayer {
    /// Runs `job` `samples` times (at least once) and collects the
    /// layer from the measured durations. Only exists when the
    /// `wall-clock` feature is on; deterministic callers use
    /// [`try_measure`] and carry no wall layer otherwise.
    #[cfg(feature = "wall-clock")]
    pub fn measure(samples: usize, mut job: impl FnMut()) -> WallLayer {
        let mut secs = Vec::with_capacity(samples.max(1));
        for _ in 0..samples.max(1) {
            let start = Instant::now();
            job();
            secs.push(start.elapsed().as_secs_f64());
        }
        WallLayer::from_samples(secs)
    }

    /// Builds the layer from pre-measured elapsed-seconds samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample list.
    pub fn from_samples(samples_secs: Vec<f64>) -> WallLayer {
        assert!(!samples_secs.is_empty(), "at least one wall sample");
        let mut sorted = samples_secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = percentile(&sorted, 0.50);
        let iqr = percentile(&sorted, 0.75) - percentile(&sorted, 0.25);
        WallLayer {
            env: EnvTag::capture(),
            samples_secs,
            median_secs: median,
            iqr_secs: iqr,
            peak_rss_kb: peak_rss_kb(),
        }
    }

    /// One-line rendering for tables.
    pub fn render_line(&self) -> String {
        let rss = self
            .peak_rss_kb
            .map_or(String::from("rss=n/a"), |kb| format!("rss={kb}kB"));
        format!(
            "wall: median {:.4}s iqr {:.4}s over {} sample(s), {} [{}]",
            self.median_secs,
            self.iqr_secs,
            self.samples_secs.len(),
            rss,
            self.env.render()
        )
    }
}

/// Measures `samples` wall-clock runs of `job` when sampling is
/// requested *and* the `wall-clock` feature is compiled in; `None`
/// otherwise, in which case the baseline simply carries no wall layer.
pub fn try_measure(samples: usize, job: impl FnMut()) -> Option<WallLayer> {
    #[cfg(feature = "wall-clock")]
    {
        if samples > 0 {
            return Some(WallLayer::measure(samples, job));
        }
    }
    #[cfg(not(feature = "wall-clock"))]
    let _ = job;
    let _ = samples;
    None
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Peak resident set size of this process in kB, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or when the probe
/// fails.
pub fn peak_rss_kb() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

impl ToJson for EnvTag {
    fn to_json(&self) -> Json {
        object(vec![
            ("os", self.os.to_json()),
            ("arch", self.arch.to_json()),
            ("threads", self.threads.to_json()),
            ("cpus", self.cpus.to_json()),
        ])
    }
}

impl FromJson for EnvTag {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(EnvTag {
            os: String::from_json(value.get("os")?)?,
            arch: String::from_json(value.get("arch")?)?,
            threads: String::from_json(value.get("threads")?)?,
            cpus: u64::from_json(value.get("cpus")?)?,
        })
    }
}

impl ToJson for WallLayer {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("env", self.env.to_json()),
            (
                "samples_secs",
                Json::Array(self.samples_secs.iter().map(ToJson::to_json).collect()),
            ),
            ("median_secs", self.median_secs.to_json()),
            ("iqr_secs", self.iqr_secs.to_json()),
        ];
        if let Some(kb) = self.peak_rss_kb {
            fields.push(("peak_rss_kb", kb.to_json()));
        }
        object(fields)
    }
}

impl FromJson for WallLayer {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(WallLayer {
            env: EnvTag::from_json(value.get("env")?)?,
            samples_secs: Vec::from_json(value.get("samples_secs")?)?,
            median_secs: f64::from_json(value.get("median_secs")?)?,
            iqr_secs: f64::from_json(value.get("iqr_secs")?)?,
            peak_rss_kb: match value.get_opt("peak_rss_kb")? {
                Some(v) => Some(u64::from_json(v)?),
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_iqr_from_known_samples() {
        let layer = WallLayer::from_samples(vec![4.0, 1.0, 2.0, 3.0, 5.0]);
        assert_eq!(layer.median_secs, 3.0);
        assert_eq!(layer.iqr_secs, 2.0, "p75 (4.0) - p25 (2.0)");
        assert_eq!(layer.samples_secs[0], 4.0, "raw order preserved");
    }

    #[test]
    fn single_sample_degenerates_cleanly() {
        let layer = WallLayer::from_samples(vec![0.5]);
        assert_eq!(layer.median_secs, 0.5);
        assert_eq!(layer.iqr_secs, 0.0);
    }

    #[cfg(feature = "wall-clock")]
    #[test]
    fn measure_runs_the_job_the_requested_number_of_times() {
        let mut count = 0;
        let layer = WallLayer::measure(3, || count += 1);
        assert_eq!(count, 3);
        assert_eq!(layer.samples_secs.len(), 3);
    }

    #[test]
    fn try_measure_honours_sample_count_and_feature() {
        assert!(try_measure(0, || {}).is_none(), "zero samples: no layer");
        let sampled = try_measure(2, || {});
        if cfg!(feature = "wall-clock") {
            assert_eq!(sampled.expect("feature on").samples_secs.len(), 2);
        } else {
            assert!(sampled.is_none());
        }
    }

    #[test]
    fn env_tag_round_trips() {
        let tag = EnvTag::capture();
        let json = lagover_jsonio::to_string(&tag);
        let back: EnvTag = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, tag);
        assert!(tag.render().contains(&tag.os));
    }

    #[test]
    fn wall_layer_json_round_trips() {
        let layer = WallLayer::from_samples(vec![0.25, 0.5]);
        let json = lagover_jsonio::to_string(&layer);
        let back: WallLayer = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, layer);
    }

    #[test]
    fn peak_rss_probe_reports_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().expect("VmHWM readable") > 0);
        }
    }
}
