//! The two-layer baseline document model.
//!
//! A [`Baseline`] is what the harness emits and `cargo xtask
//! bench-gate` diffs: a schema version, the parameters every scenario
//! ran under, and one [`ScenarioBaseline`] per scenario. The work
//! layer is deterministic and committed; the wall layer is optional,
//! environment-tagged, and never committed (see the crate docs and
//! DESIGN.md §12 for the rationale).

use lagover_jsonio::{object, FromJson, Json, JsonError, ToJson};
use lagover_obs::ObsReport;

use crate::wall::WallLayer;

/// Version stamp of the baseline document layout. `cargo xtask
/// bench-gate` refuses to diff documents with mismatched versions, so
/// bump this whenever the metric set or the layer structure changes
/// incompatibly (and regenerate `BENCH_baseline.json` in the same PR).
pub const SCHEMA_VERSION: u64 = 1;

/// Experiment sizing parameters, re-exported so harness callers sit on
/// the same knobs as the figure drivers.
pub type PerfParams = lagover_experiments::Params;

/// The fixed parameters the committed `BENCH_baseline.json` is
/// generated under. Pinned as literals (not `Params::paper()`) so a
/// figure-protocol change cannot silently re-seed the perf baseline.
pub fn baseline_params() -> PerfParams {
    PerfParams {
        peers: 120,
        runs: 5,
        max_rounds: 3_000,
        seed: 42,
    }
}

/// The deterministic layer of one scenario: convergence outcome plus a
/// flat, insertion-ordered list of named work-unit metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkLayer {
    /// Rounds executed, summed over the scenario's runs.
    pub rounds: u64,
    /// Runs that converged (for recovery: runs that fully healed).
    pub converged: u64,
    /// Convergence round, summed over converged runs.
    pub converged_rounds: u64,
    /// Named work-unit metrics, in a fixed emission order:
    /// `counters.*` (engine counters), `work.*` (profiler totals),
    /// `phase.*` (per-phase profiler deltas), `events.*` /
    /// `journal.*` (first-run journal), `scrape.*` (final first-run
    /// registry scrape), and the sampling tallies.
    pub metrics: Vec<(String, u64)>,
}

impl WorkLayer {
    /// Extracts the work layer from a (possibly multi-run, merged)
    /// observability report. Every value here is a deterministic
    /// function of the run seeds.
    pub fn from_report(report: &ObsReport) -> WorkLayer {
        let mut metrics = Vec::new();
        for (name, value) in report.counters.to_named() {
            metrics.push((format!("counters.{name}"), value));
        }
        for (name, value) in report.profile.total().to_named() {
            metrics.push((format!("work.{name}"), value));
        }
        for (name, value) in report.profile.to_named() {
            metrics.push((format!("phase.{name}"), value));
        }
        if let Some(journal) = &report.journal {
            metrics.push(("journal.events".to_string(), journal.len() as u64));
            metrics.push(("journal.dropped".to_string(), journal.dropped()));
            for (kind, count) in journal.counts_by_kind() {
                if count > 0 {
                    metrics.push((format!("events.{}", kind.name()), count));
                }
            }
        }
        metrics.push(("scrapes".to_string(), report.scrapes.len() as u64));
        metrics.push(("health_probes".to_string(), report.health.len() as u64));
        if let Some(last) = report.scrapes.last() {
            for (name, value) in last.to_named() {
                metrics.push((format!("scrape.{name}"), value));
            }
        }
        WorkLayer {
            rounds: report.rounds,
            converged: report.converged,
            converged_rounds: report.converged_rounds,
            metrics,
        }
    }

    /// Value of the metric `name`, if present.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// One scenario's entry in the baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBaseline {
    /// Scenario identifier (`fig2`, `fig3`, `fig4`, `recovery`, `obs`).
    pub name: String,
    /// Human-readable description of what ran.
    pub label: String,
    /// The deterministic work-unit layer (committed, diffed exactly).
    pub work: WorkLayer,
    /// The wall-clock layer, when sampling was requested (never
    /// committed; compared only same-runner, within a % budget).
    pub wall: Option<WallLayer>,
}

/// The full baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Layout version; see [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Parameters every scenario ran under.
    pub params: PerfParams,
    /// Per-scenario entries, in harness order.
    pub scenarios: Vec<ScenarioBaseline>,
}

impl Baseline {
    /// The scenario entry named `name`, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioBaseline> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Renders the fixed-width summary table `lagover perf` prints.
    pub fn render(&self) -> String {
        let p = &self.params;
        let mut out = format!(
            "perf baseline (schema v{}) — peers {} runs {} max_rounds {} seed {}\n",
            self.schema_version, p.peers, p.runs, p.max_rounds, p.seed
        );
        out.push_str(&format!(
            "{:<10} {:>7} {:>6} {:>10} {:>11} {:>9} {:>11}\n",
            "scenario", "rounds", "conv", "actions", "rng_draws", "oracle", "interact"
        ));
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<10} {:>7} {:>4}/{:<1} {:>10} {:>11} {:>9} {:>11}\n",
                s.name,
                s.work.rounds,
                s.work.converged,
                p.runs,
                s.work.metric("work.actions").unwrap_or(0),
                s.work.metric("work.rng_draws").unwrap_or(0),
                s.work.metric("work.oracle_queries").unwrap_or(0),
                s.work.metric("work.interactions").unwrap_or(0),
            ));
            if let Some(wall) = &s.wall {
                out.push_str(&format!("           {}\n", wall.render_line()));
            }
        }
        out
    }
}

impl ToJson for WorkLayer {
    fn to_json(&self) -> Json {
        object(vec![
            ("rounds", self.rounds.to_json()),
            ("converged", self.converged.to_json()),
            ("converged_rounds", self.converged_rounds.to_json()),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(name, value)| (name.clone(), value.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for WorkLayer {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let metrics = match value.get("metrics")? {
            Json::Object(entries) => entries
                .iter()
                .map(|(name, v)| Ok((name.clone(), u64::from_json(v)?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            _ => return Err(JsonError("metrics must be an object".into())),
        };
        Ok(WorkLayer {
            rounds: u64::from_json(value.get("rounds")?)?,
            converged: u64::from_json(value.get("converged")?)?,
            converged_rounds: u64::from_json(value.get("converged_rounds")?)?,
            metrics,
        })
    }
}

impl ToJson for ScenarioBaseline {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", self.name.to_json()),
            ("label", self.label.to_json()),
            ("work", self.work.to_json()),
        ];
        if let Some(wall) = &self.wall {
            fields.push(("wall", wall.to_json()));
        }
        object(fields)
    }
}

impl FromJson for ScenarioBaseline {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ScenarioBaseline {
            name: String::from_json(value.get("name")?)?,
            label: String::from_json(value.get("label")?)?,
            work: WorkLayer::from_json(value.get("work")?)?,
            wall: match value.get_opt("wall")? {
                Some(v) => Some(WallLayer::from_json(v)?),
                None => None,
            },
        })
    }
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        object(vec![
            ("schema_version", self.schema_version.to_json()),
            ("params", self.params.to_json()),
            (
                "scenarios",
                Json::Array(self.scenarios.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Baseline {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let p = value.get("params")?;
        let params = PerfParams {
            peers: u64::from_json(p.get("peers")?)? as usize,
            runs: u64::from_json(p.get("runs")?)? as usize,
            max_rounds: u64::from_json(p.get("max_rounds")?)?,
            seed: u64::from_json(p.get("seed")?)?,
        };
        Ok(Baseline {
            schema_version: u64::from_json(value.get("schema_version")?)?,
            params,
            scenarios: Vec::from_json(value.get("scenarios")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> WorkLayer {
        WorkLayer {
            rounds: 40,
            converged: 5,
            converged_rounds: 35,
            metrics: vec![
                ("work.actions".to_string(), 100),
                ("work.rng_draws".to_string(), 250),
            ],
        }
    }

    #[test]
    fn baseline_json_round_trips_byte_stable() {
        let baseline = Baseline {
            schema_version: SCHEMA_VERSION,
            params: baseline_params(),
            scenarios: vec![ScenarioBaseline {
                name: "fig2".to_string(),
                label: "fig2 tf1".to_string(),
                work: layer(),
                wall: None,
            }],
        };
        let json = lagover_jsonio::to_string_pretty(&baseline);
        let back: Baseline = lagover_jsonio::from_str(&json).expect("parses");
        assert_eq!(back, baseline);
        assert_eq!(lagover_jsonio::to_string_pretty(&back), json);
        assert!(
            !json.contains("wall"),
            "work-only baselines must not mention the wall layer"
        );
    }

    #[test]
    fn metric_lookup_finds_named_entries() {
        let layer = layer();
        assert_eq!(layer.metric("work.actions"), Some(100));
        assert_eq!(layer.metric("missing"), None);
    }

    #[test]
    fn render_lists_scenarios() {
        let baseline = Baseline {
            schema_version: SCHEMA_VERSION,
            params: baseline_params(),
            scenarios: vec![ScenarioBaseline {
                name: "fig3".to_string(),
                label: "fig3".to_string(),
                work: layer(),
                wall: None,
            }],
        };
        let text = baseline.render();
        assert!(text.contains("schema v1"));
        assert!(text.contains("fig3"));
    }
}
