//! The scenario registry: which instrumented drivers the harness runs
//! and how their reports become baseline entries.
//!
//! Every scenario reuses an `observed()` hook from
//! `lagover-experiments`, so the work units the baseline commits are
//! the *same numbers* the figures report — the perf trajectory and the
//! paper reproduction cannot drift apart. All hooks derive per-run
//! seeds from the master seed, so the work layer is byte-identical
//! across `LAGOVER_THREADS` settings and chunkings.

use lagover_core::{
    construct, construct_observed, run_recovery_observed, Algorithm, Constraints,
    ConstructionConfig, FaultScenario, OracleKind, Population,
};
use lagover_experiments::{fig2, fig3, fig4, obs_exp, recovery, stabilization, streams};
use lagover_obs::ObsReport;
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

use crate::baseline::{Baseline, PerfParams, ScenarioBaseline, WorkLayer, SCHEMA_VERSION};
use crate::wall;

/// Salt for the `obs` footprint scenario's run seeds (distinct from
/// every experiment salt in `lagover-experiments`).
const OBS_SALT: u64 = 7_000;

/// Pinned sizes of the scale scenarios. The `params.peers` knob does
/// not apply to them — their whole point is a fixed large-n data
/// point, and the committed `BENCH_scale.json` work units only mean
/// something at the pinned size.
const SCALE_1E5: usize = 100_000;
const SCALE_1E6: usize = 1_000_000;
/// Round cap for the scale scenarios (convergence sits far below it —
/// construction at 1e5 converges near round 90; the cap only bounds a
/// pathological non-converging run so CI fails in minutes, not hours).
const SCALE_MAX_ROUNDS: u64 = 400;
/// Interior crash fraction injected by `recovery_1e5`.
const SCALE_CRASH_FRACTION: f64 = 0.05;
/// Journal ring capacity / metric sample cadence for observed scale
/// runs — sparse on purpose, so the report stays memory-bounded at a
/// million peers.
const SCALE_JOURNAL_CAPACITY: usize = 1 << 16;
const SCALE_SAMPLE_INTERVAL: u64 = 200;

/// Every scenario the harness knows, in baseline order. The trailing
/// scale scenarios only run when named explicitly (`--scenario`); see
/// [`default_scenario_names`].
pub fn scenario_names() -> &'static [&'static str] {
    &[
        "fig2",
        "fig3",
        "fig4",
        "recovery",
        "stabilization",
        "obs",
        "streaming",
        "construction_1e5",
        "recovery_1e5",
        "construction_1e6",
    ]
}

/// The scenarios a bare `lagover-perf` invocation collects — the
/// registry minus the opt-in scale scenarios, whose pinned 1e5/1e6
/// sizes would dominate the default document's runtime.
pub fn default_scenario_names() -> &'static [&'static str] {
    &[
        "fig2",
        "fig3",
        "fig4",
        "recovery",
        "stabilization",
        "obs",
        "streaming",
    ]
}

/// The figure drivers `cargo xtask replay-diff` byte-compares across
/// parallel schedules, derived from the registry: every default
/// scenario is also a `lagover-experiments run` subcommand, plus the
/// `scaling` sweep (the widest fan-out driver, which has no baseline
/// scenario of its own) and the `nodesim` cross-validation (whose
/// report embeds the mesh-vs-twin journal, so schedule-invariance of
/// the node runtime itself is pinned byte-for-byte). The scale
/// scenarios are excluded — their schedule-invariance is checked
/// directly on `lagover-perf` output by the `construction-1e5-smoke`
/// CI job. The `streaming` scenario maps to the `streams` experiments
/// subcommand (the E19 document it reuses the observed cell of).
pub fn replay_figures() -> Vec<&'static str> {
    let mut figures: Vec<&'static str> = default_scenario_names()
        .iter()
        .map(|&n| if n == "streaming" { "streams" } else { n })
        .collect();
    let at = figures
        .iter()
        .position(|&n| n == "recovery")
        .unwrap_or(figures.len());
    figures.insert(at, "scaling");
    figures.push("nodesim");
    figures
}

/// Runs one named scenario and returns its merged observability
/// report, or `None` for an unknown name.
pub fn run_scenario(name: &str, params: &PerfParams) -> Option<ObsReport> {
    match name {
        "fig2" => Some(fig2::observed(params)),
        "fig3" => Some(fig3::observed(params)),
        "fig4" => Some(fig4::observed(params)),
        "recovery" => Some(recovery::observed(params)),
        "stabilization" => Some(stabilization::observed(params)),
        "obs" => Some(obs_footprint(params)),
        "streaming" => Some(streams::observed(params)),
        "construction_1e5" => Some(construction_at_scale(name, SCALE_1E5, params.seed)),
        "recovery_1e5" => Some(recovery_at_scale(name, SCALE_1E5, params.seed)),
        "construction_1e6" => Some(construction_at_scale(name, SCALE_1E6, params.seed)),
        _ => None,
    }
}

/// Deterministic capacity-rich population for the scale scenarios:
/// every peer offers fanout 8 and tolerates its layer's depth plus
/// four levels of slack. Each layer is filled to only a *quarter* of
/// the slots the layer above offers, so every sufficiency level keeps
/// at least 4x capacity headroom — tighter packings are satisfiable
/// but the maintenance rule detaches enough transiently-violated peers
/// that randomized construction thrashes instead of converging at
/// n >= 5000 (measured: half-filled layers with two levels of slack
/// stall below 0.72 satisfied). No RNG and no repair pass, so building
/// the population stays O(n) at a million peers.
fn layered_population(peers: usize) -> Population {
    const FANOUT: u32 = 8;
    const SLACK: u32 = 4;
    let mut constraints = Vec::with_capacity(peers);
    let mut layer = 1u32;
    let mut slots = u64::from(FANOUT); // total slots at `layer`
    let mut filled = 0u64;
    for _ in 0..peers {
        if filled == (slots / 4).max(1) {
            // Slots below come only from the peers actually placed.
            slots = filled.saturating_mul(u64::from(FANOUT));
            layer += 1;
            filled = 0;
        }
        filled += 1;
        constraints.push(Constraints::new(FANOUT, layer + SLACK));
    }
    Population::new(FANOUT, constraints)
}

/// An observed large-n Hybrid/Random-Delay construction on the
/// layered population. One run: at these sizes a single construction
/// is the statistic.
fn construction_at_scale(name: &str, peers: usize, seed: u64) -> ObsReport {
    let population = layered_population(peers);
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(SCALE_MAX_ROUNDS);
    let observed = construct_observed(
        &population,
        &config,
        seed,
        SCALE_JOURNAL_CAPACITY,
        SCALE_SAMPLE_INTERVAL,
    );
    ObsReport {
        label: format!("{name} layered hybrid/oracle-random-delay n={peers}"),
        peers: peers as u64,
        runs: 1,
        seed,
        rounds: observed.outcome.rounds_run,
        converged: observed.outcome.converged() as u64,
        converged_rounds: observed.outcome.converged_at.unwrap_or(0),
        counters: observed.outcome.counters,
        profile: observed.profile,
        scrapes: observed.scrapes,
        health: observed.health,
        journal: Some(observed.journal),
    }
}

/// Large-n crash recovery on the layered population: converge, crash
/// a fraction of interior peers, and observe the healing run.
fn recovery_at_scale(name: &str, peers: usize, seed: u64) -> ObsReport {
    let population = layered_population(peers);
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(SCALE_MAX_ROUNDS);
    let scenario = FaultScenario {
        crash_fraction: SCALE_CRASH_FRACTION,
        message_loss: 0.0,
        blackout_rounds: 0,
    };
    let observed = run_recovery_observed(
        &population,
        &config,
        &scenario,
        SCALE_MAX_ROUNDS,
        seed,
        SCALE_JOURNAL_CAPACITY,
        SCALE_SAMPLE_INTERVAL,
    );
    ObsReport {
        label: format!("{name} layered hybrid/oracle-random-delay n={peers}"),
        peers: peers as u64,
        runs: 1,
        seed,
        rounds: observed.outcome.rounds_run,
        converged: observed.outcome.recovered() as u64,
        converged_rounds: observed.outcome.recovery_rounds.unwrap_or(0),
        counters: observed.outcome.counters,
        profile: observed.profile,
        scrapes: observed.scrapes,
        health: observed.health,
        journal: Some(observed.journal),
    }
}

/// The `obs` scenario: the instrumentation footprint of a fully
/// observed Rand/Hybrid construction — journal volume, scrape count,
/// and pipeline work — mirroring what `obs_bench` tracks.
fn obs_footprint(params: &PerfParams) -> ObsReport {
    obs_exp::observe_construction(
        &format!("obs rand hybrid/oracle-random-delay n={}", params.peers),
        params,
        OBS_SALT,
        |seed| {
            WorkloadSpec::new(TopologicalConstraint::Rand, params.peers)
                .generate(seed)
                .expect("Rand workloads are repairable")
        },
        || {
            ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
                .with_max_rounds(params.max_rounds)
        },
    )
}

/// Runs every default scenario (or the `only` subset, when non-empty)
/// and assembles the baseline document. `wall_samples > 0` re-runs
/// each scenario that many times to attach the environment-tagged
/// wall-clock layer; `0` keeps the document fully deterministic. The
/// scale scenarios only run when `only` names them.
pub fn collect_baseline(params: &PerfParams, wall_samples: usize, only: &[String]) -> Baseline {
    let mut scenarios = Vec::new();
    for &name in scenario_names() {
        let selected = if only.is_empty() {
            default_scenario_names().contains(&name)
        } else {
            only.iter().any(|o| o == name)
        };
        if !selected {
            continue;
        }
        let report = run_scenario(name, params).expect("registry names are valid");
        let wall = wall::try_measure(wall_samples, || {
            run_scenario(name, params);
        });
        scenarios.push(ScenarioBaseline {
            name: name.to_string(),
            label: report.label.clone(),
            work: WorkLayer::from_report(&report),
            wall,
        });
    }
    Baseline {
        schema_version: SCHEMA_VERSION,
        params: *params,
        scenarios,
    }
}

/// Wraps a single scenario report into a standalone one-scenario
/// baseline document — the unified `BENCH_<name>.json` shape the
/// `lagover-bench` thin wrappers emit.
pub fn single_scenario_document(
    name: &str,
    params: &PerfParams,
    wall_samples: usize,
) -> Option<Baseline> {
    let report = run_scenario(name, params)?;
    let wall = wall::try_measure(wall_samples, || {
        run_scenario(name, params);
    });
    Some(Baseline {
        schema_version: SCHEMA_VERSION,
        params: *params,
        scenarios: vec![ScenarioBaseline {
            name: name.to_string(),
            label: report.label.clone(),
            work: WorkLayer::from_report(&report),
            wall,
        }],
    })
}

/// The construction-throughput scenario behind `construction_bench`:
/// one observed run for the work layer plus `wall_samples` plain
/// (uninstrumented) constructions for the wall layer, at whatever
/// scale the caller asks for.
pub fn construction_throughput(
    peers: usize,
    max_rounds: u64,
    seed: u64,
    wall_samples: usize,
) -> Baseline {
    let population = WorkloadSpec::new(TopologicalConstraint::Rand, peers)
        .generate(seed)
        .expect("Rand workloads are repairable");
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(max_rounds);
    let observed = construct_observed(&population, &config, seed, 1 << 16, 50);
    let report = ObsReport {
        label: format!("construction rand hybrid/oracle-random-delay n={peers}"),
        peers: peers as u64,
        runs: 1,
        seed,
        rounds: observed.outcome.rounds_run,
        converged: observed.outcome.converged() as u64,
        converged_rounds: observed.outcome.converged_at.unwrap_or(0),
        counters: observed.outcome.counters,
        profile: observed.profile,
        scrapes: observed.scrapes,
        health: observed.health,
        journal: Some(observed.journal),
    };
    let wall = wall::try_measure(wall_samples, || {
        construct(&population, &config, seed);
    });
    Baseline {
        schema_version: SCHEMA_VERSION,
        params: PerfParams {
            peers,
            runs: 1,
            max_rounds,
            seed,
        },
        scenarios: vec![ScenarioBaseline {
            name: "construction".to_string(),
            label: format!("construction rand hybrid/oracle-random-delay n={peers}"),
            work: WorkLayer::from_report(&report),
            wall,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagover_experiments::Params;

    fn quick() -> Params {
        let mut p = Params::quick();
        p.runs = 2;
        p
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_scenario("nope", &quick()).is_none());
    }

    #[test]
    fn registry_contains_defaults_then_scale_scenarios() {
        let names = scenario_names();
        assert_eq!(
            &names[..default_scenario_names().len()],
            default_scenario_names()
        );
        for name in names {
            assert!(
                run_scenario_is_known(name),
                "registry name `{name}` has no driver"
            );
        }
        assert!(names.contains(&"construction_1e5"));
        assert!(names.contains(&"recovery_1e5"));
        assert!(names.contains(&"construction_1e6"));
    }

    /// `run_scenario` would execute the driver; for the scale names
    /// that is too heavy for a unit test, so knownness is checked via
    /// the registry order instead of a dispatch probe.
    fn run_scenario_is_known(name: &str) -> bool {
        scenario_names().contains(&name)
    }

    #[test]
    fn replay_figures_derive_from_the_default_registry() {
        let figures = replay_figures();
        for &name in default_scenario_names() {
            let driver = if name == "streaming" { "streams" } else { name };
            assert!(
                figures.contains(&driver),
                "default scenario `{name}` not replayed"
            );
        }
        assert!(figures.contains(&"scaling"), "scaling sweep rides along");
        assert!(
            figures.contains(&"nodesim"),
            "node cross-validation rides along"
        );
        assert!(
            !figures
                .iter()
                .any(|f| f.ends_with("_1e5") || f.ends_with("_1e6")),
            "scale scenarios are not experiments drivers"
        );
        assert_eq!(
            figures,
            vec![
                "fig2",
                "fig3",
                "fig4",
                "scaling",
                "recovery",
                "stabilization",
                "obs",
                "streams",
                "nodesim"
            ]
        );
    }

    #[test]
    fn layered_population_quarter_fills_levels_with_slack() {
        let population = layered_population(100);
        assert_eq!(population.len(), 100);
        let latencies = population.latencies();
        // Quarter-filled layers of a fanout-8 tree: 2 peers at layer
        // 1, 4 at layer 2, 8 at layer 3, 16 at layer 4, 32 at layer 5,
        // the rest spilling into layer 6 — each with 4 rounds of
        // latency slack.
        assert!(latencies[..2].iter().all(|&l| l == 5));
        assert!(latencies[2..6].iter().all(|&l| l == 6));
        assert!(latencies[6..14].iter().all(|&l| l == 7));
        assert!(latencies[14..30].iter().all(|&l| l == 8));
        assert!(latencies[30..62].iter().all(|&l| l == 9));
        assert!(latencies[62..].iter().all(|&l| l == 10));
        assert!(population.fanouts().iter().all(|&f| f == 8));
        let sufficiency = lagover_core::check_sufficiency(&population);
        assert!(sufficiency.satisfied, "layered population is feasible");
    }

    #[test]
    fn scale_drivers_converge_and_recover_at_test_size() {
        // The pinned 1e5/1e6 sizes are far too heavy for a unit test;
        // the same drivers at a small size exercise every code path.
        let construction = construction_at_scale("construction_test", 600, 11);
        assert_eq!(construction.converged, 1, "construction converged");
        assert!(construction.converged_rounds > 0);
        assert!(construction.journal.as_ref().is_some_and(|j| !j.is_empty()));

        let healing = recovery_at_scale("recovery_test", 600, 11);
        assert_eq!(healing.converged, 1, "overlay healed after the crash");
        assert!(healing.counters.crashes > 0, "crash was injected");
    }

    #[test]
    fn scale_drivers_are_deterministic() {
        let a = construction_at_scale("construction_test", 400, 5);
        let b = construction_at_scale("construction_test", 400, 5);
        assert_eq!(WorkLayer::from_report(&a), WorkLayer::from_report(&b));
    }

    #[test]
    fn collect_covers_the_default_registry_in_order() {
        let baseline = collect_baseline(&quick(), 0, &[]);
        let names: Vec<&str> = baseline.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, default_scenario_names());
        for s in &baseline.scenarios {
            assert!(s.wall.is_none(), "{}: wall layer off by default", s.name);
            assert!(s.work.converged > 0, "{}: nothing converged", s.name);
            assert!(
                s.work.metric("work.actions").unwrap_or(0) > 0,
                "{}: no work recorded",
                s.name
            );
            assert!(
                s.work.metric("journal.events").unwrap_or(0) > 0,
                "{}: empty journal",
                s.name
            );
        }
    }

    #[test]
    fn subset_filter_selects_scenarios() {
        let baseline = collect_baseline(&quick(), 0, &["fig2".to_string()]);
        assert_eq!(baseline.scenarios.len(), 1);
        assert_eq!(baseline.scenarios[0].name, "fig2");
    }

    #[test]
    fn work_layer_is_deterministic_across_collections() {
        let params = quick();
        let a = collect_baseline(&params, 0, &[]);
        let b = collect_baseline(&params, 0, &[]);
        assert_eq!(a, b, "work units must not depend on the run");
        assert_eq!(
            lagover_jsonio::to_string_pretty(&a),
            lagover_jsonio::to_string_pretty(&b),
        );
    }

    #[test]
    fn wall_sampling_attaches_the_layer_without_touching_work() {
        let params = quick();
        let dry = collect_baseline(&params, 0, &["fig2".to_string()]);
        let wet = collect_baseline(&params, 2, &["fig2".to_string()]);
        assert_eq!(wet.scenarios[0].work, dry.scenarios[0].work);
        let wall = wet.scenarios[0].wall.as_ref().expect("wall layer present");
        assert_eq!(wall.samples_secs.len(), 2);
    }

    #[test]
    fn single_scenario_document_matches_collection_entry() {
        let params = quick();
        let single = single_scenario_document("recovery", &params, 0).expect("known scenario");
        let full = collect_baseline(&params, 0, &[]);
        assert_eq!(
            single.scenarios[0],
            *full.scenario("recovery").expect("in registry")
        );
        assert!(single_scenario_document("nope", &params, 0).is_none());
    }

    #[test]
    fn construction_throughput_emits_one_converged_scenario() {
        let doc = construction_throughput(60, 2_000, 7, 0);
        assert_eq!(doc.scenarios.len(), 1);
        assert_eq!(doc.scenarios[0].name, "construction");
        assert_eq!(doc.scenarios[0].work.converged, 1);
    }
}
