//! The scenario registry: which instrumented drivers the harness runs
//! and how their reports become baseline entries.
//!
//! Every scenario reuses an `observed()` hook from
//! `lagover-experiments`, so the work units the baseline commits are
//! the *same numbers* the figures report — the perf trajectory and the
//! paper reproduction cannot drift apart. All hooks derive per-run
//! seeds from the master seed, so the work layer is byte-identical
//! across `LAGOVER_THREADS` settings and chunkings.

use lagover_core::{construct, construct_observed, Algorithm, ConstructionConfig, OracleKind};
use lagover_experiments::{fig2, fig3, fig4, obs_exp, recovery};
use lagover_obs::ObsReport;
use lagover_workload::{TopologicalConstraint, WorkloadSpec};

use crate::baseline::{Baseline, PerfParams, ScenarioBaseline, WorkLayer, SCHEMA_VERSION};
use crate::wall::WallLayer;

/// Salt for the `obs` footprint scenario's run seeds (distinct from
/// every experiment salt in `lagover-experiments`).
const OBS_SALT: u64 = 7_000;

/// The scenarios the harness runs, in baseline order.
pub fn scenario_names() -> &'static [&'static str] {
    &["fig2", "fig3", "fig4", "recovery", "obs"]
}

/// Runs one named scenario and returns its merged observability
/// report, or `None` for an unknown name.
pub fn run_scenario(name: &str, params: &PerfParams) -> Option<ObsReport> {
    match name {
        "fig2" => Some(fig2::observed(params)),
        "fig3" => Some(fig3::observed(params)),
        "fig4" => Some(fig4::observed(params)),
        "recovery" => Some(recovery::observed(params)),
        "obs" => Some(obs_footprint(params)),
        _ => None,
    }
}

/// The `obs` scenario: the instrumentation footprint of a fully
/// observed Rand/Hybrid construction — journal volume, scrape count,
/// and pipeline work — mirroring what `obs_bench` tracks.
fn obs_footprint(params: &PerfParams) -> ObsReport {
    obs_exp::observe_construction(
        &format!("obs rand hybrid/oracle-random-delay n={}", params.peers),
        params,
        OBS_SALT,
        |seed| {
            WorkloadSpec::new(TopologicalConstraint::Rand, params.peers)
                .generate(seed)
                .expect("Rand workloads are repairable")
        },
        || {
            ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
                .with_max_rounds(params.max_rounds)
        },
    )
}

/// Runs every scenario (or the `only` subset, when non-empty) and
/// assembles the baseline document. `wall_samples > 0` re-runs each
/// scenario that many times to attach the environment-tagged
/// wall-clock layer; `0` keeps the document fully deterministic.
pub fn collect_baseline(params: &PerfParams, wall_samples: usize, only: &[String]) -> Baseline {
    let mut scenarios = Vec::new();
    for &name in scenario_names() {
        if !only.is_empty() && !only.iter().any(|o| o == name) {
            continue;
        }
        let report = run_scenario(name, params).expect("registry names are valid");
        let wall = (wall_samples > 0).then(|| {
            WallLayer::measure(wall_samples, || {
                run_scenario(name, params);
            })
        });
        scenarios.push(ScenarioBaseline {
            name: name.to_string(),
            label: report.label.clone(),
            work: WorkLayer::from_report(&report),
            wall,
        });
    }
    Baseline {
        schema_version: SCHEMA_VERSION,
        params: *params,
        scenarios,
    }
}

/// Wraps a single scenario report into a standalone one-scenario
/// baseline document — the unified `BENCH_<name>.json` shape the
/// `lagover-bench` thin wrappers emit.
pub fn single_scenario_document(
    name: &str,
    params: &PerfParams,
    wall_samples: usize,
) -> Option<Baseline> {
    let report = run_scenario(name, params)?;
    let wall = (wall_samples > 0).then(|| {
        WallLayer::measure(wall_samples, || {
            run_scenario(name, params);
        })
    });
    Some(Baseline {
        schema_version: SCHEMA_VERSION,
        params: *params,
        scenarios: vec![ScenarioBaseline {
            name: name.to_string(),
            label: report.label.clone(),
            work: WorkLayer::from_report(&report),
            wall,
        }],
    })
}

/// The construction-throughput scenario behind `construction_bench`:
/// one observed run for the work layer plus `wall_samples` plain
/// (uninstrumented) constructions for the wall layer, at whatever
/// scale the caller asks for.
pub fn construction_throughput(
    peers: usize,
    max_rounds: u64,
    seed: u64,
    wall_samples: usize,
) -> Baseline {
    let population = WorkloadSpec::new(TopologicalConstraint::Rand, peers)
        .generate(seed)
        .expect("Rand workloads are repairable");
    let config = ConstructionConfig::new(Algorithm::Hybrid, OracleKind::RandomDelay)
        .with_max_rounds(max_rounds);
    let observed = construct_observed(&population, &config, seed, 1 << 16, 50);
    let report = ObsReport {
        label: format!("construction rand hybrid/oracle-random-delay n={peers}"),
        peers: peers as u64,
        runs: 1,
        seed,
        rounds: observed.outcome.rounds_run,
        converged: observed.outcome.converged() as u64,
        converged_rounds: observed.outcome.converged_at.unwrap_or(0),
        counters: observed.outcome.counters,
        profile: observed.profile,
        scrapes: observed.scrapes,
        health: observed.health,
        journal: Some(observed.journal),
    };
    let wall = (wall_samples > 0).then(|| {
        WallLayer::measure(wall_samples, || {
            construct(&population, &config, seed);
        })
    });
    Baseline {
        schema_version: SCHEMA_VERSION,
        params: PerfParams {
            peers,
            runs: 1,
            max_rounds,
            seed,
        },
        scenarios: vec![ScenarioBaseline {
            name: "construction".to_string(),
            label: format!("construction rand hybrid/oracle-random-delay n={peers}"),
            work: WorkLayer::from_report(&report),
            wall,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagover_experiments::Params;

    fn quick() -> Params {
        let mut p = Params::quick();
        p.runs = 2;
        p
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_scenario("nope", &quick()).is_none());
    }

    #[test]
    fn collect_covers_the_registry_in_order() {
        let baseline = collect_baseline(&quick(), 0, &[]);
        let names: Vec<&str> = baseline.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, scenario_names());
        for s in &baseline.scenarios {
            assert!(s.wall.is_none(), "{}: wall layer off by default", s.name);
            assert!(s.work.converged > 0, "{}: nothing converged", s.name);
            assert!(
                s.work.metric("work.actions").unwrap_or(0) > 0,
                "{}: no work recorded",
                s.name
            );
            assert!(
                s.work.metric("journal.events").unwrap_or(0) > 0,
                "{}: empty journal",
                s.name
            );
        }
    }

    #[test]
    fn subset_filter_selects_scenarios() {
        let baseline = collect_baseline(&quick(), 0, &["fig2".to_string()]);
        assert_eq!(baseline.scenarios.len(), 1);
        assert_eq!(baseline.scenarios[0].name, "fig2");
    }

    #[test]
    fn work_layer_is_deterministic_across_collections() {
        let params = quick();
        let a = collect_baseline(&params, 0, &[]);
        let b = collect_baseline(&params, 0, &[]);
        assert_eq!(a, b, "work units must not depend on the run");
        assert_eq!(
            lagover_jsonio::to_string_pretty(&a),
            lagover_jsonio::to_string_pretty(&b),
        );
    }

    #[test]
    fn wall_sampling_attaches_the_layer_without_touching_work() {
        let params = quick();
        let dry = collect_baseline(&params, 0, &["fig2".to_string()]);
        let wet = collect_baseline(&params, 2, &["fig2".to_string()]);
        assert_eq!(wet.scenarios[0].work, dry.scenarios[0].work);
        let wall = wet.scenarios[0].wall.as_ref().expect("wall layer present");
        assert_eq!(wall.samples_secs.len(), 2);
    }

    #[test]
    fn single_scenario_document_matches_collection_entry() {
        let params = quick();
        let single = single_scenario_document("recovery", &params, 0).expect("known scenario");
        let full = collect_baseline(&params, 0, &[]);
        assert_eq!(
            single.scenarios[0],
            *full.scenario("recovery").expect("in registry")
        );
        assert!(single_scenario_document("nope", &params, 0).is_none());
    }

    #[test]
    fn construction_throughput_emits_one_converged_scenario() {
        let doc = construction_throughput(60, 2_000, 7, 0);
        assert_eq!(doc.scenarios.len(), 1);
        assert_eq!(doc.scenarios[0].name, "construction");
        assert_eq!(doc.scenarios[0].work.converged, 1);
    }
}
