//! The `lagover-perf` binary: emits the baseline document.
//!
//! ```text
//! lagover-perf [--out PATH] [--wall K] [--scenario NAME]...
//!              [--peers N] [--runs N] [--seed N] [--max-rounds N] [--quick]
//! ```
//!
//! With no flags it runs every scenario at the pinned baseline
//! parameters and prints the work-only (fully deterministic) document
//! to stdout — exactly what is committed as `BENCH_baseline.json` and
//! what `cargo xtask bench-gate` regenerates to diff against it.
//! `--wall K` attaches median-of-K wall-clock samples (never commit
//! that form). `--quick` switches to the small test parameters.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use lagover_perf::{baseline_params, collect_baseline, scenario_names, PerfParams};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lagover-perf [--out PATH] [--wall K] [--scenario <{}>]... \
         [--peers N] [--runs N] [--seed N] [--max-rounds N] [--quick]",
        scenario_names().join("|")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = baseline_params();
    let mut out_path: Option<String> = None;
    let mut wall_samples = 0usize;
    let mut only: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => return usage(),
            },
            "--wall" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => wall_samples = k,
                None => return usage(),
            },
            "--scenario" => match it.next() {
                Some(v) if scenario_names().contains(&v.as_str()) => only.push(v.clone()),
                Some(v) => {
                    eprintln!("lagover-perf: unknown scenario `{v}`");
                    return usage();
                }
                None => return usage(),
            },
            "--peers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => params.peers = v,
                None => return usage(),
            },
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => params.runs = v,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => params.seed = v,
                None => return usage(),
            },
            "--max-rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => params.max_rounds = v,
                None => return usage(),
            },
            "--quick" => params = PerfParams::quick(),
            other => {
                eprintln!("lagover-perf: unknown flag `{other}`");
                return usage();
            }
        }
    }

    let baseline = collect_baseline(&params, wall_samples, &only);
    let json = lagover_jsonio::to_string_pretty(&baseline);
    println!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("lagover-perf: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
