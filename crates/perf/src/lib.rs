#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # lagover-perf
//!
//! The perf-baseline harness: runs the instrumented experiment drivers
//! (fig2, fig3, fig4, recovery, obs) under fixed seeds and emits one
//! schema-versioned baseline document with **two layers** per scenario
//! (DESIGN.md §12):
//!
//! - **Work units** — rounds-to-converge, engine counters, RNG draws,
//!   oracle queries, and the per-phase [`lagover_obs::Profiler`]
//!   deltas. Every number is a deterministic function of the seed, so
//!   the layer is byte-stable across machines, thread counts
//!   (`LAGOVER_THREADS`), and chunkings; it is committed to the repo as
//!   `BENCH_baseline.json` and diffed **exactly** by
//!   `cargo xtask bench-gate`.
//! - **Wall clock** — optional median-of-K elapsed-seconds samples with
//!   IQR plus peak RSS, tagged with the environment they were taken in.
//!   Wall samples are never committed and are only compared between
//!   runs on the same runner, within the `perf.gate.toml` percentage
//!   budget.
//!
//! The three `lagover-bench` binaries (`construction_bench`,
//! `obs_bench`, `recovery_bench`) are thin wrappers over this crate,
//! and `lagover perf` exposes the harness from the CLI.

pub mod baseline;
pub mod scenarios;
pub mod wall;

pub use baseline::{
    baseline_params, Baseline, PerfParams, ScenarioBaseline, WorkLayer, SCHEMA_VERSION,
};
pub use scenarios::{
    collect_baseline, construction_throughput, default_scenario_names, replay_figures,
    run_scenario, scenario_names, single_scenario_document,
};
pub use wall::{EnvTag, WallLayer};
