//! Property-based tests for the simulation kernel.

use proptest::prelude::*;

use lagover_sim::metrics::Histogram;
use lagover_sim::rng::SimRng;
use lagover_sim::stats::{quantile_sorted, Summary};
use lagover_sim::time::{Round, VirtualTime};
use lagover_sim::EventQueue;

proptest! {
    /// Summary statistics are ordered: min <= q1 <= median <= q3 <= max,
    /// and the mean lies within [min, max].
    #[test]
    fn summary_is_ordered(samples in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let s = Summary::from_samples(&samples).expect("finite, non-empty");
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.count, samples.len());
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(
        mut samples in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_sorted(&samples, lo);
        let b = quantile_sorted(&samples, hi);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= samples[0] - 1e-12);
        prop_assert!(b <= samples[samples.len() - 1] + 1e-12);
    }

    /// Histogram nearest-rank quantiles return actual samples and are
    /// monotone.
    #[test]
    fn histogram_quantiles_are_samples(values in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut h = Histogram::new("h");
        for &v in &values {
            h.record(v);
        }
        let q25 = h.quantile(0.25).unwrap();
        let q75 = h.quantile(0.75).unwrap();
        prop_assert!(values.contains(&q25));
        prop_assert!(values.contains(&q75));
        prop_assert!(q25 <= q75);
        prop_assert_eq!(h.min().unwrap(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max().unwrap(), *values.iter().max().unwrap());
    }

    /// The event queue is a stable priority queue: events come out in
    /// non-decreasing time order, FIFO among ties, nothing lost.
    #[test]
    fn event_queue_is_a_stable_min_heap(times in prop::collection::vec(0.0f64..1e6, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(VirtualTime::new(t).unwrap(), i);
        }
        let mut popped = Vec::new();
        let mut last: Option<(VirtualTime, usize)> = None;
        while let Some((at, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((at, id));
            popped.push(id);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// index() is always within bounds and covers the whole range for
    /// small bounds.
    #[test]
    fn rng_index_in_bounds(seed in any::<u64>(), bound in 1usize..1000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.index(bound) < bound);
        }
    }

    /// Splitting produces streams that differ from the parent and from
    /// sibling streams.
    #[test]
    fn rng_split_streams_differ(seed in any::<u64>(), a in 0u64..1_000, b in 1_000u64..2_000) {
        let parent = SimRng::seed_from(seed);
        let mut sa = parent.split(a);
        let mut sb = parent.split(b);
        let va: Vec<u64> = (0..8).map(|_| rand::RngCore::next_u64(&mut sa)).collect();
        let vb: Vec<u64> = (0..8).map(|_| rand::RngCore::next_u64(&mut sb)).collect();
        prop_assert_ne!(va, vb);
    }

    /// Round arithmetic round-trips.
    #[test]
    fn round_arithmetic_round_trips(base in 0u64..1_000_000, delta in 0u64..1_000_000) {
        let r = Round::new(base);
        prop_assert_eq!((r + delta) - r, delta);
        prop_assert_eq!(r.next() - r, 1);
    }

    /// Exponential samples are non-negative; Pareto samples respect the
    /// scale.
    #[test]
    fn distribution_supports(seed in any::<u64>(), mean in 0.01f64..100.0) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.exponential(mean) >= 0.0);
            prop_assert!(rng.pareto(mean, 1.5) >= mean);
        }
    }

    /// chance(p) over many draws stays within a crude Chernoff band.
    #[test]
    fn chance_rate_is_sane(seed in any::<u64>(), p in 0.05f64..0.95) {
        let mut rng = SimRng::seed_from(seed);
        let n = 4_000;
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64 / n as f64;
        prop_assert!((hits - p).abs() < 0.08, "rate {hits} vs p {p}");
    }
}
